#!/usr/bin/env python3
"""Serving-system comparison: BOSS vs IIU vs Lucene on one shard.

The scenario the paper's introduction motivates: a web-search leaf node
whose shard lives in SCM-based pooled memory. This example builds a
CC-News-like synthetic shard, runs the paper's Table II query mix on
all three engines, verifies they return identical top-k results, and
reports the modeled throughput, bandwidth, bottleneck, and energy at
the paper's 8-core operating point.

Run:  python examples/serving_comparison.py
"""

from collections import defaultdict

from repro import (
    BossAccelerator,
    BossConfig,
    BossTimingModel,
    IIUAccelerator,
    IIUConfig,
    IIUTimingModel,
    LuceneConfig,
    LuceneEngine,
    LuceneTimingModel,
    QuerySampler,
    make_corpus,
)
from repro.hwmodel.energy import EnergyModel

K = 10
QUERIES_PER_BUCKET = 25


def main() -> None:
    print("building ccnews-like shard (synthetic, see DESIGN.md)...")
    corpus = make_corpus("ccnews-like", scale=0.5)
    index = corpus.index
    print(f"  {index.stats.num_docs} docs, {index.num_terms} terms, "
          f"{index.compressed_bytes >> 10} KiB compressed")

    engines = {
        "BOSS": BossAccelerator(index, BossConfig(k=K)),
        "IIU": IIUAccelerator(index, IIUConfig(k=K)),
        "Lucene": LuceneEngine(index, LuceneConfig(k=K)),
    }
    models = {
        "BOSS": BossTimingModel(),
        "IIU": IIUTimingModel(),
        "Lucene": LuceneTimingModel(),
    }

    sampler = QuerySampler(corpus.terms_by_df(), seed=1)
    queries = list(sampler.sample(QUERIES_PER_BUCKET))
    print(f"  {len(queries)} queries (Table II mix)\n")

    executions = defaultdict(list)
    mismatches = 0
    for query in queries:
        reference = None
        for name, engine in engines.items():
            result = engine.search(query.expression)
            executions[name].append(result)
            hits = [(h.doc_id, round(h.score, 8)) for h in result.hits]
            if reference is None:
                reference = hits
            elif hits != reference:
                mismatches += 1
    print(f"functional check: {mismatches} mismatching queries "
          f"(must be 0 — all engines return the same top-k)\n")

    energy_model = EnergyModel()
    lucene_report = models["Lucene"].batch(executions["Lucene"], 8)
    print(f"{'engine':<8}{'qps':>10}{'speedup':>9}{'GB/s':>7}"
          f"{'bottleneck':>12}{'mJ/query':>10}")
    for name in ("Lucene", "IIU", "BOSS"):
        report = models[name].batch(executions[name], 8)
        energy = energy_model.energy(report)
        print(f"{name:<8}{report.throughput_qps:>10.0f}"
              f"{report.speedup_over(lucene_report):>8.1f}x"
              f"{report.avg_bandwidth / 1e9:>7.2f}"
              f"{report.bottleneck:>12}"
              f"{1000 * energy.energy_joules / len(queries):>10.3f}")

    boss_energy = energy_model.energy(models["BOSS"].batch(
        executions["BOSS"], 8))
    lucene_energy = energy_model.energy(lucene_report)
    print(f"\nenergy savings BOSS vs Lucene: "
          f"{boss_energy.savings_over(lucene_energy):.0f}x "
          f"(paper reports 189x at full scale)")


if __name__ == "__main__":
    main()
