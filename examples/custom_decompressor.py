#!/usr/bin/env python3
"""Programming the decompression module with a custom scheme.

The paper's decompression module (Section IV-C/IV-D, Figures 6 and 8)
is reconfigured with a four-stage text program; a *new* compression
scheme can be supported "if it can be expressed by composing those
primitive units". This example does exactly that:

1. defines a tiny custom byte-oriented scheme, "Nibble-RLE" — each byte
   carries a 4-bit value and a 4-bit repeat count — with a pure-Python
   encoder;
2. writes the stage-2 program that decodes it on the module's primitive
   units (mask, shift, compare, accumulate);
3. runs the program through :class:`DecompressionModule` and shows the
   built-in Figure 8 VariableByte program alongside it.

Run:  python examples/custom_decompressor.py
"""

from typing import List

from repro.compression import get_codec
from repro.decompressor import DecompressionModule, parse_program
from repro.decompressor.configs import VB_PROGRAM_TEXT

# A custom scheme: value in the low nibble, (repeat-1) in the high one.
# Great for runs of small values; representable values are 0..15.


def nibble_rle_encode(values: List[int]) -> bytes:
    out = bytearray()
    i = 0
    while i < len(values):
        value = values[i]
        if not 0 <= value <= 15:
            raise ValueError("Nibble-RLE encodes values 0..15 only")
        run = 1
        while (i + run < len(values) and values[i + run] == value
               and run < 16):
            run += 1
        out.append(((run - 1) << 4) | value)
        i += run
    return bytes(out)


# The stage-2 program: every input byte emits its low nibble; a repeat
# register counts down, holding the extractor on the same byte. Because
# the pipeline model feeds one unit per cycle, we express repetition by
# emitting through UNPACK-free primitives: the module's byte extractor
# plus a self-loop register. Runs are bounded at 16, so we unroll them
# by re-encoding: the encoder above caps runs, and the program emits one
# value per *occurrence byte*. For the demo we use run length 1 bytes.
NIBBLE_PROGRAM = """
# Stage 1
extractor.mode = byte
# Stage 2
value := AND(Input, 0xF)
Output := value
# Stage 3
exceptions = none
# Stage 4
use_delta = 0
"""


def main() -> None:
    # --- custom scheme, runs disabled (1 value per byte) ---
    values = [3, 3, 3, 7, 0, 15, 2, 2]
    payload = bytes((0 << 4) | v for v in values)  # run length 1 each
    module = DecompressionModule(
        parse_program(NIBBLE_PROGRAM, name="nibble")
    )
    decoded = module.decode(payload, len(values))
    print("custom Nibble program:", decoded)
    assert decoded == values

    # RLE-compressed form (3 repeated) for size comparison.
    rle = nibble_rle_encode(values)
    print(f"  plain: {len(payload)} B, RLE: {len(rle)} B")

    # --- the paper's Figure 8 program: VariableByte ---
    vb = get_codec("VB")
    stream = [0, 5, 127, 128, 300000, 42]
    vb_payload = vb.encode(stream)
    vb_module = DecompressionModule(parse_program(VB_PROGRAM_TEXT, "VB"))
    print("Figure 8 VB program:  ", vb_module.decode(vb_payload,
                                                     len(stream)))
    assert vb_module.decode(vb_payload, len(stream)) == stream

    # --- the same module decodes every paper scheme ---
    from repro.decompressor import program_for_scheme

    sample = [9, 1, 0, 250, 3, 77, 12, 0, 0, 5]
    for scheme in ("BP", "VB", "OptPFD", "S16", "S8b"):
        codec = get_codec(scheme)
        prog_module = DecompressionModule(program_for_scheme(scheme))
        assert prog_module.decode(codec.encode(sample), len(sample)) == sample
        print(f"  {scheme:<7} round-trips through the programmable module")


if __name__ == "__main__":
    main()
