#!/usr/bin/env python3
"""Distributed serving: a root node over sharded BOSS leaves.

Reproduces the paper's Figure 1(b) topology end to end: a document
collection is split into docID-interval shards, each shard gets its own
BOSS device (one per memory node), and a root fans queries out and
merges the leaves' top-k lists. Because the shard builders carry
corpus-global BM25 statistics, the merged ranking is identical to a
monolithic index — verified live below.

Also demonstrates the >16-term host-split path of the offloading API
(Section IV-D): the host divides an oversized union into 16-term
subqueries that run without pruning, then merges in host memory.

Run:  python examples/distributed_search.py
"""

import random

from repro import BossAccelerator, BossConfig, BossSession, IndexBuilder
from repro.cluster import SearchCluster, shard_documents

NUM_DOCS = 3000
VOCAB = 60
NUM_SHARDS = 4


def make_documents(seed=13):
    rng = random.Random(seed)
    words = [f"term{i:02d}" for i in range(VOCAB)]
    return [
        [words[min(VOCAB - 1, int(rng.expovariate(0.1)))]
         for _ in range(rng.randrange(6, 40))]
        for _ in range(NUM_DOCS)
    ]


def main() -> None:
    documents = make_documents()

    # Monolithic reference.
    builder = IndexBuilder()
    for doc in documents:
        builder.add_document(doc)
    monolithic_index = builder.build()
    monolithic = BossAccelerator(monolithic_index, BossConfig(k=10))

    # Sharded cluster: one BOSS device per docID-interval shard.
    sharded = shard_documents(documents, num_shards=NUM_SHARDS)
    cluster = SearchCluster([
        BossAccelerator(index, BossConfig(k=10))
        for index in sharded.indexes
    ])
    print(f"{NUM_DOCS} documents -> {NUM_SHARDS} shards, boundaries "
          f"{sharded.boundaries}")

    for expression in (
        '"term00"',
        '"term01" AND "term05"',
        '"term02" OR "term30"',
        '"term00" AND ("term03" OR "term40")',
    ):
        merged = cluster.search(expression, k=10)
        mono = monolithic.search(expression)
        agree = [h.doc_id for h in merged.hits] == [
            h.doc_id for h in mono.hits
        ]
        print(f"\n{expression}")
        print(f"  cluster == monolithic ranking: {agree}")
        print(f"  shards touched: {merged.shards_touched}/{NUM_SHARDS}, "
              f"leaf traffic {merged.traffic.total_bytes} B, "
              f"to root {merged.interconnect_bytes} B "
              f"(k x 8 B per shard)")

    # Oversized query: host-side splitting beyond the 16-term limit.
    session = BossSession(BossConfig(k=10))
    session.init(monolithic_index)
    big_union = " OR ".join(f'"term{i:02d}"' for i in range(20))
    result = session.search(big_union, k=10)
    print(f"\n20-term union via host split: {len(result.hits)} hits, "
          f"{result.interconnect_bytes} B of unpruned intermediates "
          f"crossed the link (vs {8 * len(result.hits)} B for an "
          f"in-hardware top-k)")


if __name__ == "__main__":
    main()
