#!/usr/bin/env python3
"""Tour of the extensions layered over the paper's system.

Walks one corpus through four capabilities the paper defers to software
or future work:

1. **text analysis** — raw strings to index terms (stop words, stems);
2. **phrase search** — positional postings verify adjacency on top of
   the engine's intersection path;
3. **second-stage re-ranking** — the software stage after BOSS's top-k;
4. **near-real-time updates** — a delta segment over the read-only
   index, merged on demand.

Run:  python examples/extensions_tour.py
"""

from repro.core import BossAccelerator, BossConfig
from repro.index import IndexBuilder
from repro.index.delta import DeltaIndex
from repro.index.positions import PhraseSearcher, PositionStore
from repro.rerank import LinearReranker, TwoStageSearch
from repro.text import Analyzer

ARTICLES = [
    "The memory pool shares one coherent link with the host.",
    "Storage class memory pools trade latency for huge capacity.",
    "A pool of storage class memory scales without extra sockets.",
    "Early termination skips documents that cannot reach the top.",
    "The class schedule lists storage closets, not memory pools.",
]


def main() -> None:
    # 1. Analysis: raw text -> terms (lowercase, stops out, S-stems).
    analyzer = Analyzer()
    documents = [analyzer.analyze(text) for text in ARTICLES]
    print("analysis: first article ->", documents[0])

    builder = IndexBuilder()
    for tokens in documents:
        builder.add_document(tokens)
    index = builder.build()
    engine = BossAccelerator(index, BossConfig(k=10))

    # 2. Phrases: "storage class memory" as consecutive terms only.
    store = PositionStore.from_documents(documents)
    phrases = PhraseSearcher(engine, store)
    phrase_hits = phrases.search_phrase(
        analyzer.analyze("storage class memory"), k=5
    )
    loose_hits = engine.search('"storage" AND "class" AND "memory"')
    print(f"\nphrase 'storage class memory': docs "
          f"{[h.doc_id for h in phrase_hits.hits]} "
          f"(loose AND matches {[h.doc_id for h in loose_hits.hits]})")

    # 3. Two-stage ranking: BOSS retrieves, software re-ranks.
    pipeline = TwoStageSearch(engine, LinearReranker(), first_stage_k=10)
    reranked = pipeline.search('"memory" OR "pool"', k=3)
    print(f"\nreranked top-3 for 'memory OR pool': "
          f"{[h.doc_id for h in reranked.hits]} "
          f"({reranked.candidates} candidates rescored in "
          f"{reranked.rerank_seconds * 1e6:.1f} us of host time)")

    # 4. Live updates: a breaking article lands in the delta segment.
    live = DeltaIndex(engine)
    new_doc = analyzer.analyze(
        "Breaking: a new memory pool standard was announced today."
    )
    doc_id = live.add_document(new_doc)
    fresh = live.search('"memory" AND "pool"', k=5)
    print(f"\nafter adding doc {doc_id}: 'memory AND pool' finds "
          f"{[h.doc_id for h in fresh.hits]} (delta segment holds "
          f"{live.delta_docs} doc)")
    merged = live.merge()
    print(f"merge() -> compacted index with {merged.stats.num_docs} docs, "
          f"fresh statistics")


if __name__ == "__main__":
    main()
