#!/usr/bin/env python3
"""Quickstart: index a handful of documents and query them on BOSS.

Demonstrates the offloading API of the paper's Section IV-D: build an
inverted index offline, ``init()`` it into the (simulated) SCM pool, and
``search()`` with the paper's query syntax — quoted terms combined with
AND/OR and parentheses.

Run:  python examples/quickstart.py
"""

from repro import BossSession, IndexBuilder

DOCUMENTS = [
    "storage class memory bridges the gap between dram and disk",
    "the inverted index is the standard data structure for search",
    "near data processing keeps bandwidth inside the memory node",
    "a search accelerator scores documents with bm25 ranking",
    "compression schemes shrink the inverted index dramatically",
    "early termination skips documents that cannot reach the top k",
    "the memory pool connects to the host over a shared cxl link",
    "dram offers bandwidth while storage class memory offers capacity",
]


def main() -> None:
    # 1. Offline indexing: tokenize and add documents.
    builder = IndexBuilder()
    for text in DOCUMENTS:
        builder.add_document(text.split())
    index = builder.build()
    print(f"indexed {index.stats.num_docs} documents, "
          f"{index.num_terms} terms, "
          f"{index.compressed_bytes} compressed bytes")

    # 2. init(): load the index into the SCM pool and configure BOSS.
    session = BossSession()
    session.init(index)

    # 3. search(): offload queries.
    for expression in (
        '"memory"',
        '"storage" AND "memory"',
        '"search" OR "bandwidth"',
        '"memory" AND ("dram" OR "capacity")',
    ):
        result = session.search(expression, k=3)
        print(f"\n{expression}   [{result.query_type}]")
        for hit in result.hits:
            print(f"  doc {hit.doc_id}: score {hit.score:.3f}   "
                  f"-> {DOCUMENTS[hit.doc_id]!r}")
        print(f"  traffic: {result.traffic.total_bytes} B from SCM, "
              f"{result.interconnect_bytes} B to host "
              f"(top-k only crosses the link)")


if __name__ == "__main__":
    main()
