#!/usr/bin/env python3
"""Memory-pool scale-out study: why search belongs next to the SCM.

Reproduces the architectural argument of Sections II-C and III-A: an
SCM pool grows capacity per node, but every node shares one CXL-class
link to the host. A host-side engine must pull posting data across that
link, so its aggregate throughput flatlines; BOSS ships only top-k
results, so it scales with node count.

Run:  python examples/pool_scaling.py
"""

from repro import (
    BossAccelerator,
    BossConfig,
    BossTimingModel,
    LuceneConfig,
    LuceneEngine,
    LuceneTimingModel,
    QuerySampler,
    make_corpus,
)
from repro.scm.pool import MemoryNode, MemoryPool

NODE_COUNTS = (1, 2, 4, 8, 16, 32)


def main() -> None:
    corpus = make_corpus("clueweb12-like", scale=0.3)
    index = corpus.index
    sampler = QuerySampler(corpus.terms_by_df(), seed=9)
    queries = list(sampler.sample(queries_per_term_count=10))

    engines = {
        "BOSS (NDP)": (BossAccelerator(index, BossConfig(k=10)),
                       BossTimingModel()),
        "host engine": (LuceneEngine(index, LuceneConfig(k=10)),
                        LuceneTimingModel()),
    }
    executions = {
        name: [engine.search(q.expression) for q in queries]
        for name, (engine, _model) in engines.items()
    }

    print(f"{'nodes':>6}{'capacity':>10}"
          + "".join(f"{name:>16}" for name in engines)
          + f"{'BW/capacity':>14}")
    for nodes in NODE_COUNTS:
        pool = MemoryPool(nodes=[MemoryNode() for _ in range(nodes)])
        row = [f"{nodes:>6}", f"{pool.capacity >> 40:>8}TB"]
        for name, (_engine, model) in engines.items():
            report = model.batch(executions[name], 8)
            if name.startswith("BOSS"):
                # One BOSS device per node: compute and device bandwidth
                # scale with the pool; only the result traffic shares
                # the host link.
                per_pool = max(
                    max(report.compute_seconds, report.memory_seconds),
                    nodes * report.interconnect_seconds,
                )
            else:
                # The host's CPU cores are FIXED: every shard's work
                # lands on the same 8 cores, and every posting byte
                # crosses the one shared link.
                per_pool = max(
                    nodes * report.compute_seconds,
                    max(report.memory_seconds,
                        nodes * report.interconnect_seconds),
                )
            qps = nodes * len(queries) / per_pool
            row.append(f"{qps:>16.0f}")
        row.append(f"{pool.bandwidth_to_capacity_ratio:>14.2e}")
        print("".join(row))

    print("\nthe host engine flatlines (fixed CPU cores, one shared "
          "link);\nonly the NDP design converts each node's internal "
          "bandwidth into throughput.")


if __name__ == "__main__":
    main()
