"""Command-line interface: build, inspect, query, and profile indexes.

Installed as the ``repro-boss`` console script (``repro`` is an alias)::

    repro-boss build   --input docs.txt --output corpus.boss
    repro-boss info    --index corpus.boss
    repro-boss search  --index corpus.boss --query '"memory" AND "search"'
    repro-boss trace   --index corpus.boss --query '"memory"'
    repro-boss metrics --index corpus.boss --query '"memory"' --query '"a"'
    repro-boss bench   --queries 128 --repeat 2
    repro-boss demo

``build`` reads one whitespace-tokenized document per line. ``search``
runs any of the three engines and reports the hits plus the performance
model's traffic/latency estimates. ``trace`` profiles one query through
the observability layer — a per-stage time/byte breakdown with the
bottleneck stage flagged (``--json`` emits the full trace schema).
``metrics`` executes a query list under a recording observer and dumps
the metrics registry. ``bench`` runs a Zipf-skewed query batch through
the worker-pool driver (:mod:`repro.batch`) and reports wall-clock
throughput per pass (later passes hit the warm decoded-block cache).
``demo`` builds a small synthetic corpus and prints the
BOSS/IIU/Lucene comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import IIUAccelerator, IIUConfig, LuceneConfig, LuceneEngine
from repro.core import BossAccelerator, BossConfig
from repro.errors import ReproError
from repro.index import IndexBuilder
from repro.index.io import load_index, save_index
from repro.sim.timing import BossTimingModel, IIUTimingModel, LuceneTimingModel


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-boss",
        description="BOSS (ISCA 2021) reproduction: inverted-index "
                    "search on simulated SCM pooled memory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="index a document file")
    build.add_argument("--input", required=True,
                       help="text file, one document per line")
    build.add_argument("--output", required=True, help="index file to write")
    build.add_argument("--scheme", default=None,
                       help="pin one compression scheme (default: hybrid)")
    build.add_argument("--analyze", action="store_true",
                       help="run the full analysis chain (lowercase, "
                            "stop words, S-stemming) instead of "
                            "whitespace tokenization")

    info = sub.add_parser("info", help="describe an index file")
    info.add_argument("--index", required=True)

    search = sub.add_parser("search", help="query an index file")
    search.add_argument("--index", required=True)
    search.add_argument("--query", required=True,
                        help='paper syntax, e.g. \'"a" AND ("b" OR "c")\'')
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--engine", choices=("boss", "iiu", "lucene"),
                        default="boss")

    check = sub.add_parser("validate",
                           help="integrity-check an index file")
    check.add_argument("--index", required=True)
    check.add_argument("--fast", action="store_true",
                       help="structural checks only (skip score bounds)")

    trace = sub.add_parser(
        "trace", help="per-stage profile of one query (observability)")
    trace.add_argument("--index", required=True)
    trace.add_argument("--query", required=True,
                       help='paper syntax, e.g. \'"a" AND "b"\'')
    trace.add_argument("-k", type=int, default=10)
    trace.add_argument("--engine", choices=("boss", "iiu"), default="boss")
    trace.add_argument("--json", action="store_true",
                       help="emit the full trace record as JSON")

    metrics = sub.add_parser(
        "metrics", help="run queries and dump the metrics registry")
    metrics.add_argument("--index", required=True)
    metrics.add_argument("--query", action="append", required=True,
                         help="query expression (repeatable)")
    metrics.add_argument("-k", type=int, default=10)
    metrics.add_argument("--json", action="store_true",
                         help="emit the registry snapshot as JSON")

    bench = sub.add_parser(
        "bench",
        help="wall-clock throughput of a query batch (worker pool)")
    bench.add_argument("--index", default=None,
                       help="index file (default: synthetic corpus)")
    bench.add_argument("--preset", default="ccnews-like",
                       help="synthetic corpus preset when no --index")
    bench.add_argument("--scale", type=float, default=0.2,
                       help="synthetic corpus scale factor")
    bench.add_argument("--queries", type=int, default=64,
                       help="queries in the batch (Zipf-skewed log)")
    bench.add_argument("--unique", type=int, default=16,
                       help="distinct queries behind the Zipf log")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker threads (default: auto)")
    bench.add_argument("-k", type=int, default=10)
    bench.add_argument("--repeat", type=int, default=2,
                       help="passes over the batch; passes after the "
                            "first run with a warm decoded-block cache")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--no-fast-path", action="store_true",
                       help="use the per-value reference decoders "
                            "(pre-fast-path engine) for comparison")
    bench.add_argument("--json", action="store_true",
                       help="emit the reports as JSON")

    sub.add_parser("demo", help="synthetic-corpus engine comparison")
    return parser


def _cmd_build(args) -> int:
    builder = IndexBuilder(
        schemes=[args.scheme] if args.scheme else None
    )
    analyzer = None
    if args.analyze:
        from repro.text import Analyzer

        analyzer = Analyzer()
    count = 0
    with open(args.input) as handle:
        for line in handle:
            if not line.strip():
                continue
            tokens = analyzer.analyze(line) if analyzer else line.split()
            builder.add_document(tokens if tokens else ["__empty__"])
            count += 1
    index = builder.build()
    save_index(index, args.output)
    print(f"indexed {count} documents, {index.num_terms} terms, "
          f"{index.compressed_bytes} compressed bytes -> {args.output}")
    return 0


def _cmd_info(args) -> int:
    index = load_index(args.index)
    stats = index.stats
    print(f"documents:        {stats.num_docs}")
    print(f"terms:            {index.num_terms}")
    print(f"avg doc length:   {stats.avgdl:.1f} tokens")
    print(f"compressed size:  {index.compressed_bytes} B")
    print(f"raw size:         {index.uncompressed_bytes} B "
          f"(ratio {index.uncompressed_bytes / max(1, index.compressed_bytes):.2f}x)")
    schemes = {}
    for term in index:
        scheme = index.posting_list(term).scheme
        schemes[scheme] = schemes.get(scheme, 0) + 1
    print("scheme mix:       " + ", ".join(
        f"{s}={n}" for s, n in sorted(schemes.items())
    ))
    return 0


def _cmd_search(args) -> int:
    index = load_index(args.index)
    if args.engine == "boss":
        engine = BossAccelerator(index, BossConfig(k=args.k))
        model = BossTimingModel()
    elif args.engine == "iiu":
        engine = IIUAccelerator(index, IIUConfig(k=args.k))
        model = IIUTimingModel()
    else:
        engine = LuceneEngine(index, LuceneConfig(k=args.k))
        model = LuceneTimingModel()
    result = engine.search(args.query, k=args.k)
    print(f"[{result.query_type}] {args.query} on {args.engine}")
    for rank, hit in enumerate(result.hits, start=1):
        print(f"{rank:>3}. doc {hit.doc_id:<8} score {hit.score:.4f}")
    if not result.hits:
        print("  (no matching documents)")
    latency = model.query_seconds(result)
    print(f"traffic: {result.traffic.total_bytes} B device, "
          f"{result.interconnect_bytes} B host link; "
          f"modeled latency {latency * 1e6:.1f} us")
    return 0


def _cmd_validate(args) -> int:
    from repro.index.validate import validate_index

    index = load_index(args.index)
    report = validate_index(index, check_scores=not args.fast)
    print(f"terms: {report.terms_checked}, blocks: "
          f"{report.blocks_checked}, postings: {report.postings_checked}")
    for warning in report.warnings[:10]:
        print(f"warning: {warning}")
    if report.ok:
        print("index OK")
        return 0
    for error in report.errors[:20]:
        print(f"ERROR: {error}")
    print(f"{len(report.errors)} integrity errors")
    return 1


def _cmd_trace(args) -> int:
    import json

    from repro.observability import RecordingObserver, build_trace, render_trace

    index = load_index(args.index)
    if args.engine == "boss":
        from repro.api import BossSession

        observer = RecordingObserver()
        session = BossSession(BossConfig(k=args.k), observer=observer)
        session.init(index)
        session.search(args.query, k=args.k)
        trace = observer.last_trace
    else:
        engine = IIUAccelerator(index, IIUConfig(k=args.k))
        result = engine.search(args.query, k=args.k)
        trace = build_trace(IIUTimingModel(), result, engine="IIU")
    if args.json:
        print(json.dumps(trace.to_dict(), indent=2))
    else:
        print(render_trace(trace))
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.api import BossSession
    from repro.observability import RecordingObserver, render_metrics
    from repro.scm.pool import MemoryPool

    index = load_index(args.index)
    observer = RecordingObserver()
    MemoryPool().publish_metrics(observer.registry)
    session = BossSession(BossConfig(k=args.k), observer=observer)
    session.init(index)
    for expression in args.query:
        session.search(expression, k=args.k)
    if args.json:
        print(json.dumps(observer.registry.snapshot(), indent=2))
    else:
        print(f"{len(observer.traces)} queries recorded")
        print(render_metrics(observer.registry))
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.batch import run_query_batch
    from repro.workloads import QuerySampler

    if args.index:
        index = load_index(args.index)
        terms_by_df = sorted(
            index.terms,
            key=lambda t: index.posting_list(t).document_frequency,
            reverse=True,
        )
    else:
        from repro.workloads import make_corpus

        corpus = make_corpus(args.preset, scale=args.scale)
        index = corpus.index
        terms_by_df = corpus.terms_by_df()
    sampler = QuerySampler(terms_by_df, seed=args.seed)
    unique = max(1, min(args.unique, args.queries))
    queries = [
        spec.expression
        for spec in sampler.sample_zipf_log(args.queries,
                                            unique_queries=unique)
    ]
    engine = BossAccelerator(index, BossConfig(k=args.k),
                             fast_path=not args.no_fast_path)
    reports = []
    for _ in range(max(1, args.repeat)):
        batch = run_query_batch(engine, queries, k=args.k,
                                workers=args.workers)
        reports.append(batch.report)
    cache = engine.decoded_cache
    if args.json:
        payload = {
            "fast_path": engine.fast_path,
            "passes": [report.to_dict() for report in reports],
        }
        if cache is not None:
            payload["decoded_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
            }
        print(json.dumps(payload, indent=2))
        return 0
    path = "fast" if engine.fast_path else "reference"
    print(f"{len(queries)} queries ({unique} unique), {path} decode path, "
          f"workers={reports[0].workers}")
    print(f"{'pass':<6}{'qps':>10}{'p50 (ms)':>10}{'p95 (ms)':>10}")
    for number, report in enumerate(reports, start=1):
        label = "cold" if number == 1 else "warm"
        print(f"{label:<6}{report.queries_per_second:>10.1f}"
              f"{report.p50_seconds * 1e3:>10.2f}"
              f"{report.p95_seconds * 1e3:>10.2f}")
    if cache is not None:
        print(f"decoded-block cache: {cache.hits} hits / "
              f"{cache.misses} misses ({cache.hit_rate:.1%})")
    return 0


def _cmd_demo(_args) -> int:
    from repro.workloads import QuerySampler, make_corpus

    corpus = make_corpus("ccnews-like", scale=0.2)
    index = corpus.index
    sampler = QuerySampler(corpus.terms_by_df(), seed=1)
    queries = list(sampler.sample(queries_per_term_count=8))
    engines = {
        "Lucene": (LuceneEngine(index, LuceneConfig(k=10)),
                   LuceneTimingModel()),
        "IIU": (IIUAccelerator(index, IIUConfig(k=10)), IIUTimingModel()),
        "BOSS": (BossAccelerator(index, BossConfig(k=10)),
                 BossTimingModel()),
    }
    print(f"corpus: {index.stats.num_docs} docs, {index.num_terms} terms; "
          f"{len(queries)} queries\n")
    baseline_qps = None
    print(f"{'engine':<8}{'qps':>12}{'speedup':>9}{'bottleneck':>12}")
    for name, (engine, model) in engines.items():
        results = [engine.search(q.expression) for q in queries]
        report = model.batch(results, 8)
        if baseline_qps is None:
            baseline_qps = report.throughput_qps
        print(f"{name:<8}{report.throughput_qps:>12.0f}"
              f"{report.throughput_qps / baseline_qps:>8.1f}x"
              f"{report.bottleneck:>12}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "info": _cmd_info,
        "search": _cmd_search,
        "validate": _cmd_validate,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "bench": _cmd_bench,
        "demo": _cmd_demo,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
