"""Command-line interface: build, inspect, query, and profile indexes.

Installed as the ``repro-boss`` console script (``repro`` is an alias)::

    repro-boss build   --input docs.txt --output corpus.boss
    repro-boss info    --index corpus.boss
    repro-boss search  --index corpus.boss --query '"memory" AND "search"'
    repro-boss trace   --index corpus.boss --query '"memory"'
    repro-boss metrics --index corpus.boss --query '"memory"' --query '"a"'
    repro-boss bench   --queries 128 --repeat 2
    repro-boss serve   --rate 200 --queries 256 --admission reject
    repro-boss rebalance --shards 4 --replication 2
    repro-boss demo

``build`` reads one whitespace-tokenized document per line. ``search``
runs any of the three engines and reports the hits plus the performance
model's traffic/latency estimates. ``trace`` profiles one query through
the observability layer — a per-stage time/byte breakdown with the
bottleneck stage flagged (``--json`` emits the full trace schema).
``metrics`` executes a query list under a recording observer and dumps
the metrics registry. ``bench`` runs a Zipf-skewed query batch through
the worker-pool driver (:mod:`repro.batch`) and reports wall-clock
throughput per pass (later passes hit the warm decoded-block cache).
``serve`` drives the online serving layer (:mod:`repro.serving`) with
an open-loop Poisson workload: bounded admission queue, configurable
admission policy (``reject`` / ``shed-oldest`` / ``deadline``),
per-query SLO deadlines, and shed/degraded accounting — see
``docs/serving.md``. ``demo`` builds a small synthetic corpus and
prints the BOSS/IIU/Lucene comparison.

Cluster resilience (``--shards N`` on ``bench`` and ``trace``): both
commands can stand up a sharded cluster over a synthetic document set
(vocabulary ``t0`` ... ``t39``) with deterministic fault injection
(``--fault-rate``, ``--corruption-rate``, ``--kill-shard``) and a
retry/timeout/failover policy (``--retries``, ``--timeout-ms``,
``--replication``). ``bench --shards`` reports p50/p95/p99 plus
retry/timeout/failover counts and the degraded-result fraction;
``trace --shards`` prints the per-shard resilience breakdown of one
query. See ``docs/robustness.md``.

Elastic topology: ``rebalance`` runs shard split/merge and replica
add/catch-up moves back to back over a synthetic sharded cluster and
checks a differential ranking oracle against a monolithic index after
every move. ``serve --rebalance-script FILE`` splices the same moves
into a live serving workload as background maintenance traffic on a
shared virtual clock — queries route around a draining shard via its
replicas while the move streams, and the new shard map is published
atomically (:mod:`repro.cluster.rebalance`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import IIUAccelerator, IIUConfig, LuceneConfig, LuceneEngine
from repro.core import BossAccelerator, BossConfig
from repro.errors import ReproError
from repro.index import IndexBuilder
from repro.index.binaryio import save_index_binary
from repro.index.io import save_index
from repro.index.loader import STORAGE_MODES, open_index
from repro.sim.timing import BossTimingModel, IIUTimingModel, LuceneTimingModel


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-boss",
        description="BOSS (ISCA 2021) reproduction: inverted-index "
                    "search on simulated SCM pooled memory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="index a document file")
    build.add_argument("--input", required=True,
                       help="text file, one document per line")
    build.add_argument("--output", required=True, help="index file to write")
    build.add_argument("--scheme", default=None,
                       help="pin one compression scheme (default: hybrid)")
    build.add_argument("--analyze", action="store_true",
                       help="run the full analysis chain (lowercase, "
                            "stop words, S-stemming) instead of "
                            "whitespace tokenization")
    build.add_argument("--format", choices=("binary", "pickle"),
                       default="binary",
                       help="output format (default: binary .bossx — "
                            "parse-only, mmap-servable; pickle files "
                            "need --trust-pickle to load)")

    info = sub.add_parser("info", help="describe an index file")
    info.add_argument("--index", required=True)
    _add_storage_arguments(info)

    search = sub.add_parser("search", help="query an index file")
    search.add_argument("--index", required=True)
    search.add_argument("--query", required=True,
                        help='paper syntax, e.g. \'"a" AND ("b" OR "c")\'')
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--engine", choices=("boss", "iiu", "lucene"),
                        default="boss")
    search.add_argument("--hybrid", choices=("rerank", "rrf"),
                        default=None,
                        help="hybrid retrieval: BM25 candidates + "
                             "vector rerank, or RRF fusion of lexical "
                             "and ANN rankings (builds the vector lane "
                             "over the index; boss engine only)")
    search.add_argument("--first-stage-k", type=int, default=100,
                        help="hybrid candidate depth (rerank: first-"
                             "stage k; rrf: per-retriever depth)")
    search.add_argument("--codec", choices=("fp32", "int8"),
                        default="fp32",
                        help="vector codec for --hybrid")
    _add_storage_arguments(search)

    vsearch = sub.add_parser(
        "vsearch",
        help="ANN vector search over an IVF layout on the SCM model")
    vsearch.add_argument("--preset", default="ccnews-like",
                         help="synthetic corpus preset")
    vsearch.add_argument("--scale", type=float, default=0.1,
                         help="synthetic corpus scale factor")
    vsearch.add_argument("--query", default=None,
                         help="one query expression (embedded via its "
                              "terms); default: a sampled query set "
                              "with a recall report")
    vsearch.add_argument("--queries", type=int, default=16,
                         help="sampled queries for the recall report")
    vsearch.add_argument("--clusters", type=int, default=None,
                         help="IVF cluster count (default sqrt(docs))")
    vsearch.add_argument("--codec", choices=("fp32", "int8"),
                         default="fp32", help="vector storage codec")
    vsearch.add_argument("--nprobe", type=int, default=None,
                         help="clusters probed per query "
                              "(default: clusters/4)")
    vsearch.add_argument("-k", type=int, default=10)
    vsearch.add_argument("--device", choices=("scm", "dram"),
                         default="scm",
                         help="device model holding the cluster layout")
    vsearch.add_argument("--save", default=None,
                         help="write the IVF layout to this .bossv file")
    vsearch.add_argument("--ivf", default=None,
                         help="load a pre-built .bossv layout instead "
                              "of clustering")
    vsearch.add_argument("--seed", type=int, default=1,
                         help="query-sampling seed")
    vsearch.add_argument("--json", action="store_true",
                         help="emit the report as JSON")

    check = sub.add_parser("validate",
                           help="integrity-check an index file")
    check.add_argument("--index", required=True)
    check.add_argument("--fast", action="store_true",
                       help="structural checks only (skip score bounds)")
    _add_storage_arguments(check)

    trace = sub.add_parser(
        "trace", help="per-stage profile of one query (observability)")
    trace.add_argument("--index", default=None,
                       help="index file (required unless --shards)")
    trace.add_argument("--query", required=True,
                       help='paper syntax, e.g. \'"a" AND "b"\'')
    trace.add_argument("-k", type=int, default=10)
    trace.add_argument("--engine", choices=("boss", "iiu"), default="boss")
    trace.add_argument("--json", action="store_true",
                       help="emit the full trace record as JSON")
    _add_storage_arguments(trace)
    _add_fault_arguments(trace)

    metrics = sub.add_parser(
        "metrics", help="run queries and dump the metrics registry")
    metrics.add_argument("--index", required=True)
    metrics.add_argument("--query", action="append", required=True,
                         help="query expression (repeatable)")
    metrics.add_argument("-k", type=int, default=10)
    metrics.add_argument("--json", action="store_true",
                         help="emit the registry snapshot as JSON")
    _add_storage_arguments(metrics)

    bench = sub.add_parser(
        "bench",
        help="wall-clock throughput of a query batch (worker pool)")
    bench.add_argument("--index", default=None,
                       help="index file (default: synthetic corpus)")
    bench.add_argument("--preset", default="ccnews-like",
                       help="synthetic corpus preset when no --index")
    bench.add_argument("--scale", type=float, default=0.2,
                       help="synthetic corpus scale factor")
    bench.add_argument("--queries", type=int, default=64,
                       help="queries in the batch (Zipf-skewed log)")
    bench.add_argument("--unique", type=int, default=16,
                       help="distinct queries behind the Zipf log")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker threads (default: auto)")
    bench.add_argument("-k", type=int, default=10)
    bench.add_argument("--repeat", type=int, default=2,
                       help="passes over the batch; passes after the "
                            "first run with a warm decoded-block cache")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--no-fast-path", action="store_true",
                       help="use the per-value reference decoders "
                            "(pre-fast-path engine) for comparison")
    bench.add_argument("--executor",
                       choices=("reference", "fast", "columnar"),
                       default=None,
                       help="query executor (default: fast unless "
                            "--no-fast-path; columnar = vectorized "
                            "numpy kernels)")
    bench.add_argument("--json", action="store_true",
                       help="emit the reports as JSON")
    _add_storage_arguments(bench)
    _add_fault_arguments(bench)

    serve = sub.add_parser(
        "serve",
        help="sustained-load serving with admission control and SLOs")
    serve.add_argument("--index", default=None,
                       help="index file (default: synthetic corpus)")
    serve.add_argument("--preset", default="ccnews-like",
                       help="synthetic corpus preset when no --index")
    serve.add_argument("--scale", type=float, default=0.2,
                       help="synthetic corpus scale factor")
    serve.add_argument("--rate", type=float, default=200.0,
                       help="offered load (queries/second, Poisson)")
    serve.add_argument("--queries", type=int, default=256,
                       help="requests in the open-loop workload")
    serve.add_argument("--unique", type=int, default=32,
                       help="distinct queries behind the Zipf log")
    serve.add_argument("--workers", type=int, default=4,
                       help="serving worker pool size")
    serve.add_argument("--queue", type=int, default=32,
                       help="admission queue capacity")
    serve.add_argument("--admission",
                       choices=("reject", "shed-oldest", "deadline"),
                       default="reject",
                       help="policy when the admission queue is full")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-query SLO deadline (required for the "
                            "deadline admission policy)")
    serve.add_argument("-k", type=int, default=10)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--update-mix", type=float, default=0.0,
                       help="fraction of requests that mutate a live "
                            "index (adds + oldest-doc deletes); runs "
                            "the serving timeline on a virtual clock "
                            "with background merges interleaved")
    serve.add_argument("--device", choices=("scm", "dram"),
                       default="scm",
                       help="maintenance device model for --update-mix")
    serve.add_argument("--planner", action="store_true",
                       help="serve through the global I/O planner: "
                            "windowed cross-query block coalescing, a "
                            "shared DRAM tier, and per-tenant quotas "
                            "(see docs/io_planner.md)")
    serve.add_argument("--no-planning", action="store_true",
                       help="with --planner: keep the windowed loop "
                            "but disable dedup/tier/coalescing (the "
                            "planner-off baseline)")
    serve.add_argument("--plan-window", type=float, default=2.0,
                       help="planning window in milliseconds "
                            "(default 2.0)")
    serve.add_argument("--dram-mb", type=float, default=64.0,
                       help="shared DRAM tier capacity in MiB "
                            "(0 disables the tier)")
    serve.add_argument("--tenants", default=None,
                       help="comma-separated tenant quotas as "
                            "NAME=BYTES_PER_WINDOW (e.g. "
                            "'web=65536,batch=16384'); requests are "
                            "assigned round-robin")
    serve.add_argument("--hybrid", choices=("rerank", "rrf"),
                       default=None,
                       help="serve hybrid lexical+vector traffic: the "
                            "vector lane is built over the corpus and "
                            "each request pays lexical device time + "
                            "ANN scan time + host rerank time on the "
                            "virtual timeline")
    serve.add_argument("--rebalance-script", default=None,
                       help="splice elastic topology moves (split/merge/"
                            "add-replica) into the workload as background "
                            "maintenance traffic; requires --shards. "
                            "Script lines: '@SECONDS split SHARD DOC', "
                            "'@SECONDS merge SHARD', "
                            "'@SECONDS add-replica SHARD [WAL_DIR]'")
    serve.add_argument("--json", action="store_true",
                       help="emit the serving report as JSON")
    _add_storage_arguments(serve)
    _add_fault_arguments(serve)

    rebalance = sub.add_parser(
        "rebalance",
        help="elastic shard moves with a differential ranking oracle")
    rebalance.add_argument("--script", default=None,
                           help="rebalance script file (lines: "
                                "'split SHARD DOC', 'merge SHARD', "
                                "'add-replica SHARD [WAL_DIR]'; optional "
                                "'@SECONDS' prefix is ignored here — "
                                "moves run back to back). Default: a "
                                "split -> merge -> add-replica demo "
                                "sequence")
    rebalance.add_argument("-k", type=int, default=10)
    rebalance.add_argument("--oracle-queries", type=int, default=24,
                           help="Zipf-sampled queries checked against "
                                "the monolithic index after every move "
                                "(0 disables the oracle)")
    rebalance.add_argument("--json", action="store_true",
                           help="emit per-move reports as JSON")
    _add_fault_arguments(rebalance)

    ingest = sub.add_parser(
        "ingest",
        help="live-index ingest: buffered adds, seals, tiered merges")
    ingest.add_argument("--docs", type=int, default=2000,
                        help="documents to ingest")
    ingest.add_argument("--delete-every", type=int, default=0,
                        help="delete the oldest live doc every N adds "
                             "(0 = append-only)")
    ingest.add_argument("--buffer", type=int, default=128,
                        help="write-buffer capacity in documents")
    ingest.add_argument("--fanout", type=int, default=4,
                        help="merge-policy fanout (segments per merge)")
    ingest.add_argument("--vocab", type=int, default=64,
                        help="synthetic vocabulary size")
    ingest.add_argument("--device", choices=("scm", "dram"),
                        default="scm",
                        help="device model timing the seals and merges")
    ingest.add_argument("--seed", type=int, default=1)
    ingest.add_argument("--wal-dir", default=None,
                        help="durable mode: WAL + manifest + segment "
                             "files in this directory; an existing log "
                             "is crash-recovered before ingest continues")
    ingest.add_argument("--json", action="store_true",
                        help="emit the ingest report as JSON")

    sub.add_parser("demo", help="synthetic-corpus engine comparison")
    return parser


def _add_storage_arguments(command) -> None:
    """Index-loading flags shared by every command that takes --index.

    Safe by default: pickle snapshots (which execute code on load) are
    refused unless the user passes ``--trust-pickle``. Binary ``.bossx``
    files are served zero-copy via mmap.
    """
    command.add_argument("--storage", choices=STORAGE_MODES,
                         default="auto",
                         help="index storage backend (auto sniffs the "
                              "file: .bossx -> mmap, else pickle)")
    command.add_argument("--trust-pickle", action="store_true",
                         help="allow loading pickle index snapshots "
                              "(unpickling can execute arbitrary code; "
                              "only for files you built yourself)")


def _load_cli_index(args):
    """Open ``args.index`` honoring the storage/trust flags."""
    return open_index(args.index, storage=args.storage,
                      trust_pickle=args.trust_pickle)


def _add_fault_arguments(command) -> None:
    """Cluster fault-injection / resilience flags (bench and trace)."""
    group = command.add_argument_group(
        "cluster resilience",
        "run a sharded cluster with deterministic fault injection "
        "(--shards enables the mode; synthetic documents, no --index)",
    )
    group.add_argument("--shards", type=int, default=0,
                       help="leaf shards (0 = single engine, the default)")
    group.add_argument("--replication", type=int, default=1,
                       help="leaf nodes per shard (1 = no replicas)")
    group.add_argument("--fault-rate", type=float, default=0.0,
                       help="transient leaf-failure probability per query")
    group.add_argument("--corruption-rate", type=float, default=0.0,
                       help="corrupted-payload probability per query")
    group.add_argument("--kill-shard", type=int, default=None,
                       help="shard whose primary dies after the first "
                            "query (replicas stay healthy)")
    group.add_argument("--fault-seed", type=int, default=7,
                       help="fault schedule seed")
    group.add_argument("--retries", type=int, default=2,
                       help="extra attempts per leaf engine")
    group.add_argument("--timeout-ms", type=float, default=None,
                       help="per-attempt leaf timeout (ms)")
    group.add_argument("--cluster-docs", type=int, default=1200,
                       help="synthetic documents behind the cluster")


def _build_fault_cluster(args, k: int, clock=None):
    """Assemble the faulty resilient cluster the CLI flags describe."""
    from repro.cluster.resilience import ResiliencePolicy
    from repro.faults import ZERO_FAULTS, FaultConfig, make_faulty_cluster
    from repro.workloads import synthetic_documents

    base = FaultConfig(
        seed=args.fault_seed,
        transient_failure_probability=args.fault_rate,
        corruption_probability=args.corruption_rate,
    )
    if args.kill_shard is not None:
        from dataclasses import replace

        faults = [
            replace(base, permanent_failure_after=0)
            if shard == args.kill_shard else base
            for shard in range(args.shards)
        ]
    else:
        faults = base
    policy = ResiliencePolicy(
        timeout_seconds=(args.timeout_ms / 1e3
                         if args.timeout_ms is not None else None),
        max_retries=args.retries,
        allow_degraded=True,
    )
    cluster, sharded = make_faulty_cluster(
        synthetic_documents(num_docs=args.cluster_docs, seed=args.fault_seed),
        args.shards, faults=faults, policy=policy,
        replication_factor=args.replication, k=k,
        replica_faults=ZERO_FAULTS if args.kill_shard is not None else None,
        clock=clock,
    )
    return cluster, sharded


def _cmd_build(args) -> int:
    builder = IndexBuilder(
        schemes=[args.scheme] if args.scheme else None
    )
    analyzer = None
    if args.analyze:
        from repro.text import Analyzer

        analyzer = Analyzer()
    count = 0
    with open(args.input) as handle:
        for line in handle:
            if not line.strip():
                continue
            tokens = analyzer.analyze(line) if analyzer else line.split()
            builder.add_document(tokens if tokens else ["__empty__"])
            count += 1
    index = builder.build()
    if args.format == "binary":
        save_index_binary(index, args.output)
    else:
        save_index(index, args.output)
    print(f"indexed {count} documents, {index.num_terms} terms, "
          f"{index.compressed_bytes} compressed bytes -> {args.output} "
          f"({args.format})")
    return 0


def _cmd_info(args) -> int:
    index = _load_cli_index(args)
    stats = index.stats
    print(f"documents:        {stats.num_docs}")
    print(f"terms:            {index.num_terms}")
    print(f"avg doc length:   {stats.avgdl:.1f} tokens")
    print(f"compressed size:  {index.compressed_bytes} B")
    print(f"raw size:         {index.uncompressed_bytes} B "
          f"(ratio {index.uncompressed_bytes / max(1, index.compressed_bytes):.2f}x)")
    schemes = {}
    for term in index:
        scheme = index.posting_list(term).scheme
        schemes[scheme] = schemes.get(scheme, 0) + 1
    print("scheme mix:       " + ", ".join(
        f"{s}={n}" for s, n in sorted(schemes.items())
    ))
    return 0


def _cmd_search(args) -> int:
    index = _load_cli_index(args)
    if args.hybrid:
        return _search_hybrid(args, index)
    if args.engine == "boss":
        engine = BossAccelerator(index, BossConfig(k=args.k))
        model = BossTimingModel()
    elif args.engine == "iiu":
        engine = IIUAccelerator(index, IIUConfig(k=args.k))
        model = IIUTimingModel()
    else:
        engine = LuceneEngine(index, LuceneConfig(k=args.k))
        model = LuceneTimingModel()
    result = engine.search(args.query, k=args.k)
    print(f"[{result.query_type}] {args.query} on {args.engine}")
    for rank, hit in enumerate(result.hits, start=1):
        print(f"{rank:>3}. doc {hit.doc_id:<8} score {hit.score:.4f}")
    if not result.hits:
        print("  (no matching documents)")
    latency = model.query_seconds(result)
    print(f"traffic: {result.traffic.total_bytes} B device, "
          f"{result.interconnect_bytes} B host link; "
          f"modeled latency {latency * 1e6:.1f} us")
    return 0


def _search_hybrid(args, index) -> int:
    """``search --hybrid``: lexical + vector retrieval over one index."""
    from repro.errors import ConfigurationError

    if args.engine != "boss":
        raise ConfigurationError(
            "--hybrid runs on the boss engine; drop --engine"
        )
    from repro.api import BossSession

    session = BossSession(BossConfig(k=args.k))
    session.init(index)
    session.init_vectors(codec=args.codec)
    result = session.search_hybrid(
        args.query, k=args.k, mode=args.hybrid,
        first_stage_k=args.first_stage_k,
    )
    print(f"[hybrid:{result.mode}] {args.query}")
    for rank, hit in enumerate(result.hits, start=1):
        print(f"{rank:>3}. doc {hit.doc_id:<8} score {hit.score:.4f}")
    if not result.hits:
        print("  (no matching documents)")
    if result.mode == "rerank":
        print(f"{result.candidates} candidates rescored, "
              f"rerank {result.rerank_seconds * 1e6:.1f} us host")
    else:
        vec = result.vector
        print(f"fused {result.candidates} candidates; ANN probed "
              f"{vec.clusters_probed} clusters / "
              f"{vec.vectors_scanned} vectors "
              f"({vec.demand_bytes} B demand)")
    print(f"modeled end-to-end latency "
          f"{result.modeled_seconds * 1e6:.1f} us")
    return 0


def _cmd_vsearch(args) -> int:
    """``vsearch``: the ANN lane standalone, with its traffic ledger."""
    import json

    from repro.errors import ConfigurationError
    from repro.vector import VectorEngine, build_ivf, embed_corpus
    from repro.workloads import make_corpus

    corpus = make_corpus(args.preset, scale=args.scale)
    embeddings = embed_corpus(corpus)
    if args.ivf:
        from repro.vector import load_ivf

        ivf = load_ivf(args.ivf)
        if ivf.num_docs != embeddings.num_docs:
            raise ConfigurationError(
                f"{args.ivf} holds {ivf.num_docs} vectors but the "
                f"corpus has {embeddings.num_docs} documents"
            )
    else:
        ivf = build_ivf(embeddings, num_clusters=args.clusters,
                        codec=args.codec)
    if args.save:
        from repro.vector import save_ivf

        nbytes = save_ivf(ivf, args.save)
        print(f"wrote {args.save} ({nbytes} B)")
    engine = VectorEngine(ivf, embeddings,
                          device=_live_device(args.device),
                          nprobe=args.nprobe)

    if args.query:
        result = engine.search(args.query, k=args.k)
        oracle = engine.brute_force(args.query, k=args.k)
        oracle_ids = [hit.doc_id for hit in oracle]
        if args.json:
            print(json.dumps({
                "query": args.query, "hits": [
                    {"doc_id": h.doc_id, "score": h.score}
                    for h in result.hits
                ],
                "nprobe": result.nprobe,
                "clusters_probed": result.clusters_probed,
                "vectors_scanned": result.vectors_scanned,
                "centroid_bytes": result.centroid_bytes,
                "cluster_seq_bytes": result.cluster_seq_bytes,
                "cluster_hop_bytes": result.cluster_hop_bytes,
                "demand_bytes": result.demand_bytes,
                "modeled_seconds": result.modeled_seconds,
                "brute_force": oracle_ids,
            }, indent=2))
            return 0
        print(f"[vector] {args.query} on {ivf.num_clusters} clusters "
              f"({ivf.codec}), nprobe={result.nprobe}, "
              f"device={args.device}")
        for rank, hit in enumerate(result.hits, start=1):
            marker = " " if hit.doc_id in oracle_ids else "*"
            print(f"{rank:>3}.{marker}doc {hit.doc_id:<8} "
                  f"cosine {hit.score:.4f}")
        print(f"probed {result.clusters_probed} clusters / "
              f"{result.vectors_scanned} vectors "
              f"({result.coalesced_probes} probes coalesced)")
        print(f"traffic: centroid {result.centroid_bytes} B seq + "
              f"cluster {result.cluster_seq_bytes} B seq + "
              f"{result.cluster_hop_bytes} B random hops "
              f"= {result.demand_bytes} B demand (conserved)")
        print(f"modeled latency {result.modeled_seconds * 1e6:.2f} us")
        return 0

    # Query-set mode: sampled term queries, recall + latency report.
    from repro.workloads.queries import QuerySampler

    sampler = QuerySampler(corpus.terms_by_df(), seed=args.seed)
    queries = [
        spec.expression
        for spec in sampler.sample_zipf_log(
            max(1, args.queries), unique_queries=max(1, args.queries)
        )
    ]
    recall = engine.recall_at_k(queries, k=args.k)
    latencies = sorted(
        engine.search(q, k=args.k).modeled_seconds for q in queries
    )
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1,
                        int(len(latencies) * 0.99))]
    payload = {
        "preset": args.preset, "scale": args.scale,
        "num_docs": embeddings.num_docs, "dim": embeddings.dim,
        "clusters": ivf.num_clusters, "codec": ivf.codec,
        "nprobe": engine.nprobe, "device": args.device,
        "queries": len(queries), "k": args.k,
        f"recall_at_{args.k}": recall,
        "p50_modeled_us": p50 * 1e6, "p99_modeled_us": p99 * 1e6,
        "packed_bytes": ivf.packed_bytes,
        "centroid_bytes": ivf.centroid_bytes,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{embeddings.num_docs} docs x dim {embeddings.dim} -> "
          f"{ivf.num_clusters} clusters ({ivf.codec}), "
          f"layout {ivf.packed_bytes} B on {args.device} + "
          f"{ivf.centroid_bytes} B centroids in DRAM")
    print(f"{len(queries)} queries, nprobe={engine.nprobe}: "
          f"recall@{args.k} {recall:.3f} vs exact")
    print(f"modeled latency p50={p50 * 1e6:.2f} us "
          f"p99={p99 * 1e6:.2f} us")
    return 0


def _cmd_validate(args) -> int:
    from repro.index.validate import validate_index

    index = _load_cli_index(args)
    report = validate_index(index, check_scores=not args.fast)
    print(f"terms: {report.terms_checked}, blocks: "
          f"{report.blocks_checked}, postings: {report.postings_checked}")
    for warning in report.warnings[:10]:
        print(f"warning: {warning}")
    if report.ok:
        print("index OK")
        return 0
    for error in report.errors[:20]:
        print(f"ERROR: {error}")
    print(f"{len(report.errors)} integrity errors")
    return 1


def _cmd_trace(args) -> int:
    import json

    from repro.observability import RecordingObserver, build_trace, render_trace

    if args.shards:
        return _cmd_trace_cluster(args)
    if not args.index:
        from repro.errors import ConfigurationError

        raise ConfigurationError("trace needs --index (or --shards)")
    index = _load_cli_index(args)
    if args.engine == "boss":
        from repro.api import BossSession

        observer = RecordingObserver()
        session = BossSession(BossConfig(k=args.k), observer=observer)
        session.init(index)
        session.search(args.query, k=args.k)
        trace = observer.last_trace
    else:
        engine = IIUAccelerator(index, IIUConfig(k=args.k))
        result = engine.search(args.query, k=args.k)
        trace = build_trace(IIUTimingModel(), result, engine="IIU")
    if args.json:
        print(json.dumps(trace.to_dict(), indent=2))
    else:
        print(render_trace(trace))
    return 0


def _cmd_trace_cluster(args) -> int:
    """``trace --shards N``: per-shard resilience breakdown of a query."""
    import json

    from repro.cluster.resilience import describe_outcomes

    cluster, _sharded = _build_fault_cluster(args, args.k)
    merged = cluster.search(args.query, k=args.k)
    if args.json:
        record = {
            "query": args.query,
            "shards": args.shards,
            "replication": args.replication,
            "degraded": merged.degraded,
            "shards_failed": list(merged.shards_failed),
            "leaf_retries": merged.leaf_retries,
            "leaf_timeouts": merged.leaf_timeouts,
            "leaf_failovers": merged.leaf_failovers,
            "hits": [
                {"doc_id": hit.doc_id, "score": hit.score}
                for hit in merged.hits
            ],
            "leaves": [
                None if outcome is None else {
                    "shard": outcome.shard_index,
                    "failed": outcome.failed,
                    "attempts": outcome.attempts,
                    "retries": outcome.retries,
                    "timeouts": outcome.timeouts,
                    "failovers": outcome.failovers,
                    "elapsed_seconds": outcome.elapsed_seconds,
                    "error": outcome.error,
                }
                for outcome in (merged.leaf_outcomes or [])
            ],
        }
        print(json.dumps(record, indent=2))
        return 0
    state = "DEGRADED" if merged.degraded else "complete"
    print(f"{args.query} over {args.shards} shards "
          f"x{args.replication}: {state}, {len(merged.hits)} hits")
    print(describe_outcomes(merged.leaf_outcomes or []))
    if merged.shards_failed:
        print(f"failed shards: {sorted(merged.shards_failed)}")
    print(f"resilience: retries={merged.leaf_retries} "
          f"timeouts={merged.leaf_timeouts} "
          f"failovers={merged.leaf_failovers}")
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.api import BossSession
    from repro.observability import RecordingObserver, render_metrics
    from repro.scm.pool import MemoryPool

    index = _load_cli_index(args)
    observer = RecordingObserver()
    MemoryPool().publish_metrics(observer.registry)
    session = BossSession(BossConfig(k=args.k), observer=observer)
    session.init(index)
    for expression in args.query:
        session.search(expression, k=args.k)
    if args.json:
        print(json.dumps(observer.registry.snapshot(), indent=2))
    else:
        print(f"{len(observer.traces)} queries recorded")
        print(render_metrics(observer.registry))
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.batch import run_query_batch
    from repro.workloads import QuerySampler

    if args.shards:
        return _cmd_bench_cluster(args)
    if args.index:
        index = _load_cli_index(args)
        terms_by_df = sorted(
            index.terms,
            key=lambda t: index.posting_list(t).document_frequency,
            reverse=True,
        )
    else:
        from repro.workloads import make_corpus

        corpus = make_corpus(args.preset, scale=args.scale)
        index = corpus.index
        terms_by_df = corpus.terms_by_df()
    sampler = QuerySampler(terms_by_df, seed=args.seed)
    unique = max(1, min(args.unique, args.queries))
    queries = [
        spec.expression
        for spec in sampler.sample_zipf_log(args.queries,
                                            unique_queries=unique)
    ]
    engine = BossAccelerator(index, BossConfig(k=args.k),
                             fast_path=not args.no_fast_path,
                             executor=args.executor)
    reports = []
    for _ in range(max(1, args.repeat)):
        batch = run_query_batch(engine, queries, k=args.k,
                                workers=args.workers)
        reports.append(batch.report)
    cache = engine.decoded_cache
    if args.json:
        payload = {
            "fast_path": engine.fast_path,
            "executor": engine.executor,
            "passes": [report.to_dict() for report in reports],
        }
        if cache is not None:
            payload["decoded_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
            }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{len(queries)} queries ({unique} unique), "
          f"{engine.executor} executor, "
          f"workers={reports[0].workers}")
    print(f"{'pass':<6}{'qps':>10}{'p50 (ms)':>10}{'p95 (ms)':>10}")
    for number, report in enumerate(reports, start=1):
        label = "cold" if number == 1 else "warm"
        print(f"{label:<6}{report.queries_per_second:>10.1f}"
              f"{report.p50_seconds * 1e3:>10.2f}"
              f"{report.p95_seconds * 1e3:>10.2f}")
    if cache is not None:
        print(f"decoded-block cache: {cache.hits} hits / "
              f"{cache.misses} misses ({cache.hit_rate:.1%})")
    return 0


def _cmd_bench_cluster(args) -> int:
    """``bench --shards N``: resilient cluster under injected faults."""
    import json

    from repro.batch import run_query_batch
    from repro.errors import ConfigurationError
    from repro.workloads import QuerySampler

    if args.index:
        raise ConfigurationError(
            "--shards benches a synthetic sharded corpus; drop --index"
        )
    cluster, _sharded = _build_fault_cluster(args, args.k)
    vocab = [f"t{i}" for i in range(40)]
    sampler = QuerySampler(vocab, seed=args.seed)
    unique = max(1, min(args.unique, args.queries))
    queries = [
        spec.expression
        for spec in sampler.sample_zipf_log(args.queries,
                                            unique_queries=unique)
    ]
    passes = []
    for _ in range(max(1, args.repeat)):
        batch = run_query_batch(cluster, queries, k=args.k,
                                workers=args.workers)
        retries = sum(r.leaf_retries for r in batch.results)
        timeouts = sum(r.leaf_timeouts for r in batch.results)
        failovers = sum(r.leaf_failovers for r in batch.results)
        failed_shards = sorted({
            shard for r in batch.results for shard in r.shards_failed
        })
        passes.append((batch.report, retries, timeouts, failovers,
                       failed_shards))
    if args.json:
        print(json.dumps({
            "shards": args.shards,
            "replication": args.replication,
            "fault_rate": args.fault_rate,
            "corruption_rate": args.corruption_rate,
            "retries_budget": args.retries,
            "timeout_ms": args.timeout_ms,
            "passes": [
                dict(report.to_dict(), leaf_retries=retries,
                     leaf_timeouts=timeouts, leaf_failovers=failovers,
                     failed_shards=failed_shards)
                for report, retries, timeouts, failovers, failed_shards
                in passes
            ],
        }, indent=2))
        return 0
    print(f"{len(queries)} queries ({unique} unique) over {args.shards} "
          f"shards x{args.replication}, fault rate {args.fault_rate:g}, "
          f"corruption {args.corruption_rate:g}, "
          f"retries {args.retries}, workers={passes[0][0].workers}")
    print(f"{'pass':<6}{'qps':>9}{'p50 (ms)':>10}{'p95 (ms)':>10}"
          f"{'p99 (ms)':>10}{'retries':>9}{'timeouts':>9}"
          f"{'failover':>9}{'degraded':>9}")
    for number, (report, retries, timeouts, failovers,
                 failed_shards) in enumerate(passes, start=1):
        print(f"{number:<6}{report.queries_per_second:>9.1f}"
              f"{report.p50_seconds * 1e3:>10.2f}"
              f"{report.p95_seconds * 1e3:>10.2f}"
              f"{report.p99_seconds * 1e3:>10.2f}"
              f"{retries:>9}{timeouts:>9}{failovers:>9}"
              f"{report.degraded_fraction:>8.1%}")
        if failed_shards:
            print(f"      failed shards: {failed_shards}")
    return 0


def _live_device(name: str):
    """Maintenance device model for the live-index commands."""
    from repro.scm.device import DDR4_4CH, OPTANE_NODE_4CH

    return OPTANE_NODE_4CH if name == "scm" else DDR4_4CH


def _build_live_writer(seed: int, num_docs: int, vocab_size: int,
                       device, buffer_docs: int = 128, fanout: int = 4):
    """A live writer pre-loaded with a synthetic corpus.

    Document ``i`` always contains vocabulary term ``i mod vocab_size``
    (plus seeded random filler), so every term keeps live coverage even
    under oldest-document churn — queries over the vocabulary never hit
    a dead term.
    """
    import random as _random

    from repro.live import LiveIndexWriter, MergePolicy

    vocab = [f"t{i}" for i in range(vocab_size)]
    writer = LiveIndexWriter(device=device, buffer_docs=buffer_docs,
                             policy=MergePolicy(fanout=fanout))
    rng = _random.Random(f"live-corpus:{seed}")
    for i in range(num_docs):
        length = rng.randint(4, 24)
        tokens = [vocab[i % vocab_size]]
        tokens += [rng.choice(vocab) for _ in range(length - 1)]
        writer.add_document(tokens)
    writer.flush()
    return writer, vocab


def _cmd_serve(args) -> int:
    """``serve``: sustained open-loop load through the serving layer."""
    import json

    from repro.errors import ConfigurationError
    from repro.serving import QueryServer, ServingConfig, zipf_workload

    if args.hybrid:
        if args.planner or args.update_mix or args.shards \
                or args.rebalance_script:
            raise ConfigurationError(
                "--hybrid serves a single-engine hybrid target; drop "
                "--planner/--update-mix/--shards/--rebalance-script"
            )
        return _serve_hybrid(args)
    if args.rebalance_script:
        if args.update_mix or args.planner:
            raise ConfigurationError(
                "--rebalance-script runs the sharded serving path; "
                "drop --update-mix/--planner"
            )
        return _serve_rebalance(args)
    if args.update_mix:
        if args.planner:
            raise ConfigurationError(
                "--planner does not serve --update-mix workloads yet"
            )
        return _serve_live(args)
    if args.shards:
        if args.index:
            raise ConfigurationError(
                "--shards serves a synthetic sharded corpus; drop --index"
            )
        target, _sharded = _build_fault_cluster(args, args.k)
        vocab = [f"t{i}" for i in range(40)]
    elif args.index:
        index = _load_cli_index(args)
        target = BossAccelerator(index, BossConfig(k=args.k))
        vocab = sorted(
            index.terms,
            key=lambda t: index.posting_list(t).document_frequency,
            reverse=True,
        )
    else:
        from repro.workloads import make_corpus

        corpus = make_corpus(args.preset, scale=args.scale)
        target = BossAccelerator(corpus.index, BossConfig(k=args.k))
        vocab = corpus.terms_by_df()

    if args.planner:
        return _serve_planned(args, target, vocab)

    config = ServingConfig(
        workers=args.workers,
        queue_capacity=args.queue,
        admission=args.admission,
        deadline_seconds=(args.deadline_ms / 1e3
                          if args.deadline_ms is not None else None),
        k=args.k,
    )
    requests = zipf_workload(vocab, args.queries, args.rate,
                             unique_queries=args.unique, seed=args.seed)
    result = QueryServer(target, config).serve(requests)
    report = result.report

    if args.json:
        payload = dict(report.to_dict(), rate_qps=args.rate,
                       admission=args.admission, workers=args.workers,
                       queue_capacity=args.queue, shards=args.shards)
        print(json.dumps(payload, indent=2))
        return 0
    where = (f"{args.shards} shards x{args.replication}"
             if args.shards else "single engine")
    print(f"{args.queries} requests at {args.rate:g} qps offered "
          f"({where}), workers={args.workers}, queue={args.queue}, "
          f"admission={args.admission}")
    print(f"served {report.served} ({report.served_degraded} degraded), "
          f"shed {report.shed} ({report.shed_fraction:.1%})")
    if report.shed_by_reason:
        detail = ", ".join(f"{reason}={count}" for reason, count
                           in sorted(report.shed_by_reason.items()))
        print(f"shed by reason: {detail}")
    if report.deadline_seconds is not None:
        print(f"SLO {report.deadline_seconds * 1e3:g}ms: "
              f"{report.slo_attained} attained, "
              f"{report.slo_violated} violated "
              f"({report.slo_violation_fraction:.1%} violation incl. shed)")
    print(f"throughput: {report.achieved_qps:.1f} qps achieved vs "
          f"{report.offered_qps:.1f} offered")
    print(f"latency ms: p50={report.p50_latency_seconds * 1e3:.2f} "
          f"p95={report.p95_latency_seconds * 1e3:.2f} "
          f"p99={report.p99_latency_seconds * 1e3:.2f}")
    print(f"queue depth: mean={report.mean_queue_depth:.2f} "
          f"max={report.max_queue_depth}")
    return 0


def _serve_hybrid(args) -> int:
    """``serve --hybrid``: hybrid traffic on the open-loop timeline.

    Service time is fully modeled (lexical device time + ANN scan time
    + host rerank time), so the run is a pure function of the workload
    — the same determinism contract as ``--update-mix`` serving.
    """
    import json

    from repro.serving import QueryServer, ServingConfig, zipf_workload
    from repro.vector import (
        HybridSearch,
        HybridServingTarget,
        VectorEngine,
        build_ivf,
        embed_corpus,
    )
    from repro.workloads import make_corpus

    if args.index:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "--hybrid builds its vector lane over a synthetic corpus; "
            "drop --index"
        )
    corpus = make_corpus(args.preset, scale=args.scale)
    engine = BossAccelerator(corpus.index, BossConfig(k=args.k))
    embeddings = embed_corpus(corpus)
    ivf = build_ivf(embeddings)
    vector_engine = VectorEngine(ivf, embeddings,
                                 device=_live_device(args.device))
    hybrid = HybridSearch(engine, vector_engine, mode=args.hybrid)
    target = HybridServingTarget(hybrid)

    config = ServingConfig(
        workers=args.workers,
        queue_capacity=args.queue,
        admission=args.admission,
        deadline_seconds=(args.deadline_ms / 1e3
                          if args.deadline_ms is not None else None),
        k=args.k,
    )
    requests = zipf_workload(corpus.terms_by_df(), args.queries,
                             args.rate, unique_queries=args.unique,
                             seed=args.seed)
    result = QueryServer(target, config,
                         service_time=target.service_time).serve(requests)
    report = result.report
    if args.json:
        payload = dict(report.to_dict(), rate_qps=args.rate,
                       hybrid=args.hybrid, device=args.device,
                       clusters=ivf.num_clusters,
                       nprobe=vector_engine.nprobe)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.queries} hybrid ({args.hybrid}) requests at "
          f"{args.rate:g} qps offered on {args.device}, "
          f"workers={args.workers}, queue={args.queue}, "
          f"admission={args.admission}")
    print(f"vector lane: {ivf.num_clusters} clusters ({ivf.codec}), "
          f"nprobe={vector_engine.nprobe}")
    print(f"served {report.served}, shed {report.shed} "
          f"({report.shed_fraction:.1%})")
    print(f"throughput: {report.achieved_qps:.1f} qps achieved vs "
          f"{report.offered_qps:.1f} offered")
    print(f"latency ms: p50={report.p50_latency_seconds * 1e3:.2f} "
          f"p95={report.p95_latency_seconds * 1e3:.2f} "
          f"p99={report.p99_latency_seconds * 1e3:.2f}")
    return 0


def _parse_tenants(spec: str, window_seconds: float):
    """Parse ``--tenants`` NAME=BYTES_PER_WINDOW pairs."""
    from repro.errors import ConfigurationError
    from repro.ioplanner import TenantSpec

    tenants = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, quota = chunk.partition("=")
        if not sep:
            raise ConfigurationError(
                f"--tenants entry {chunk!r} is not NAME=BYTES_PER_WINDOW"
            )
        try:
            quota_bytes = int(quota)
        except ValueError:
            raise ConfigurationError(
                f"--tenants quota {quota!r} is not an integer"
            ) from None
        tenants.append(TenantSpec(name.strip(), quota_bytes))
    if not tenants:
        raise ConfigurationError("--tenants parsed no tenant specs")
    return tuple(tenants)


def _serve_planned(args, target, vocab) -> int:
    """``serve --planner``: windowed, planned serving (docs/io_planner.md)."""
    import json

    from repro.ioplanner import PlannedQueryServer, PlannerConfig
    from repro.serving import zipf_workload

    window_seconds = args.plan_window / 1e3
    tenants = (
        _parse_tenants(args.tenants, window_seconds)
        if args.tenants else ()
    )
    config = PlannerConfig(
        window_seconds=window_seconds,
        dram_bytes=int(args.dram_mb * (1 << 20)),
        enabled=not args.no_planning,
        workers=args.workers,
        queue_capacity=max(1, args.queue),
        deadline_seconds=(args.deadline_ms / 1e3
                          if args.deadline_ms is not None else None),
        k=args.k,
        tenants=tenants,
    )
    requests = zipf_workload(
        vocab, args.queries, args.rate, unique_queries=args.unique,
        seed=args.seed,
        tenants=[t.name for t in tenants] if tenants else None,
    )
    result = PlannedQueryServer(target, config).serve(requests)
    report, planner = result.report, result.planner

    if args.json:
        payload = dict(report.to_dict(), rate_qps=args.rate,
                       workers=args.workers, shards=args.shards,
                       planner=planner.to_dict())
        print(json.dumps(payload, indent=2))
        return 0
    mode = "planning on" if config.enabled else "planning OFF (baseline)"
    print(f"{args.queries} requests at {args.rate:g} qps offered "
          f"through the I/O planner ({mode}), "
          f"window={args.plan_window:g}ms, dram={args.dram_mb:g}MiB, "
          f"workers={args.workers}")
    print(f"served {report.served}, shed {report.shed} "
          f"({report.shed_fraction:.1%})")
    print(f"latency ms: p50={report.p50_latency_seconds * 1e3:.3f} "
          f"p95={report.p95_latency_seconds * 1e3:.3f} "
          f"p99={report.p99_latency_seconds * 1e3:.3f}")
    mib = 1 / (1 << 20)
    print(f"demand {planner.demand_bytes * mib:.2f}MiB over "
          f"{planner.windows} windows: "
          f"{planner.staged_fraction:.1%} staged in DRAM "
          f"(tier {planner.dram_hit_bytes * mib:.2f}MiB + dedup "
          f"{planner.dedup_bytes * mib:.2f}MiB)")
    print(f"SCM miss traffic: {planner.scm_seq_bytes * mib:.2f}MiB "
          f"sequential + {planner.scm_rand_bytes * mib:.2f}MiB random "
          f"(sequential share {planner.sequential_share:.1%}) in "
          f"{planner.runs} transfers ({planner.sequential_runs} "
          f"coalesced), gap-fill {planner.gap_bytes * mib:.3f}MiB, "
          f"prefetch {planner.prefetch_bytes * mib:.3f}MiB")
    if tenants:
        for tenant in tenants:
            served = planner.tenant_served.get(tenant.name, 0)
            shed = planner.tenant_shed.get(tenant.name, 0)
            nbytes = planner.tenant_bytes.get(tenant.name, 0)
            print(f"tenant {tenant.name}: served {served}, shed {shed}, "
                  f"{nbytes * mib:.2f}MiB charged "
                  f"(quota {tenant.quota_bytes_per_window}B/window)")
    return 0


def _serve_live(args) -> int:
    """``serve --update-mix``: mixed query/mutation load on a live index.

    Deterministic end to end: the workload is a pure function of the
    seed, service times come from the modeled device (updates occupy
    maintenance busy-windows; queries queue behind them), and the
    shared virtual clock never reads wall time.
    """
    import json

    from repro.errors import ConfigurationError
    from repro.live import LiveServingTarget
    from repro.serving import QueryServer, ServingConfig, zipf_workload

    if args.shards or args.index:
        raise ConfigurationError(
            "--update-mix serves a live synthetic corpus; "
            "drop --index/--shards"
        )
    device = _live_device(args.device)
    num_docs = max(64, int(1600 * args.scale))
    writer, vocab = _build_live_writer(args.seed, num_docs,
                                       vocab_size=32, device=device)
    target = LiveServingTarget(writer)
    config = ServingConfig(
        workers=args.workers,
        queue_capacity=args.queue,
        admission=args.admission,
        deadline_seconds=(args.deadline_ms / 1e3
                          if args.deadline_ms is not None else None),
        k=args.k,
    )
    requests = zipf_workload(vocab, args.queries, args.rate,
                             unique_queries=args.unique, seed=args.seed,
                             update_mix=args.update_mix)
    server = QueryServer(target, config,
                         service_time=target.service_time,
                         clock=writer.clock)
    report = server.serve(requests).report
    updates = sum(1 for r in requests if r.update is not None)

    live_stats = {
        "update_mix": args.update_mix,
        "updates_offered": updates,
        "device": args.device,
        "live_docs": writer.index.num_docs,
        "segments": writer.index.num_segments,
        "seals": len(writer.scheduler.seals),
        "merges": len(writer.scheduler.records),
        "write_amplification": round(writer.write_amplification, 4),
        "index_write_bytes": writer.index_write_bytes,
        "maintenance_seconds": writer.scheduler.busy_seconds,
    }
    if args.json:
        payload = dict(report.to_dict(), rate_qps=args.rate,
                       admission=args.admission, workers=args.workers,
                       queue_capacity=args.queue, **live_stats)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.queries} requests ({updates} updates, "
          f"{args.update_mix:.0%} mix) at {args.rate:g} qps offered on "
          f"{args.device} (live index, {num_docs} initial docs)")
    print(f"served {report.served}, shed {report.shed} "
          f"({report.shed_fraction:.1%})")
    print(f"latency ms: p50={report.p50_latency_seconds * 1e3:.3f} "
          f"p95={report.p95_latency_seconds * 1e3:.3f} "
          f"p99={report.p99_latency_seconds * 1e3:.3f}")
    print(f"live index: {live_stats['live_docs']} docs in "
          f"{live_stats['segments']} segments after "
          f"{live_stats['seals']} seals + {live_stats['merges']} merges; "
          f"write amplification {live_stats['write_amplification']:.2f}")
    print(f"maintenance: {writer.index_write_bytes} B written, "
          f"{writer.scheduler.busy_seconds * 1e3:.3f} ms of device time")
    return 0


def _load_rebalance_ops(path: str):
    """Read and parse a rebalance script file; error if it holds no ops."""
    from repro.cluster import parse_rebalance_script
    from repro.errors import ConfigurationError

    with open(path) as handle:
        timed_ops = parse_rebalance_script(handle.read())
    if not timed_ops:
        raise ConfigurationError(
            f"rebalance script {path!r} holds no operations"
        )
    return timed_ops


def _serve_rebalance(args) -> int:
    """``serve --rebalance-script``: topology moves under live traffic.

    The moves ride the open-loop timeline as update requests spliced
    between the queries; both sides share one virtual clock, so query
    latency shows the maintenance busy-window and the whole run replays
    from its seeds.
    """
    import json

    from repro.clock import VirtualClock
    from repro.cluster import (
        Rebalancer,
        RebalancingClusterTarget,
        rebalance_requests,
    )
    from repro.errors import ConfigurationError
    from repro.serving import (
        QueryServer,
        ServingConfig,
        splice_requests,
        zipf_workload,
    )

    if not args.shards:
        raise ConfigurationError("--rebalance-script requires --shards")
    if args.index:
        raise ConfigurationError(
            "--rebalance-script serves a synthetic sharded corpus; "
            "drop --index"
        )
    timed_ops = _load_rebalance_ops(args.rebalance_script)
    clock = VirtualClock()
    cluster, sharded = _build_fault_cluster(args, args.k, clock=clock)
    rebalancer = Rebalancer(cluster, sharded, clock=clock, k=args.k)
    target = RebalancingClusterTarget(cluster, rebalancer)
    vocab = [f"t{i}" for i in range(40)]
    config = ServingConfig(
        workers=args.workers,
        queue_capacity=args.queue,
        admission=args.admission,
        deadline_seconds=(args.deadline_ms / 1e3
                          if args.deadline_ms is not None else None),
        k=args.k,
    )
    queries = zipf_workload(vocab, args.queries, args.rate,
                            unique_queries=args.unique, seed=args.seed)
    requests = splice_requests(queries, rebalance_requests(timed_ops))
    server = QueryServer(target, config,
                         service_time=target.service_time, clock=clock)
    report = server.serve(requests).report

    rebalance_stats = {
        "moves_offered": len(timed_ops),
        "moves_published": rebalancer.moves_published,
        "moves_aborted": rebalancer.moves_aborted,
        "rebalance_read_bytes": rebalancer.total_read_bytes,
        "rebalance_write_bytes": rebalancer.total_write_bytes,
        "map_version": cluster.map_version,
        "final_shards": sharded.num_shards,
        "moves": [move.to_dict() for move in rebalancer.reports],
    }
    if args.json:
        payload = dict(report.to_dict(), rate_qps=args.rate,
                       admission=args.admission, workers=args.workers,
                       queue_capacity=args.queue, shards=args.shards,
                       **rebalance_stats)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.queries} queries + {len(timed_ops)} rebalance moves "
          f"at {args.rate:g} qps offered ({args.shards} shards "
          f"x{args.replication}), workers={args.workers}, "
          f"admission={args.admission}")
    print(f"served {report.served} ({report.served_degraded} degraded), "
          f"shed {report.shed} ({report.shed_fraction:.1%})")
    print(f"latency ms: p50={report.p50_latency_seconds * 1e3:.3f} "
          f"p95={report.p95_latency_seconds * 1e3:.3f} "
          f"p99={report.p99_latency_seconds * 1e3:.3f}")
    print(f"rebalance: {rebalancer.moves_published} published, "
          f"{rebalancer.moves_aborted} aborted; "
          f"{rebalancer.total_read_bytes} B read + "
          f"{rebalancer.total_write_bytes} B written; shard map "
          f"v{cluster.map_version}, {sharded.num_shards} shards")
    for move in rebalancer.reports:
        outcome = "aborted" if move.aborted else "published"
        print(f"  {move.kind} shard {move.shard} ({move.detail}): "
              f"{outcome}, {move.postings_out} postings moved, "
              f"{move.modeled_seconds * 1e3:.3f} ms maintenance")
    return 0


def _cmd_rebalance(args) -> int:
    """``rebalance``: run moves back to back with a ranking oracle.

    Every move is followed (and the run preceded) by a differential
    check: the sharded cluster's rankings must be bit-identical to a
    monolithic index over the same documents — the invariant the
    elastic protocol promises (docs/robustness.md).
    """
    import json

    from repro.clock import VirtualClock
    from repro.cluster import (
        AddReplica,
        MergeShards,
        Rebalancer,
        SplitShard,
        shard_documents,
    )
    from repro.errors import RebalanceError
    from repro.workloads import QuerySampler, synthetic_documents

    if not args.shards:
        args.shards = 4
    clock = VirtualClock()
    cluster, sharded = _build_fault_cluster(args, args.k, clock=clock)
    rebalancer = Rebalancer(cluster, sharded, clock=clock, k=args.k)

    if args.script:
        ops = [op for _at, op in _load_rebalance_ops(args.script)]
    else:
        # Demo sequence: split the first shard at its midpoint, merge
        # the halves back, then add a catch-up replica to the last shard.
        lo, hi = sharded.boundaries[0], sharded.boundaries[1]
        ops = [
            SplitShard(0, (lo + hi) // 2),
            MergeShards(0),
            AddReplica(sharded.num_shards - 1),
        ]

    oracle = None
    if args.oracle_queries:
        documents = synthetic_documents(num_docs=args.cluster_docs,
                                        seed=args.fault_seed)
        monolith = BossAccelerator(shard_documents(documents, 1).indexes[0],
                                   BossConfig(k=args.k))
        sampler = QuerySampler([f"t{i}" for i in range(40)],
                               seed=args.fault_seed)
        expressions = [
            spec.expression
            for spec in sampler.sample_zipf_log(
                args.oracle_queries,
                unique_queries=max(1, args.oracle_queries // 2))
        ]

        def oracle():
            for expression in expressions:
                expected = [(hit.doc_id, round(hit.score, 12))
                            for hit in monolith.search(expression).hits]
                got = [(hit.doc_id, round(hit.score, 12))
                       for hit in cluster.search(expression, k=args.k).hits]
                if got != expected:
                    raise RebalanceError(
                        f"oracle: cluster ranking diverged from the "
                        f"monolith on {expression!r}"
                    )

    if oracle is not None:
        oracle()
    reports = []
    for op in ops:
        report = rebalancer.execute(op)
        reports.append(report)
        if oracle is not None:
            oracle()

    if args.json:
        payload = {
            "shards_before": args.shards,
            "shards_after": sharded.num_shards,
            "map_version": cluster.map_version,
            "moves_published": rebalancer.moves_published,
            "moves_aborted": rebalancer.moves_aborted,
            "read_bytes": rebalancer.total_read_bytes,
            "write_bytes": rebalancer.total_write_bytes,
            "oracle_queries": args.oracle_queries,
            "moves": [move.to_dict() for move in reports],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{len(reports)} moves on {args.shards} shards "
          f"x{args.replication} ({args.cluster_docs} docs) -> "
          f"{sharded.num_shards} shards, map v{cluster.map_version}")
    for move in reports:
        print(f"  {move.kind} shard {move.shard} ({move.detail}): "
              f"{' -> '.join(move.states)}; {move.postings_out} postings "
              f"out / {move.postings_in} in, {move.read_bytes} B read, "
              f"{move.write_bytes} B written, "
              f"{move.modeled_seconds * 1e3:.3f} ms maintenance")
    if args.oracle_queries:
        print(f"oracle: rankings bit-identical to the monolith across "
              f"{args.oracle_queries} queries after every move")
    print(f"totals: {rebalancer.total_read_bytes} B read, "
          f"{rebalancer.total_write_bytes} B written, "
          f"{rebalancer.moves_published} published / "
          f"{rebalancer.moves_aborted} aborted")
    return 0


def _cmd_ingest(args) -> int:
    """``ingest``: drive the live index and report write traffic."""
    import json
    import random as _random

    from repro.index.validate import validate_segmented
    from repro.live import LiveIndexWriter, MergePolicy
    from repro.scm.traffic import AccessClass

    device = _live_device(args.device)
    vocab = [f"t{i}" for i in range(args.vocab)]
    recovery = None
    if args.wal_dir:
        from repro.live import recover_live_index

        # On recovery the manifest's recorded configuration wins, so
        # the CLI flags only shape a freshly created directory.
        writer, recovery = recover_live_index(
            args.wal_dir, device=device, buffer_docs=args.buffer,
            policy=MergePolicy(fanout=args.fanout),
        )
    else:
        writer = LiveIndexWriter(device=device, buffer_docs=args.buffer,
                                 policy=MergePolicy(fanout=args.fanout))
    rng = _random.Random(f"ingest:{args.seed}")
    deleted = 0
    for i in range(args.docs):
        length = rng.randint(4, 24)
        tokens = [vocab[i % args.vocab]]
        tokens += [rng.choice(vocab) for _ in range(length - 1)]
        writer.add_document(tokens)
        if (args.delete_every and (i + 1) % args.delete_every == 0
                and writer.index.num_docs > 1):
            writer.delete_oldest()
            deleted += 1
    writer.flush()
    if args.wal_dir:
        from repro.live import load_manifest

        report = validate_segmented(
            writer.index, check_scores=False,
            manifest=load_manifest(writer.manifest_path),
            segment_dir=writer.wal_dir,
        )
    else:
        report = validate_segmented(writer.index, check_scores=False)
    if args.wal_dir:
        writer.close()

    tiers = writer.bytes_written_by_tier
    payload = {
        "docs_ingested": args.docs,
        "docs_deleted": deleted,
        "live_docs": writer.index.num_docs,
        "segments": writer.index.num_segments,
        "seals": len(writer.scheduler.seals),
        "merges": len(writer.scheduler.records),
        "device": args.device,
        "sealed_bytes": writer.sealed_bytes,
        "index_write_bytes": writer.index_write_bytes,
        "merge_read_bytes": writer.traffic.bytes_for(AccessClass.LD_LIST),
        "write_amplification": round(writer.write_amplification, 4),
        "bytes_by_tier": {str(t): b for t, b in sorted(tiers.items())},
        "maintenance_seconds": writer.scheduler.busy_seconds,
        "validation_ok": report.ok,
    }
    if args.wal_dir:
        payload["wal"] = {
            "dir": str(writer.wal_dir),
            "records_logged": writer.wal.records_logged,
            "bytes_logged": writer.wal.bytes_logged,
            "manifest_writes": writer.manifest_writes,
            "manifest_bytes": writer.manifest_bytes,
        }
        payload["recovery"] = None if recovery is None else {
            "records_replayed": recovery.records_replayed,
            "mutations_replayed": recovery.mutations_replayed,
            "seals_replayed": recovery.seals_replayed,
            "merges_replayed": recovery.merges_replayed,
            "segments_loaded": recovery.segments_loaded,
            "segments_rebuilt": recovery.segments_rebuilt,
            "torn": recovery.torn,
            "torn_bytes": recovery.torn_bytes,
            "orphans_removed": recovery.orphans_removed,
            "modeled_seconds": recovery.modeled_seconds,
        }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"ingested {args.docs} docs ({deleted} deleted) on "
          f"{args.device}: {payload['live_docs']} live in "
          f"{payload['segments']} segments")
    print(f"seals: {payload['seals']}  merges: {payload['merges']}  "
          f"validation: {'ok' if report.ok else 'FAILED'}")
    print(f"ST Index bytes: {payload['index_write_bytes']} "
          f"(tier-0 {payload['sealed_bytes']}), write amplification "
          f"{payload['write_amplification']:.2f}")
    for tier, num_bytes in sorted(tiers.items()):
        print(f"  tier {tier}: {num_bytes} B")
    print(f"merge reads: {payload['merge_read_bytes']} B (LD List); "
          f"device time {writer.scheduler.busy_seconds * 1e3:.3f} ms")
    if args.wal_dir:
        wal = payload["wal"]
        print(f"WAL: {wal['records_logged']} records, "
              f"{wal['bytes_logged']} B; manifest: "
              f"{wal['manifest_writes']} writes, "
              f"{wal['manifest_bytes']} B -> {wal['dir']}")
        if recovery is not None:
            print(f"recovered: {recovery.records_replayed} records "
                  f"({recovery.seals_replayed} seals, "
                  f"{recovery.merges_replayed} merges; "
                  f"{recovery.segments_loaded} loaded / "
                  f"{recovery.segments_rebuilt} rebuilt), torn tail "
                  f"{recovery.torn_bytes} B, "
                  f"{recovery.modeled_seconds * 1e3:.3f} ms modeled")
    if not report.ok:
        for error in report.errors[:5]:
            print(f"  error: {error}")
        return 1
    return 0


def _cmd_demo(_args) -> int:
    from repro.workloads import QuerySampler, make_corpus

    corpus = make_corpus("ccnews-like", scale=0.2)
    index = corpus.index
    sampler = QuerySampler(corpus.terms_by_df(), seed=1)
    queries = list(sampler.sample(queries_per_term_count=8))
    engines = {
        "Lucene": (LuceneEngine(index, LuceneConfig(k=10)),
                   LuceneTimingModel()),
        "IIU": (IIUAccelerator(index, IIUConfig(k=10)), IIUTimingModel()),
        "BOSS": (BossAccelerator(index, BossConfig(k=10)),
                 BossTimingModel()),
    }
    print(f"corpus: {index.stats.num_docs} docs, {index.num_terms} terms; "
          f"{len(queries)} queries\n")
    baseline_qps = None
    print(f"{'engine':<8}{'qps':>12}{'speedup':>9}{'bottleneck':>12}")
    for name, (engine, model) in engines.items():
        results = [engine.search(q.expression) for q in queries]
        report = model.batch(results, 8)
        if baseline_qps is None:
            baseline_qps = report.throughput_qps
        print(f"{name:<8}{report.throughput_qps:>12.0f}"
              f"{report.throughput_qps / baseline_qps:>8.1f}x"
              f"{report.bottleneck:>12}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "info": _cmd_info,
        "search": _cmd_search,
        "vsearch": _cmd_vsearch,
        "validate": _cmd_validate,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "rebalance": _cmd_rebalance,
        "ingest": _cmd_ingest,
        "demo": _cmd_demo,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
