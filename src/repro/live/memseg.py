"""The mutable in-memory write buffer of the live index.

New documents land here first, uncompressed, exactly like an LSM tree's
memtable: the buffer absorbs writes at DRAM speed and only touches the
SCM pool when it *seals* — at which point its contents replay through
the normal :class:`~repro.index.builder.IndexBuilder` + codec stack and
become an immutable segment (one sequential SCM write).

The buffer is bounded by document count and (approximate) byte
footprint; :class:`~repro.live.writer.LiveIndexWriter` seals it when
either bound trips. Deleting a buffered document simply removes it —
no tombstone is needed for a document that never reached a segment.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvertedIndexError

#: Modeled bytes per uncompressed posting (4 B docID + 4 B tf).
POSTING_BYTES = 8


class MemSegment:
    """Uncompressed in-memory postings for recently added documents."""

    def __init__(self, max_docs: int = 256,
                 max_bytes: Optional[int] = None) -> None:
        if max_docs <= 0:
            raise InvertedIndexError("buffer must hold at least one document")
        if max_bytes is not None and max_bytes <= 0:
            raise InvertedIndexError("buffer byte bound must be positive")
        self.max_docs = max_docs
        self.max_bytes = max_bytes
        #: docID -> term frequencies of the buffered document.
        self._docs: Dict[int, Counter] = {}
        self._lengths: Dict[int, int] = {}
        self._num_postings = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, doc_id: int, tfs: Counter, length: int) -> None:
        """Buffer one document under its (global) docID."""
        if doc_id in self._docs:
            raise InvertedIndexError(f"docID {doc_id} already buffered")
        if not tfs:
            raise InvertedIndexError("cannot buffer an empty document")
        self._docs[doc_id] = tfs
        self._lengths[doc_id] = length
        self._num_postings += len(tfs)

    def remove(self, doc_id: int) -> Tuple[int, Counter]:
        """Drop a buffered document; returns ``(length, tfs)``."""
        try:
            tfs = self._docs.pop(doc_id)
        except KeyError:
            raise InvertedIndexError(
                f"docID {doc_id} not in the write buffer"
            ) from None
        length = self._lengths.pop(doc_id)
        self._num_postings -= len(tfs)
        return length, tfs

    def drain(self) -> Dict[int, Counter]:
        """Empty the buffer; returns the drained docID -> tfs map."""
        docs = self._docs
        self._docs = {}
        self._lengths = {}
        self._num_postings = 0
        return docs

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    @property
    def num_docs(self) -> int:
        return len(self._docs)

    @property
    def num_postings(self) -> int:
        return self._num_postings

    @property
    def approx_bytes(self) -> int:
        """Modeled DRAM footprint: postings plus per-doc length slots."""
        return POSTING_BYTES * self._num_postings + 4 * len(self._docs)

    @property
    def full(self) -> bool:
        if len(self._docs) >= self.max_docs:
            return True
        if self.max_bytes is not None and self.approx_bytes >= self.max_bytes:
            return True
        return False

    def doc_ids(self) -> List[int]:
        """Buffered docIDs, ascending."""
        return sorted(self._docs)

    def length_of(self, doc_id: int) -> int:
        return self._lengths[doc_id]

    def terms_of(self, doc_id: int) -> Tuple[str, ...]:
        return tuple(sorted(self._docs[doc_id]))

    def tf(self, doc_id: int, term: str) -> int:
        """Term frequency of ``term`` in a buffered doc (0 if absent)."""
        tfs = self._docs.get(doc_id)
        if tfs is None:
            return 0
        return tfs.get(term, 0)

    def postings_by_term(self) -> Dict[str, List[Tuple[int, int]]]:
        """``term -> [(docID, tf), ...]`` with ascending docIDs."""
        out: Dict[str, List[Tuple[int, int]]] = {}
        for doc_id in sorted(self._docs):
            for term, tf in self._docs[doc_id].items():
                out.setdefault(term, []).append((doc_id, tf))
        return out

    def items(self) -> Iterable[Tuple[int, Counter]]:
        """Buffered ``(docID, tfs)`` pairs in ascending docID order."""
        for doc_id in sorted(self._docs):
            yield doc_id, self._docs[doc_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MemSegment docs={len(self._docs)}/{self.max_docs} "
            f"bytes={self.approx_bytes}>"
        )
