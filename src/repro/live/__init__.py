"""Live index mutation: LSM-style segments over the immutable pipeline.

Layering::

    LiveIndexWriter          ingest driver + SCM write accounting
      ├── SegmentedIndex     engine-facing read API over segments
      │     ├── MemSegment   DRAM write buffer (the memtable)
      │     ├── Segment ...  sealed immutable indexes (global docIDs)
      │     └── LiveStatistics   corpus-wide BM25 stats, versioned
      └── MergeScheduler     tiered compaction on a modeled device

    LiveServingTarget        adapter for repro.serving.QueryServer

Durability (``repro.live.durable``) wraps the same stack in a WAL +
manifest + segment-file commit protocol::

    DurableLiveIndexWriter   logs every mutation before applying it
      ├── WriteAheadLog      framed, checksummed op log (wal.py)
      ├── MANIFEST.json      committed segment set, atomic rename
      └── seg-XXXXXXXX.seg   one durable file per segment (segfile.py)
    recover()                WAL replay -> bit-identical writer
"""

from repro.live.durable import (
    DurableLiveIndexWriter,
    DurableMergeScheduler,
    RecoveryReport,
    WAL_NAME,
    recover,
    recover_live_index,
    replay_log,
)
from repro.live.manifest import (
    MANIFEST_NAME,
    load_manifest,
    manifest_payload,
    serialize_manifest,
    write_manifest,
)
from repro.live.memseg import MemSegment
from repro.live.merge import (
    MergePlan,
    MergePolicy,
    MergeRecord,
    MergeScheduler,
    merge_segments,
)
from repro.live.segments import (
    Segment,
    SegmentedIndex,
    build_segment,
    prune_query,
)
from repro.live.segfile import (
    load_segment,
    save_segment,
    segment_file_name,
)
from repro.live.stats import LiveBM25Scorer, LiveStatistics
from repro.live.wal import (
    AddRecord,
    DeleteRecord,
    MergeCommitRecord,
    SealRecord,
    WalScan,
    WriteAheadLog,
    read_wal,
)
from repro.live.writer import (
    LiveIndexWriter,
    LiveServingTarget,
    UpdateResult,
)

__all__ = [
    "AddRecord",
    "DeleteRecord",
    "DurableLiveIndexWriter",
    "DurableMergeScheduler",
    "LiveBM25Scorer",
    "LiveIndexWriter",
    "LiveServingTarget",
    "LiveStatistics",
    "MANIFEST_NAME",
    "MemSegment",
    "MergeCommitRecord",
    "MergePlan",
    "MergePolicy",
    "MergeRecord",
    "MergeScheduler",
    "RecoveryReport",
    "SealRecord",
    "Segment",
    "SegmentedIndex",
    "UpdateResult",
    "WAL_NAME",
    "WalScan",
    "WriteAheadLog",
    "build_segment",
    "load_manifest",
    "load_segment",
    "manifest_payload",
    "merge_segments",
    "prune_query",
    "read_wal",
    "recover",
    "recover_live_index",
    "replay_log",
    "save_segment",
    "segment_file_name",
    "serialize_manifest",
    "write_manifest",
]
