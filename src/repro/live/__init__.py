"""Live index mutation: LSM-style segments over the immutable pipeline.

Layering::

    LiveIndexWriter          ingest driver + SCM write accounting
      ├── SegmentedIndex     engine-facing read API over segments
      │     ├── MemSegment   DRAM write buffer (the memtable)
      │     ├── Segment ...  sealed immutable indexes (global docIDs)
      │     └── LiveStatistics   corpus-wide BM25 stats, versioned
      └── MergeScheduler     tiered compaction on a modeled device

    LiveServingTarget        adapter for repro.serving.QueryServer
"""

from repro.live.memseg import MemSegment
from repro.live.merge import (
    MergePlan,
    MergePolicy,
    MergeRecord,
    MergeScheduler,
    merge_segments,
)
from repro.live.segments import (
    Segment,
    SegmentedIndex,
    build_segment,
    prune_query,
)
from repro.live.stats import LiveBM25Scorer, LiveStatistics
from repro.live.writer import (
    LiveIndexWriter,
    LiveServingTarget,
    UpdateResult,
)

__all__ = [
    "LiveBM25Scorer",
    "LiveIndexWriter",
    "LiveServingTarget",
    "LiveStatistics",
    "MemSegment",
    "MergePlan",
    "MergePolicy",
    "MergeRecord",
    "MergeScheduler",
    "Segment",
    "SegmentedIndex",
    "UpdateResult",
    "build_segment",
    "merge_segments",
    "prune_query",
]
