"""Ingest front-end: buffer thresholds, seal/merge driving, accounting.

:class:`LiveIndexWriter` is the single entry point for mutations. It
owns a :class:`~repro.live.segments.SegmentedIndex`, seals the write
buffer when it fills, immediately runs the merge policy to quiescence,
and aggregates every maintenance byte in one
:class:`~repro.scm.traffic.TrafficCounter` — which makes the headline
numbers one property access away:

* ``write_amplification`` — total ``ST Index`` bytes over tier-0 seal
  bytes (1.0 until the first compaction, growing with merge depth);
* ``bytes_written_by_tier`` — where the rewrite traffic went;
* ``scheduler.busy_until`` — when the modeled device drains.

:class:`LiveServingTarget` adapts the writer to the serving layer: it
exposes the ``search(expression, k)`` the :class:`~repro.serving.
server.QueryServer` calls, plus ``apply_update(request)`` for requests
carrying a mutation. Updates advance the shared virtual clock to the
request's arrival instant before running, so maintenance busy-windows
land deterministically on the serving timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.clock import Clock, VirtualClock
from repro.errors import ConfigurationError
from repro.live.merge import MergePolicy, MergeScheduler
from repro.live.segments import Segment, SegmentedIndex
from repro.observability.observer import NULL_OBSERVER, Observer
from repro.scm.device import MemoryDeviceModel
from repro.scm.traffic import AccessClass, TrafficCounter


@dataclass
class UpdateResult:
    """Outcome of one applied mutation (the serving-layer ``result``).

    ``modeled_seconds`` is the maintenance device time this update
    *added* (seal + any triggered merges); most adds cost zero because
    they only touch the DRAM buffer.
    """

    kind: str
    doc_id: Optional[int] = None
    sealed_segment_id: Optional[int] = None
    merges_run: int = 0
    modeled_seconds: float = 0.0
    #: Mirrors SearchResult so generic serving code can iterate hits.
    hits: Tuple = field(default_factory=tuple)


class LiveIndexWriter:
    """Drives ingest: buffered adds/deletes, seals, background merges."""

    def __init__(self, index: Optional[SegmentedIndex] = None,
                 device: Optional[MemoryDeviceModel] = None,
                 clock: Optional[Clock] = None,
                 policy: Optional[MergePolicy] = None,
                 params=None, schemes: Optional[Sequence[str]] = None,
                 buffer_docs: int = 256,
                 buffer_bytes: Optional[int] = None,
                 validate: bool = True,
                 observer: Observer = NULL_OBSERVER) -> None:
        if index is None:
            index = SegmentedIndex(
                params=params, schemes=schemes,
                buffer_docs=buffer_docs, buffer_bytes=buffer_bytes,
                observer=observer,
            )
        self.index = index
        self.clock = VirtualClock() if clock is None else clock
        #: Every maintenance byte (seal writes, merge reads + writes).
        self.traffic = TrafficCounter()
        self._observer = observer
        self.scheduler = self._make_scheduler(
            index=index, device=device, policy=policy,
            validate=validate, observer=observer,
        )

    def _make_scheduler(self, *, index, device, policy, validate,
                        observer) -> MergeScheduler:
        """Scheduler factory — the durable writer overrides this to
        return a :class:`~repro.live.durable.DurableMergeScheduler`."""
        return MergeScheduler(
            index, device=device, clock=self.clock, policy=policy,
            traffic=self.traffic, validate=validate, observer=observer,
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def add_document(self, tokens: Sequence[str]) -> int:
        """Buffer one document, sealing when the buffer trips a bound."""
        doc_id = self.index.add_document(tokens)
        if self.index.memseg.full:
            self.seal()
        self._publish_state()
        return doc_id

    def delete_document(self, doc_id: int) -> None:
        self.index.delete_document(doc_id)
        self._publish_state()

    def delete_oldest(self) -> Optional[int]:
        """Delete the lowest live docID (sliding-window churn)."""
        victim = self.index.oldest_live_doc()
        if victim is None:
            return None
        # Route through delete_document so overrides (the durable
        # writer's WAL append) see every deletion path.
        self.delete_document(victim)
        return victim

    def seal(self) -> Optional[Segment]:
        """Seal the buffer now and compact to policy quiescence."""
        segment = self.index.seal()
        if segment is None:
            return None
        self.scheduler.record_seal(segment)
        self.scheduler.run_pending()
        self._publish_state()
        return segment

    def flush(self) -> Optional[Segment]:
        """Alias for :meth:`seal` (external callers draining the buffer)."""
        return self.seal()

    def apply_update(self, update: Tuple[str, object]) -> UpdateResult:
        """Apply one serving-layer update ``(kind, payload)``.

        Kinds: ``("add", tokens)`` and ``("delete_oldest", None)``.
        """
        kind = update[0]
        busy_before = self.scheduler.busy_seconds
        merges_before = len(self.scheduler.records)
        seals_before = len(self.scheduler.seals)
        doc_id: Optional[int] = None
        sealed: Optional[int] = None
        if kind == "add":
            doc_id = self.add_document(update[1])
        elif kind == "delete_oldest":
            doc_id = self.delete_oldest()
        else:
            raise ConfigurationError(f"unknown update kind {kind!r}")
        if len(self.scheduler.seals) > seals_before:
            sealed = self.scheduler.seals[-1]
        return UpdateResult(
            kind=kind,
            doc_id=doc_id,
            sealed_segment_id=sealed,
            merges_run=len(self.scheduler.records) - merges_before,
            modeled_seconds=self.scheduler.busy_seconds - busy_before,
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def sealed_bytes(self) -> int:
        """Tier-0 bytes: data written because it was ingested."""
        return self.scheduler.bytes_written_by_tier.get(0, 0)

    @property
    def index_write_bytes(self) -> int:
        """Every ``ST Index`` byte (seals + merge rewrites)."""
        return self.traffic.bytes_for(AccessClass.ST_INDEX)

    @property
    def write_amplification(self) -> float:
        """Total index writes over tier-0 writes (1.0 = no compaction
        yet; 0.0 before the first seal)."""
        sealed = self.sealed_bytes
        if sealed == 0:
            return 0.0
        return self.index_write_bytes / sealed

    @property
    def bytes_written_by_tier(self) -> Dict[int, int]:
        return dict(self.scheduler.bytes_written_by_tier)

    def _publish_state(self) -> None:
        if not self._observer.enabled:
            return
        self._observer.on_live_state(
            buffered_docs=len(self.index.memseg),
            buffered_bytes=self.index.memseg.approx_bytes,
            num_segments=self.index.num_segments,
            write_amplification=self.write_amplification,
        )


class LiveServingTarget:
    """Adapter presenting a :class:`LiveIndexWriter` to the serving loop.

    Queries go straight to the segmented index; update requests first
    advance the shared virtual clock to their arrival instant, so the
    maintenance busy-window a seal or merge opens starts exactly there
    — repeatable run to run.
    """

    def __init__(self, writer: LiveIndexWriter) -> None:
        self.writer = writer

    @property
    def index(self) -> SegmentedIndex:
        return self.writer.index

    def search(self, expression, k: Optional[int] = None):
        return self.writer.index.search(expression, k=k)

    def apply_update(self, request) -> UpdateResult:
        clock = self.writer.clock
        arrival = getattr(request, "arrival_seconds", None)
        if arrival is not None and hasattr(clock, "advance"):
            lag = arrival - clock.now()
            if lag > 0:
                clock.advance(lag)
        return self.writer.apply_update(request.update)

    def service_time(self, request, result) -> float:
        """Serving-timeline service time for both request kinds.

        Updates cost their modeled maintenance seconds; queries cost
        the modeled device read time of their traffic, extended by any
        still-draining maintenance window (reads queue behind the
        in-flight seal/merge on the shared device).
        """
        if isinstance(result, UpdateResult):
            return result.modeled_seconds
        scheduler = self.writer.scheduler
        read_seconds = scheduler.device.service_time(result.traffic)
        backlog = scheduler.busy_until - request.arrival_seconds
        if backlog > 0:
            read_seconds += backlog
        return read_seconds
