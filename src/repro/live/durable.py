"""Durable live index: WAL-backed writer + deterministic crash recovery.

:class:`DurableLiveIndexWriter` is a :class:`~repro.live.writer.
LiveIndexWriter` whose every mutation passes a commit protocol over a
*WAL directory*::

    wal.log            append-only op log (repro.live.wal)
    MANIFEST.json      committed segment set   (repro.live.manifest)
    seg-XXXXXXXX.seg   one durable file per live segment (segfile)

**Commit protocol.** Adds and deletes are logged before the in-memory
state advances. A seal writes the segment file (atomic rename), then
appends the ``seal`` record — the WAL append *is* the commit point —
then accounts the seal and swaps the manifest. A merge likewise: output
file, ``merge`` record, in-memory install, manifest swap, input-file
removal. A crash at any boundary therefore leaves either a committed
state or a committed state plus orphan files/torn WAL tail, both of
which :func:`recover` repairs.

**Recovery.** :func:`recover` scans the WAL to its last valid record,
truncates any torn tail, and replays the full log against a fresh
writer: adds and deletes re-execute directly; seal/merge commits load
their durable segment files (checksum-verified; a missing or damaged
file falls back to a deterministic rebuild — the build pipeline is a
pure function of the op log). Replay re-runs the exact accounting of
the original run — WAL frame charges, manifest bytes, seal/merge
busy-windows — so a recovered writer's traffic counters, tier ledger,
and scheduler timeline are *equal* to a never-crashed writer's at the
same log position. Recovery finishes interrupted maintenance (a full
buffer whose seal died, pending merges the policy still sees), sweeps
orphan files, and checkpoints the manifest.

**Metering.** WAL frames and manifest writes are charged as sequential
``ST Index`` traffic in the writer's counter (durability rides the
device's sequential-write path; no scheduler busy-windows of their
own). Segment *files* are the durable form of the already-metered
seal/merge writes — not charged twice. Recovery's own I/O (log scan,
segment loads, checkpoint) lands in a separate counter on the
:class:`RecoveryReport`, priced by the device model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import InvertedIndexError
from repro.faults import CrashSchedule
from repro.index.bm25 import BM25Parameters
from repro.live.manifest import (
    MANIFEST_NAME,
    load_manifest,
    manifest_payload,
    serialize_manifest,
    write_manifest,
)
from repro.live.merge import (
    MergePlan,
    MergePolicy,
    MergeScheduler,
    merge_segments,
)
from repro.live.segfile import (
    load_segment,
    save_segment,
    segment_file_name,
)
from repro.live.segments import Segment
from repro.live.wal import (
    AddRecord,
    DeleteRecord,
    MergeCommitRecord,
    SealRecord,
    WAL_MAGIC,
    WalRecord,
    WriteAheadLog,
    frame_record,
    read_wal,
)
from repro.live.writer import LiveIndexWriter
from repro.observability.observer import NULL_OBSERVER, Observer
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter

WAL_NAME = "wal.log"


class DurableMergeScheduler(MergeScheduler):
    """Merge scheduler that routes every compaction through the commit
    protocol of its owning :class:`DurableLiveIndexWriter`."""

    def __init__(self, writer: "DurableLiveIndexWriter", *args,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._writer = writer

    def _before_merge(self, plan: MergePlan) -> None:
        self._writer.crash.check("mid_merge")

    def _commit_merge(self, plan: MergePlan,
                      merged: Optional[Segment]) -> None:
        writer = self._writer
        if merged is not None:
            writer._write_segment_file(merged)
        writer.wal.append(MergeCommitRecord(
            input_ids=tuple(s.segment_id for s in plan.inputs),
            output_id=None if merged is None else merged.segment_id,
            output_tier=plan.output_tier,
        ))
        writer.crash.check("after_merge_pre_commit")

    def _after_merge_commit(self, plan: MergePlan, record) -> None:
        self._writer._write_manifest()
        self._writer._remove_segment_files(record.input_ids)


class DurableLiveIndexWriter(LiveIndexWriter):
    """A live-index writer whose state survives process death.

    Construction on a fresh directory creates the WAL and the version-0
    manifest; construction on a directory that already holds a WAL is
    refused — go through :func:`recover` (or
    :func:`recover_live_index`), which rebuilds in-memory state first.

    ``crash_schedule`` arms the deterministic kill-points
    (:data:`repro.faults.KILL_POINTS`); ``fsync`` extends durability
    from process death (the modeled crash) to power loss.
    """

    def __init__(self, wal_dir: Union[str, Path], *,
                 device=None, clock=None,
                 policy: Optional[MergePolicy] = None,
                 params=None, schemes: Optional[Sequence[str]] = None,
                 buffer_docs: int = 256,
                 buffer_bytes: Optional[int] = None,
                 validate: bool = True,
                 observer: Observer = NULL_OBSERVER,
                 crash_schedule: Optional[CrashSchedule] = None,
                 fsync: bool = False,
                 _existing_wal: Optional[Tuple[int, int]] = None) -> None:
        self.wal_dir = Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.crash = (CrashSchedule() if crash_schedule is None
                      else crash_schedule)
        self._fsync = fsync
        self.manifest_writes = 0
        #: Total manifest bytes charged to this writer's traffic.
        self.manifest_bytes = 0
        policy = MergePolicy() if policy is None else policy
        effective_params = (BM25Parameters() if params is None
                            else params)
        #: Configuration snapshot the manifest persists; recovery reads
        #: it back so a recovered writer replays with identical bounds.
        self.config = {
            "schemes": list(schemes) if schemes is not None else None,
            "buffer_docs": buffer_docs,
            "buffer_bytes": buffer_bytes,
            "fanout": policy.fanout,
            "k1": effective_params.k1,
            "b": effective_params.b,
        }
        super().__init__(
            device=device, clock=clock, policy=policy, params=params,
            schemes=schemes, buffer_docs=buffer_docs,
            buffer_bytes=buffer_bytes, validate=validate,
            observer=observer,
        )
        self.crash.bind_clock(self.clock)
        self.wal = WriteAheadLog(
            self.wal_dir / WAL_NAME, traffic=self.traffic,
            observer=observer, crash=self.crash, fsync=fsync,
            _existing=_existing_wal,
        )
        if _existing_wal is None:
            self._write_manifest()

    def _make_scheduler(self, *, index, device, policy, validate,
                        observer) -> MergeScheduler:
        return DurableMergeScheduler(
            self, index, device=device, clock=self.clock, policy=policy,
            traffic=self.traffic, validate=validate, observer=observer,
        )

    @property
    def manifest_path(self) -> Path:
        return self.wal_dir / MANIFEST_NAME

    # ------------------------------------------------------------------
    # Mutations (log first, then apply)
    # ------------------------------------------------------------------

    def add_document(self, tokens: Sequence[str]) -> int:
        token_list = list(tokens)
        if not token_list:
            # Reject *before* logging: the WAL must only hold records
            # that replay cleanly.
            raise InvertedIndexError("cannot index an empty document")
        expected = self.index.stats.id_space
        self.wal.append(AddRecord(expected, tuple(token_list)))
        doc_id = super().add_document(token_list)
        if doc_id != expected:  # pragma: no cover - structural invariant
            raise InvertedIndexError(
                f"docID {doc_id} allocated, WAL logged {expected}"
            )
        return doc_id

    def delete_document(self, doc_id: int) -> None:
        if not self.index.stats.is_live(doc_id):
            raise InvertedIndexError(
                f"docID {doc_id} not in the live index"
            )
        self.wal.append(DeleteRecord(doc_id))
        super().delete_document(doc_id)

    def seal(self) -> Optional[Segment]:
        if len(self.index.memseg) == 0:
            return None
        self.crash.check("before_seal")
        segment = self.index.seal()
        self._write_segment_file(segment)
        self.wal.append(SealRecord(segment.segment_id))
        self.crash.check("after_seal_pre_manifest")
        self.scheduler.record_seal(segment)
        self._write_manifest()
        self.scheduler.run_pending()
        self._publish_state()
        return segment

    def close(self) -> None:
        """Release the WAL handle (buffered docs stay recoverable —
        their adds are already logged)."""
        self.wal.close()

    # ------------------------------------------------------------------
    # Durable-state plumbing
    # ------------------------------------------------------------------

    def _write_segment_file(self, segment: Segment) -> int:
        return save_segment(
            segment, self.wal_dir / segment_file_name(segment.segment_id)
        )

    def _remove_segment_files(self, segment_ids) -> None:
        for segment_id in segment_ids:
            path = self.wal_dir / segment_file_name(segment_id)
            if path.exists():
                path.unlink()

    def _manifest_payload(self, wal_records: Optional[int] = None) -> dict:
        return manifest_payload(
            self.index.segments, self.index._next_segment_id,
            (self.wal.records_logged if wal_records is None
             else wal_records),
            self.config,
        )

    def _write_manifest(self, charge: bool = True,
                        wal_records: Optional[int] = None) -> int:
        """Atomically publish the manifest; ``wal_records`` overrides
        the recorded log position — recovery replay passes the
        *historical* position so each re-written manifest is
        byte-identical (and byte-accounted) to the one the original
        run published at that commit."""
        nbytes = write_manifest(self.manifest_path,
                                self._manifest_payload(wal_records))
        if charge:
            self._account_manifest(nbytes)
        return nbytes

    def _account_manifest(self, nbytes: int) -> None:
        self.manifest_writes += 1
        self.manifest_bytes += nbytes
        self.traffic.record(AccessClass.ST_INDEX,
                            AccessPattern.SEQUENTIAL, nbytes)
        if self._observer.enabled:
            self._observer.on_manifest_write(
                nbytes, self.index.num_segments
            )


@dataclass
class RecoveryReport:
    """What one :func:`recover` run did, and what it cost.

    ``traffic`` is recovery's *own* I/O (WAL scan, manifest reads,
    segment-file loads, checkpoint write) — distinct from the writer's
    counter, which replay rebuilds to match the original run.
    ``modeled_seconds`` prices that traffic on the writer's device.
    """

    records_replayed: int = 0
    #: add/delete records among them — the op-stream resume position.
    mutations_replayed: int = 0
    seals_replayed: int = 0
    merges_replayed: int = 0
    segments_loaded: int = 0
    segments_rebuilt: int = 0
    #: Torn-tail disposition of the scanned WAL (None = clean).
    torn: Optional[str] = None
    torn_bytes: int = 0
    wal_bytes_scanned: int = 0
    orphans_removed: int = 0
    manifest_damaged: bool = False
    #: Maintenance recovery finished that the crash interrupted.
    completion_seals: int = 0
    completion_merges: int = 0
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    modeled_seconds: float = 0.0


class _SegmentLoader:
    """Loads checksum-valid durable segments during replay; damage or
    absence degrades to ``None`` (deterministic rebuild)."""

    def __init__(self, directory: Path, traffic: TrafficCounter,
                 report: RecoveryReport) -> None:
        self.directory = directory
        self.traffic = traffic
        self.report = report

    def load(self, segment_id: int) -> Optional[Segment]:
        path = self.directory / segment_file_name(segment_id)
        if not path.exists():
            return None
        try:
            segment, nbytes = load_segment(path)
        except InvertedIndexError:
            return None
        if segment.segment_id != segment_id:
            return None
        self.traffic.record(AccessClass.LD_LIST,
                            AccessPattern.SEQUENTIAL, nbytes)
        return segment


def _replay_records(writer: LiveIndexWriter,
                    records: Sequence[WalRecord],
                    loader: Optional[_SegmentLoader],
                    crash: Optional[CrashSchedule],
                    report: RecoveryReport,
                    durable: bool) -> None:
    """Drive ``writer`` through a WAL record stream.

    With ``durable=True`` the writer is a :class:`DurableLiveIndexWriter`
    under recovery: every record's frame and every commit's manifest are
    re-charged (and the manifest re-written) so the writer's accounting
    lands exactly where the original run left it. With ``durable=False``
    this is the *clean replayer* the differential oracle compares
    against: a plain in-memory writer, no charges, every segment rebuilt.
    """
    if durable:
        # The version-0 manifest the original writer wrote at creation.
        writer._account_manifest(len(serialize_manifest(
            manifest_payload([], 0, 0, writer.config)
        )))
    for position, record in enumerate(records, start=1):
        if durable:
            writer.wal.charge(record, len(frame_record(record)))
        if isinstance(record, AddRecord):
            doc_id = writer.index.add_document(list(record.tokens))
            if doc_id != record.doc_id:
                raise InvertedIndexError(
                    f"replay allocated docID {doc_id}, WAL recorded "
                    f"{record.doc_id}"
                )
            report.mutations_replayed += 1
        elif isinstance(record, DeleteRecord):
            writer.index.delete_document(record.doc_id)
            report.mutations_replayed += 1
        elif isinstance(record, SealRecord):
            segment = loader.load(record.segment_id) if loader else None
            if segment is not None:
                writer.index.install_recovered_seal(segment)
                report.segments_loaded += 1
            else:
                segment = writer.index.seal()
                if (segment is None
                        or segment.segment_id != record.segment_id):
                    raise InvertedIndexError(
                        f"seal replay diverged at segment "
                        f"{record.segment_id}"
                    )
                report.segments_rebuilt += 1
                if durable:
                    writer._write_segment_file(segment)
            writer.scheduler.record_seal(segment)
            if durable:
                writer._write_manifest(wal_records=position)
            report.seals_replayed += 1
            if crash is not None:
                crash.check("mid_recovery")
        elif isinstance(record, MergeCommitRecord):
            _replay_merge(writer, record, loader, report, durable,
                          position)
            report.merges_replayed += 1
            if crash is not None:
                crash.check("mid_recovery")
        else:  # pragma: no cover - decode_payload rejects unknown ops
            raise InvertedIndexError(f"unknown WAL record {record!r}")
        report.records_replayed += 1


def _replay_merge(writer: LiveIndexWriter, record: MergeCommitRecord,
                  loader: Optional[_SegmentLoader],
                  report: RecoveryReport, durable: bool,
                  position: int = 0) -> None:
    segmented = writer.index
    by_id = {s.segment_id: s for s in segmented.segments}
    missing = [i for i in record.input_ids if i not in by_id]
    if missing:
        raise InvertedIndexError(
            f"merge replay inputs {missing} not installed"
        )
    inputs = [by_id[i] for i in record.input_ids]
    plan = MergePlan(inputs, record.output_tier)
    traffic = TrafficCounter()
    loaded = None
    if loader is not None and record.output_id is not None:
        loaded = loader.load(record.output_id)
    if loaded is not None:
        # Reconstruct merge_segments' accounting without re-merging.
        for segment in inputs:
            traffic.record(AccessClass.LD_LIST,
                           AccessPattern.SEQUENTIAL, segment.nbytes)
        segmented.claim_recovered_id(loaded.segment_id)
        traffic.record(AccessClass.ST_INDEX,
                       AccessPattern.SEQUENTIAL, loaded.nbytes)
        merged: Optional[Segment] = loaded
        report.segments_loaded += 1
    else:
        merged = merge_segments(segmented, inputs, record.output_tier,
                                traffic=traffic)
        output_id = None if merged is None else merged.segment_id
        if output_id != record.output_id:
            raise InvertedIndexError(
                f"merge replay produced output {output_id}, WAL "
                f"recorded {record.output_id}"
            )
        if merged is not None:
            report.segments_rebuilt += 1
            if durable:
                writer._write_segment_file(merged)
    writer.scheduler._install_merge(plan, merged, traffic)
    if durable:
        writer._write_manifest(wal_records=position)
        writer._remove_segment_files(record.input_ids)


def replay_log(records: Sequence[WalRecord], *,
               params=None, schemes: Optional[Sequence[str]] = None,
               buffer_docs: int = 256,
               buffer_bytes: Optional[int] = None,
               policy: Optional[MergePolicy] = None,
               device=None, clock=None, validate: bool = True,
               observer: Observer = NULL_OBSERVER) -> LiveIndexWriter:
    """Clean, in-memory replay of a WAL record stream.

    The reference the crash oracle holds recovery to: same ops, same
    seal/merge boundaries, everything rebuilt from scratch — no durable
    files involved. Returns the replayed plain writer.
    """
    writer = LiveIndexWriter(
        params=params, schemes=schemes, buffer_docs=buffer_docs,
        buffer_bytes=buffer_bytes, policy=policy, device=device,
        clock=clock, validate=validate, observer=observer,
    )
    _replay_records(writer, records, loader=None, crash=None,
                    report=RecoveryReport(), durable=False)
    return writer


def recover(wal_dir: Union[str, Path], *,
            device=None, clock=None,
            policy: Optional[MergePolicy] = None,
            params=None, schemes: Optional[Sequence[str]] = None,
            buffer_docs: int = 256, buffer_bytes: Optional[int] = None,
            validate: bool = True,
            observer: Observer = NULL_OBSERVER,
            crash_schedule: Optional[CrashSchedule] = None,
            fsync: bool = False
            ) -> Tuple[DurableLiveIndexWriter, RecoveryReport]:
    """Recover a crashed (or cleanly closed) WAL directory.

    Returns ``(writer, report)`` where ``writer`` is ready to continue
    ingest exactly where the surviving log ends. When the durable
    manifest is readable, its recorded configuration (codec schemes,
    buffer bounds, merge fanout, BM25 parameters) overrides the keyword
    defaults — replay determinism requires the original bounds; the
    keywords serve as fallback when the manifest was destroyed.
    ``crash_schedule`` may arm ``mid_recovery`` (or any other point hit
    by recovery's own maintenance) to model a double crash.
    """
    wal_dir = Path(wal_dir)
    wal_path = wal_dir / WAL_NAME
    if not wal_path.exists():
        raise InvertedIndexError(f"no WAL at {wal_path}")
    crash = CrashSchedule() if crash_schedule is None else crash_schedule
    report = RecoveryReport()
    recovery_traffic = report.traffic

    manifest: Optional[dict] = None
    try:
        manifest = load_manifest(wal_dir / MANIFEST_NAME)
    except InvertedIndexError:
        report.manifest_damaged = True
    if manifest is not None:
        recovery_traffic.record(
            AccessClass.LD_LIST, AccessPattern.SEQUENTIAL,
            (wal_dir / MANIFEST_NAME).stat().st_size,
        )
        config = manifest.get("config", {})
        schemes = config.get("schemes", schemes)
        buffer_docs = config.get("buffer_docs", buffer_docs)
        buffer_bytes = config.get("buffer_bytes", buffer_bytes)
        if policy is None and "fanout" in config:
            policy = MergePolicy(fanout=config["fanout"])
        if params is None and "k1" in config:
            params = BM25Parameters(k1=config["k1"], b=config["b"])

    scan = read_wal(wal_path)
    recovery_traffic.record(AccessClass.LD_LIST,
                            AccessPattern.SEQUENTIAL, scan.total_bytes)
    report.torn = scan.torn
    report.torn_bytes = scan.torn_bytes
    report.wal_bytes_scanned = scan.total_bytes
    if (manifest is not None
            and manifest.get("wal_records", 0) > len(scan.records)):
        raise InvertedIndexError(
            f"manifest claims {manifest['wal_records']} WAL records, "
            f"only {len(scan.records)} survive — the log was damaged "
            f"beyond its torn tail"
        )

    # Durable repair: drop the torn tail so the next append starts at
    # a frame boundary (idempotent — a double crash re-truncates a
    # no-op).
    if scan.torn is not None:
        with open(wal_path, "r+b") as handle:
            handle.truncate(scan.valid_bytes)
        if scan.valid_bytes < len(WAL_MAGIC):
            with open(wal_path, "wb") as handle:
                handle.write(WAL_MAGIC)
    crash.check("mid_recovery")

    writer = DurableLiveIndexWriter(
        wal_dir, device=device, clock=clock, policy=policy,
        params=params, schemes=schemes, buffer_docs=buffer_docs,
        buffer_bytes=buffer_bytes, validate=validate, observer=observer,
        crash_schedule=crash, fsync=fsync,
        _existing_wal=(len(scan.records),
                       max(0, scan.valid_bytes - len(WAL_MAGIC))),
    )
    loader = _SegmentLoader(wal_dir, recovery_traffic, report)
    _replay_records(writer, scan.records, loader=loader, crash=crash,
                    report=report, durable=True)

    # Finish what the crash interrupted: a full buffer whose seal never
    # committed, then any compactions the policy still finds. Both run
    # through the normal durable path (new WAL records, new files), so
    # the log converges to the same state a never-crashed run reaches.
    seals_before = len(writer.scheduler.seals)
    merges_before = len(writer.scheduler.records)
    if writer.index.memseg.full:
        writer.seal()
    else:
        writer.scheduler.run_pending()
    report.completion_seals = len(writer.scheduler.seals) - seals_before
    report.completion_merges = (len(writer.scheduler.records)
                                - merges_before)

    # Checkpoint the manifest (recovery-side cost, not the writer's)
    # and sweep files no committed state references.
    recovery_traffic.record(AccessClass.ST_INDEX,
                            AccessPattern.SEQUENTIAL,
                            writer._write_manifest(charge=False))
    keep = {segment_file_name(s.segment_id)
            for s in writer.index.segments}
    for stray in sorted(wal_dir.glob("seg-*.seg")):
        if stray.name not in keep:
            stray.unlink()
            report.orphans_removed += 1
    for stray in sorted(wal_dir.glob("*.tmp")):
        stray.unlink()

    report.modeled_seconds = writer.scheduler.device.service_time(
        recovery_traffic
    )
    if validate:
        from repro.index.validate import validate_segmented

        check = validate_segmented(
            writer.index, check_scores=False,
            manifest=load_manifest(writer.manifest_path),
            segment_dir=wal_dir,
        )
        if not check.ok:
            raise InvertedIndexError(
                "post-recovery validation failed: "
                + "; ".join(check.errors[:3])
            )
    if observer.enabled:
        observer.on_recovery_complete(report)
    writer._publish_state()
    return writer, report


def recover_live_index(wal_dir: Union[str, Path], **kwargs
                       ) -> Tuple[DurableLiveIndexWriter,
                                  Optional[RecoveryReport]]:
    """Open a WAL directory: recover it if it holds a log, create it
    otherwise. Returns ``(writer, report_or_None)``."""
    wal_dir = Path(wal_dir)
    if (wal_dir / WAL_NAME).exists():
        return recover(wal_dir, **kwargs)
    return DurableLiveIndexWriter(wal_dir, **kwargs), None
