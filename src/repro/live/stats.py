"""Corpus-wide live statistics for the mutable (LSM-style) index.

BM25 is a *global* function: IDF depends on the live document count and
each term's live document frequency, and every length normalizer depends
on the live average document length. A segmented index that scored each
segment with segment-local statistics would rank differently from a
monolithic index over the same documents — the exact bug the cluster
layer already avoids by distributing :class:`~repro.index.builder.
GlobalStatistics` to shard builders.

:class:`LiveStatistics` is the mutable analogue: one instance tracks the
whole live corpus (buffer + every sealed segment) as documents are added
and deleted —

* per-term live document frequencies (decremented on delete);
* live document count and live token total (so ``avgdl`` is exact);
* the full docID -> length table, *including* deleted documents, because
  sealed segments still hold postings for tombstoned docIDs and the
  engines index normalizers by docID;
* a monotonically increasing ``version``, bumped on every mutation, that
  lets sealed segments detect staleness (a segment sealed at version V
  has byte-exact metadata iff the corpus is still at version V).

:class:`LiveBM25Scorer` is the scorer snapshot derived from those
numbers: it duck-types :class:`~repro.index.bm25.BM25Scorer` (including
the ``_normalizers`` table the fast execution path reads directly) but
computes ``N`` and ``avgdl`` from the live corpus while keeping
normalizer slots for every docID ever allocated.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvertedIndexError
from repro.index.bm25 import BM25Parameters, BM25Scorer
from repro.index.builder import GlobalStatistics


class LiveBM25Scorer(BM25Scorer):
    """A BM25 scorer over the live corpus, indexed by global docID.

    ``doc_lengths`` covers every docID ever allocated (deleted documents
    keep their recorded length: segments may still score them before the
    tombstone filter drops the hits), while ``num_live`` and
    ``total_live_tokens`` describe only the surviving documents — those
    drive IDF's ``N`` and the average document length, so scores are
    bit-identical to a from-scratch rebuild of the survivors.
    """

    def __init__(self, doc_lengths: Iterable[int], num_live: int,
                 total_live_tokens: int,
                 params: Optional[BM25Parameters] = None) -> None:
        doc_lengths = list(doc_lengths)
        if num_live <= 0:
            raise InvertedIndexError(
                "live corpus must contain at least one document"
            )
        self._params = BM25Parameters() if params is None else params
        self._doc_lengths = doc_lengths
        self._num_docs = num_live
        self._avgdl = total_live_tokens / num_live
        k1, b = self._params.k1, self._params.b
        self._normalizers = [
            k1 * (1.0 - b + b * length / self._avgdl)
            for length in doc_lengths
        ]


class LiveStatistics:
    """Mutable corpus-wide statistics shared by buffer and segments."""

    def __init__(self, params: Optional[BM25Parameters] = None) -> None:
        self.params = BM25Parameters() if params is None else params
        #: Length of every docID ever allocated (never shrinks).
        self._doc_lengths: List[int] = []
        self._live: List[bool] = []
        self._num_live = 0
        self._total_live_tokens = 0
        self._dfs: Dict[str, int] = {}
        #: Bumped on every add/delete; segments record it at seal time.
        self.version = 0
        #: Smallest document length ever admitted — a monotone lower
        #: bound on the live minimum, used for conservative score
        #: bounds on stale segments.
        self._min_length: Optional[int] = None
        self._scorer_cache: Optional[Tuple[int, LiveBM25Scorer]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def allocate(self, length: int, terms: Iterable[str]) -> int:
        """Record one added document; returns its global docID."""
        if length <= 0:
            raise InvertedIndexError("document length must be positive")
        doc_id = len(self._doc_lengths)
        self._doc_lengths.append(length)
        self._live.append(True)
        self._num_live += 1
        self._total_live_tokens += length
        for term in terms:
            self._dfs[term] = self._dfs.get(term, 0) + 1
        if self._min_length is None or length < self._min_length:
            self._min_length = length
        self.version += 1
        return doc_id

    def remove(self, doc_id: int, terms: Iterable[str]) -> None:
        """Record one deleted document (its length stays on file)."""
        if not 0 <= doc_id < len(self._doc_lengths):
            raise InvertedIndexError(f"docID {doc_id} was never allocated")
        if not self._live[doc_id]:
            raise InvertedIndexError(f"docID {doc_id} already deleted")
        self._live[doc_id] = False
        self._num_live -= 1
        self._total_live_tokens -= self._doc_lengths[doc_id]
        for term in terms:
            df = self._dfs.get(term, 0) - 1
            if df < 0:
                raise InvertedIndexError(
                    f"df underflow for term {term!r} deleting doc {doc_id}"
                )
            if df == 0:
                del self._dfs[term]
            else:
                self._dfs[term] = df
        self.version += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def num_docs(self) -> int:
        """Live document count (BM25's ``N``)."""
        return self._num_live

    @property
    def id_space(self) -> int:
        """Number of docIDs ever allocated (never reused)."""
        return len(self._doc_lengths)

    @property
    def total_tokens(self) -> int:
        """Token total over live documents."""
        return self._total_live_tokens

    @property
    def avgdl(self) -> float:
        if self._num_live == 0:
            return 0.0
        return self._total_live_tokens / self._num_live

    def is_live(self, doc_id: int) -> bool:
        return 0 <= doc_id < len(self._live) and self._live[doc_id]

    def doc_length(self, doc_id: int) -> int:
        return self._doc_lengths[doc_id]

    def df(self, term: str) -> int:
        """Live document frequency of ``term`` (0 when absent)."""
        return self._dfs.get(term, 0)

    @property
    def terms(self) -> List[str]:
        """Live vocabulary, sorted lexically."""
        return sorted(self._dfs)

    def idf(self, term: str) -> float:
        """Live-corpus IDF (same formula as :meth:`BM25Scorer.idf`)."""
        n = self._dfs.get(term, 0)
        return math.log(
            (self._num_live - n + 0.5) / (n + 0.5) + 1.0
        )

    def min_normalizer(self) -> float:
        """Lower bound on any live document's length normalizer.

        Uses the smallest length ever admitted, which can only under-
        estimate the live minimum — an *under*-estimated normalizer
        yields an *over*-estimated score bound, the safe direction for
        early termination.
        """
        if self._min_length is None or self._num_live == 0:
            raise InvertedIndexError("no live documents")
        k1, b = self.params.k1, self.params.b
        return k1 * (1.0 - b + b * self._min_length / self.avgdl)

    def scorer(self) -> LiveBM25Scorer:
        """The scorer snapshot for the current version (cached)."""
        cached = self._scorer_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        scorer = LiveBM25Scorer(self._doc_lengths, self._num_live,
                                self._total_live_tokens, self.params)
        self._scorer_cache = (self.version, scorer)
        return scorer

    def global_statistics(self) -> GlobalStatistics:
        """Builder-facing snapshot: live ``N`` plus live per-term dfs."""
        return GlobalStatistics(num_docs=self._num_live,
                                term_dfs=dict(self._dfs))
