"""Background compaction: tiered merge policy + deterministic scheduler.

Sealing produces many small tier-0 segments; queries fan out across all
of them, so read cost grows with segment count. Compaction trades SCM
*write* bandwidth for read locality, exactly the LSM trade-off: a merge
reads its input segments (sequential ``LD List`` traffic — the payloads
stream once through the codec), drops tombstoned postings, and rewrites
the survivors as one segment on the next tier (sequential ``ST Index``
traffic). The rewrite is byte-identical to a fresh build of the
surviving postings under the same statistics, so compaction converges
the segmented index toward the monolithic layout.

Everything is deterministic: the :class:`MergeScheduler` runs on an
injected :class:`~repro.clock.Clock` (virtual in tests and benchmarks)
and models the device as a single busy resource — each seal or merge
occupies a busy window whose length is
:meth:`~repro.scm.device.MemoryDeviceModel.service_time` of its traffic,
and windows queue back-to-back. That is what makes ingest-heavy mixes
*visible* in serving latency: maintenance windows on a slow-write SCM
device stretch far longer than on DRAM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.clock import Clock, VirtualClock
from repro.errors import ConfigurationError, InvertedIndexError
from repro.live.segments import Segment, SegmentedIndex, build_segment
from repro.observability.observer import NULL_OBSERVER, Observer
from repro.scm.device import OPTANE_NODE_4CH, MemoryDeviceModel
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter


class MergePlan:
    """One planned compaction: ``inputs`` -> one segment on ``output_tier``."""

    def __init__(self, inputs: Sequence[Segment], output_tier: int) -> None:
        self.inputs = list(inputs)
        self.output_tier = output_tier

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ids = [segment.segment_id for segment in self.inputs]
        return f"<MergePlan inputs={ids} tier={self.output_tier}>"


class MergePolicy:
    """Tiered compaction: ``fanout`` segments on a tier merge up one.

    Tier 0 holds sealed buffers; a merge of ``fanout`` tier-``t``
    segments produces one tier-``t+1`` segment, so each document is
    rewritten at most once per tier and write amplification is bounded
    by the tier count (logarithmic in corpus size for a fixed fanout).
    """

    def __init__(self, fanout: int = 4) -> None:
        if fanout < 2:
            raise ConfigurationError(
                f"merge fanout must be at least 2, got {fanout}"
            )
        self.fanout = fanout

    def plan(self, segments: Sequence[Segment]) -> Optional[MergePlan]:
        """Next merge to run, or ``None`` when every tier is compacted."""
        by_tier: Dict[int, List[Segment]] = {}
        for segment in segments:
            by_tier.setdefault(segment.tier, []).append(segment)
        for tier in sorted(by_tier):
            candidates = by_tier[tier]
            if len(candidates) >= self.fanout:
                candidates.sort(key=lambda s: s.segment_id)
                return MergePlan(candidates[:self.fanout], tier + 1)
        return None


class MergeRecord:
    """Accounting for one executed merge (or empty-output collapse)."""

    def __init__(self, output_id: Optional[int], tier: int,
                 input_ids: Tuple[int, ...], bytes_read: int,
                 bytes_written: int, started: float,
                 finished: float) -> None:
        self.output_id = output_id
        self.tier = tier
        self.input_ids = input_ids
        self.bytes_read = bytes_read
        self.bytes_written = bytes_written
        self.started = started
        self.finished = finished

    @property
    def seconds(self) -> float:
        return self.finished - self.started


def merge_segments(segmented: SegmentedIndex,
                   inputs: Sequence[Segment],
                   output_tier: int,
                   traffic: Optional[TrafficCounter] = None
                   ) -> Optional[Segment]:
    """Compact ``inputs`` into one new segment (not yet installed).

    Streams every input posting list (charged as sequential ``LD List``
    reads of payload + metadata), drops tombstoned documents, and
    replays the survivors — global docIDs intact — through the normal
    build pipeline, charged as one sequential ``ST Index`` write.
    Returns ``None`` when every input document was deleted.
    """
    traffic = TrafficCounter() if traffic is None else traffic
    combined: Dict[str, List[Tuple[int, int]]] = {}
    doc_lengths: Dict[int, int] = {}
    doc_terms: Dict[int, Tuple[str, ...]] = {}
    for segment in inputs:
        traffic.record(AccessClass.LD_LIST, AccessPattern.SEQUENTIAL,
                       segment.nbytes)
        dead = segment.tombstones
        for doc_id, length in segment.doc_lengths.items():
            if doc_id not in dead:
                doc_lengths[doc_id] = length
                doc_terms[doc_id] = segment.doc_terms[doc_id]
        for term in segment.index.terms:
            postings = segment.index.posting_list(term).decode_all()
            survivors = [
                (doc_id, tf) for doc_id, tf in postings
                if doc_id not in dead
            ]
            if survivors:
                combined.setdefault(term, []).extend(survivors)
    if not combined:
        return None
    for postings in combined.values():
        postings.sort(key=lambda posting: posting[0])
    segment = build_segment(
        segmented.next_segment_id(), output_tier, combined,
        doc_lengths, doc_terms, segmented.stats,
        schemes=segmented.schemes,
    )
    traffic.record(AccessClass.ST_INDEX, AccessPattern.SEQUENTIAL,
                   segment.nbytes)
    return segment


class MergeScheduler:
    """Runs the merge policy to quiescence on a modeled device timeline.

    The device is one busy resource: every seal and merge occupies a
    window of :meth:`~repro.scm.device.MemoryDeviceModel.service_time`
    seconds, and windows queue FIFO behind each other starting no
    earlier than the injected clock's *now*. ``busy_until`` is therefore
    the earliest instant the device is free — the serving layer reads
    it to model maintenance interference.
    """

    def __init__(self, segmented: SegmentedIndex,
                 device: Optional[MemoryDeviceModel] = None,
                 clock: Optional[Clock] = None,
                 policy: Optional[MergePolicy] = None,
                 traffic: Optional[TrafficCounter] = None,
                 validate: bool = True,
                 observer: Observer = NULL_OBSERVER) -> None:
        self.segmented = segmented
        self.device = OPTANE_NODE_4CH if device is None else device
        self.clock = VirtualClock() if clock is None else clock
        self.policy = MergePolicy() if policy is None else policy
        #: Shared counter every seal/merge byte lands in (the writer
        #: passes its own so ingest traffic aggregates in one place).
        self.traffic = TrafficCounter() if traffic is None else traffic
        self.validate = validate
        self._observer = observer
        self.records: List[MergeRecord] = []
        #: Segment ids sealed through :meth:`record_seal`, in order.
        self.seals: List[int] = []
        #: ST Index bytes written per output tier (tier 0 = seals).
        self.bytes_written_by_tier: Dict[int, int] = {}
        self.busy_until = 0.0
        #: Total modeled device seconds consumed by maintenance.
        self.busy_seconds = 0.0

    def occupy(self, traffic: TrafficCounter) -> Tuple[float, float]:
        """Queue one busy window for ``traffic``; returns (start, end)."""
        seconds = self.device.service_time(traffic)
        start = max(self.clock.now(), self.busy_until)
        end = start + seconds
        self.busy_until = end
        self.busy_seconds += seconds
        return start, end

    def record_seal(self, segment: Segment) -> Tuple[float, float]:
        """Account one buffer seal: sequential ST Index write window."""
        seal_traffic = TrafficCounter()
        seal_traffic.record(AccessClass.ST_INDEX,
                            AccessPattern.SEQUENTIAL, segment.nbytes)
        self.traffic.merge(seal_traffic)
        tier_bytes = self.bytes_written_by_tier
        tier_bytes[0] = tier_bytes.get(0, 0) + segment.nbytes
        self.seals.append(segment.segment_id)
        window = self.occupy(seal_traffic)
        self._observer.on_live_seal(segment.segment_id, segment.num_docs,
                                    segment.nbytes)
        return window

    def compact_all(self) -> Optional[MergeRecord]:
        """Force-merge every sealed segment into one (full compaction).

        Converges the segmented index to the monolithic layout in a
        single rewrite — the read-traffic reference point the
        equivalence tests compare against. No-op with fewer than two
        segments.
        """
        segments = list(self.segmented.segments)
        if len(segments) < 2:
            return None
        tier = max(segment.tier for segment in segments) + 1
        return self._run(MergePlan(segments, tier))

    def run_pending(self) -> List[MergeRecord]:
        """Merge until the policy finds nothing to do."""
        executed: List[MergeRecord] = []
        while True:
            plan = self.policy.plan(self.segmented.segments)
            if plan is None:
                return executed
            executed.append(self._run(plan))

    def _run(self, plan: MergePlan) -> MergeRecord:
        self._before_merge(plan)
        merge_traffic = TrafficCounter()
        merged = merge_segments(self.segmented, plan.inputs,
                                plan.output_tier, traffic=merge_traffic)
        self._commit_merge(plan, merged)
        record = self._install_merge(plan, merged, merge_traffic)
        self._after_merge_commit(plan, record)
        return record

    # Durability hooks — no-ops here; DurableMergeScheduler overrides
    # them to persist the output segment, log the merge-commit record,
    # and swap the manifest around the in-memory install.

    def _before_merge(self, plan: MergePlan) -> None:
        """Called before any merge work (durable: ``mid_merge`` probe)."""

    def _commit_merge(self, plan: MergePlan,
                      merged: Optional[Segment]) -> None:
        """Called after compute, before the in-memory install (durable:
        segment file + WAL merge-commit record land here)."""

    def _after_merge_commit(self, plan: MergePlan,
                            record: MergeRecord) -> None:
        """Called after the install (durable: manifest swap + input
        file removal)."""

    def _install_merge(self, plan: MergePlan, merged: Optional[Segment],
                       merge_traffic: TrafficCounter) -> MergeRecord:
        """Install + account one computed (or durably loaded) merge.

        Recovery replay calls this directly with a loaded output
        segment and hand-built traffic, bypassing the durability hooks
        — the accounting, busy-window, observer, and validation steps
        are identical either way, which is what keeps a recovered
        timeline bit-equal to a clean one.
        """
        self.segmented.replace_segments(plan.inputs, merged)
        self.traffic.merge(merge_traffic)
        written = merge_traffic.bytes_for(AccessClass.ST_INDEX)
        if merged is not None:
            tier_bytes = self.bytes_written_by_tier
            tier_bytes[plan.output_tier] = (
                tier_bytes.get(plan.output_tier, 0) + written
            )
        started, finished = self.occupy(merge_traffic)
        record = MergeRecord(
            output_id=None if merged is None else merged.segment_id,
            tier=plan.output_tier,
            input_ids=tuple(s.segment_id for s in plan.inputs),
            bytes_read=merge_traffic.bytes_for(AccessClass.LD_LIST),
            bytes_written=written,
            started=started,
            finished=finished,
        )
        self.records.append(record)
        self._observer.on_live_merge(
            record.output_id, record.tier, record.bytes_read,
            record.bytes_written, record.seconds,
        )
        if self.validate:
            from repro.index.validate import validate_segmented

            report = validate_segmented(self.segmented,
                                        check_scores=False)
            if not report.ok:
                raise InvertedIndexError(
                    "post-merge validation failed: "
                    + "; ".join(report.errors[:3])
                )
        return record
