"""The segmented live index: immutable segments + write buffer + stats.

:class:`SegmentedIndex` is the engine-facing face of the live index. It
layers mutability over the existing immutable machinery the way an LSM
tree does over sorted runs:

* adds land in a :class:`~repro.live.memseg.MemSegment` write buffer;
* sealing replays the buffer through :class:`~repro.index.builder.
  IndexBuilder` (hybrid codec selection, 128-posting blocks, 19-byte
  metadata — the full offline pipeline) into an immutable
  :class:`Segment` holding a *contiguous, never-reused* global docID
  interval, the same structure the cluster layer gives shards;
* deletes set a tombstone bit on the owning segment (buffered documents
  are simply dropped) and immediately update the live statistics;
* queries fan out across segments, each executed by a real
  :class:`~repro.core.engine.BossAccelerator` over the segment's
  compressed lists, then merge per-segment top-k exactly.

**Score identity.** Every segment scores with *global* BM25 statistics
(:mod:`repro.live.stats`): live N and per-term df drive IDF, live avgdl
drives the normalizers. A segment sealed at statistics version V has
byte-exact metadata while the corpus stays at V; once the corpus moves
on, the segment is *stale* — its baked IDFs and block max-scores no
longer match the live statistics, and an under-estimated block max
would make early termination drop true results. Stale segments are
therefore queried through a rebuilt **view**: same compressed payloads,
but live IDFs and conservative per-block score bounds derived from the
per-block maximum term frequency recorded at seal time (an upper bound
for every live document, since the term score is monotone increasing in
tf and decreasing in the normalizer).

**Exact top-k under tombstones.** Each segment is searched for
``k + t`` results, where ``t`` is the segment's tombstone count: at
most ``t`` deleted documents can outrank a surviving one, so the
segment's true live top-k always survives the overfetch. Hits are
tombstone-filtered, truncated to ``k``, and merged across segments by
``(-score, docID)`` — the same tie rule as the monolithic top-k queue
and the cluster root.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.engine import BossAccelerator, BossConfig
from repro.core.query import (
    AndNode,
    OrNode,
    QueryNode,
    TermNode,
    parse_query,
    prune_query,
    prune_query_scored,
)
from repro.core.result import ScoredDocument, SearchResult
from repro.errors import InvertedIndexError, QueryError
from repro.index.blocks import BLOCK_SIZE, Block
from repro.index.builder import IndexBuilder
from repro.index.index import (
    CompressedPostingList,
    DocumentStats,
    InvertedIndex,
)
from repro.live.memseg import MemSegment
from repro.live.stats import LiveStatistics
from repro.observability.observer import NULL_OBSERVER, Observer
from repro.scm.traffic import TrafficCounter
from repro.sim.metrics import WorkCounters


class Segment:
    """One immutable sealed segment plus its live-index bookkeeping."""

    def __init__(self, segment_id: int, index: InvertedIndex, tier: int,
                 stats_version: int, doc_lengths: Dict[int, int],
                 doc_terms: Dict[int, Tuple[str, ...]],
                 block_max_tfs: Dict[str, List[int]]) -> None:
        self.segment_id = segment_id
        self.index = index
        #: Merge-tier: 0 for a sealed buffer, max(inputs)+1 for a merge.
        self.tier = tier
        #: Statistics version the segment's metadata was baked at.
        self.stats_version = stats_version
        #: Global docID -> length, for every document in the payload.
        self.doc_lengths = doc_lengths
        #: Global docID -> distinct terms (the forward index; deletes
        #: need it to decrement live dfs).
        self.doc_terms = doc_terms
        #: Deleted docIDs still physically present in the payload.
        self.tombstones: Set[int] = set()
        #: Per-term, per-block maximum term frequency recorded at seal
        #: time — the input for conservative stale-view score bounds.
        self.block_max_tfs = block_max_tfs
        #: Byte offset of this segment's region inside the shared pool
        #: (assigned when the segment is installed).
        self.pool_base = 0

    @property
    def num_docs(self) -> int:
        """Documents physically present (live + tombstoned)."""
        return len(self.doc_lengths)

    @property
    def live_docs(self) -> int:
        return len(self.doc_lengths) - len(self.tombstones)

    @property
    def min_doc_id(self) -> int:
        return min(self.doc_lengths)

    @property
    def max_doc_id(self) -> int:
        return max(self.doc_lengths)

    @property
    def nbytes(self) -> int:
        """Segment footprint: compressed payloads + block metadata."""
        total = 0
        for term in self.index.terms:
            posting_list = self.index.posting_list(term)
            total += posting_list.compressed_bytes
            total += posting_list.metadata_bytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Segment id={self.segment_id} tier={self.tier} "
            f"docs={self.live_docs}/{self.num_docs} bytes={self.nbytes}>"
        )


def build_segment(segment_id: int, tier: int,
                  postings_by_term: Dict[str, Sequence[Tuple[int, int]]],
                  doc_lengths: Dict[int, int],
                  doc_terms: Dict[int, Tuple[str, ...]],
                  stats: LiveStatistics,
                  schemes: Optional[Sequence[str]] = None) -> Segment:
    """Seal postings (global docIDs) into an immutable :class:`Segment`.

    The compressed output is byte-identical to a fresh
    :class:`~repro.index.builder.IndexBuilder` build of the same
    postings under the same statistics: codec selection depends only on
    the d-gap stream, and the scorer/IDF inputs are snapshots of the
    live corpus statistics.
    """
    if not postings_by_term:
        raise InvertedIndexError("cannot seal an empty segment")
    builder = IndexBuilder(params=stats.params, schemes=schemes,
                           global_stats=stats.global_statistics(),
                           scorer=stats.scorer())
    block_max_tfs: Dict[str, List[int]] = {}
    for term in sorted(postings_by_term):
        postings = list(postings_by_term[term])
        builder.add_postings(term, postings)
        block_max_tfs[term] = [
            max(tf for _doc, tf in postings[start:start + BLOCK_SIZE])
            for start in range(0, len(postings), BLOCK_SIZE)
        ]
    index = builder.build()
    return Segment(
        segment_id=segment_id,
        index=index,
        tier=tier,
        stats_version=stats.version,
        doc_lengths=dict(doc_lengths),
        doc_terms=dict(doc_terms),
        block_max_tfs=block_max_tfs,
    )


# prune_query / prune_query_scored now live in repro.core.query (the
# algebra is shared with the cluster root's per-shard dissection);
# imported above and re-exported here for compatibility.


class _PoolLayout:
    """Aggregate address-space view over every sealed segment."""

    def __init__(self, segmented: "SegmentedIndex") -> None:
        self._segmented = segmented

    @property
    def allocated_bytes(self) -> int:
        return sum(
            segment.index.layout.allocated_bytes
            for segment in self._segmented.segments
        )


class SegmentedIndex:
    """LSM-style mutable index presenting the engine read API.

    Satisfies the duck type engines and sessions consume — ``search``,
    ``posting_list``/``comp_types`` (for the offloading API's
    ``compType`` array), ``layout``, ``terms``, ``in`` — while
    supporting ``add_document`` / ``delete_document`` / ``seal`` /
    ``replace_segments`` underneath.
    """

    def __init__(self, params=None, schemes: Optional[Sequence[str]] = None,
                 config: Optional[BossConfig] = None,
                 buffer_docs: int = 256,
                 buffer_bytes: Optional[int] = None,
                 observer: Observer = NULL_OBSERVER) -> None:
        self.stats = LiveStatistics(params)
        self.memseg = MemSegment(max_docs=buffer_docs,
                                 max_bytes=buffer_bytes)
        self.segments: List[Segment] = []
        self._schemes = list(schemes) if schemes is not None else None
        self._config = BossConfig() if config is None else config
        self._observer = observer
        self._next_segment_id = 0
        #: segment_id -> (stats version the engine was built at, engine).
        self._engines: Dict[int, Tuple[int, BossAccelerator]] = {}
        self._pool_cursor = 0
        self.layout = _PoolLayout(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_document(self, tokens: Sequence[str]) -> int:
        """Buffer one document; returns its global docID."""
        token_list = list(tokens)
        if not token_list:
            raise InvertedIndexError("cannot index an empty document")
        tfs = Counter(token_list)
        doc_id = self.stats.allocate(len(token_list), tfs.keys())
        self.memseg.add(doc_id, tfs, len(token_list))
        return doc_id

    def delete_document(self, doc_id: int) -> None:
        """Delete by global docID (tombstone or buffer drop)."""
        if doc_id in self.memseg:
            _length, tfs = self.memseg.remove(doc_id)
            self.stats.remove(doc_id, tfs.keys())
            return
        for segment in self.segments:
            if doc_id in segment.doc_lengths:
                if doc_id in segment.tombstones:
                    raise InvertedIndexError(
                        f"docID {doc_id} already deleted"
                    )
                segment.tombstones.add(doc_id)
                self.stats.remove(doc_id, segment.doc_terms[doc_id])
                return
        raise InvertedIndexError(f"docID {doc_id} not in the live index")

    def seal(self) -> Optional[Segment]:
        """Seal the write buffer into a new tier-0 segment.

        Returns the new segment, or ``None`` when the buffer is empty.
        Sealing moves no statistics (the buffered documents were already
        live), so a segment sealed now is *fresh*: its baked metadata is
        exact until the next add or delete.
        """
        if len(self.memseg) == 0:
            return None
        doc_lengths = {
            doc_id: self.memseg.length_of(doc_id)
            for doc_id in self.memseg.doc_ids()
        }
        doc_terms = {
            doc_id: self.memseg.terms_of(doc_id)
            for doc_id in self.memseg.doc_ids()
        }
        postings = self.memseg.postings_by_term()
        self.memseg.drain()
        segment = build_segment(
            self._next_segment_id, 0, postings, doc_lengths, doc_terms,
            self.stats, schemes=self._schemes,
        )
        self._next_segment_id += 1
        self._install(segment)
        return segment

    def replace_segments(self, inputs: Sequence[Segment],
                         merged: Optional[Segment]) -> None:
        """Atomically swap merge inputs for their compacted output.

        ``merged`` may be ``None`` when every input document was
        tombstoned — the inputs are simply dropped.
        """
        input_ids = {segment.segment_id for segment in inputs}
        survivors = [
            segment for segment in self.segments
            if segment.segment_id not in input_ids
        ]
        if len(survivors) != len(self.segments) - len(input_ids):
            raise InvertedIndexError("merge inputs not all installed")
        for segment in inputs:
            self._engines.pop(segment.segment_id, None)
        self.segments = survivors
        if merged is not None:
            self._install(merged)

    def next_segment_id(self) -> int:
        """Allocate a segment id (used by the merge path)."""
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        return segment_id

    def claim_recovered_id(self, segment_id: int) -> None:
        """Consume the next segment id for a recovered (loaded) segment.

        Recovery loads segments from durable files instead of building
        them, but the id sequence must advance exactly as it did in the
        original run — a mismatch means the WAL and the in-memory
        replay have diverged, which is a corruption, not a crash.
        """
        if segment_id != self._next_segment_id:
            raise InvertedIndexError(
                f"recovered segment id {segment_id} != expected "
                f"{self._next_segment_id} — WAL and replay diverged"
            )
        self._next_segment_id += 1

    def install_recovered_seal(self, segment: Segment) -> None:
        """Install a durably-loaded seal in place of :meth:`seal`.

        The write buffer must hold exactly the documents the segment
        persists (replay put them there); they are drained without
        rebuilding, since the loaded payload is already the sealed
        bytes.
        """
        if set(segment.doc_lengths) != set(self.memseg.doc_ids()):
            raise InvertedIndexError(
                f"recovered segment {segment.segment_id} holds "
                f"{sorted(segment.doc_lengths)[:5]}... but the replayed "
                f"buffer holds {self.memseg.doc_ids()[:5]}..."
            )
        self.claim_recovered_id(segment.segment_id)
        self.memseg.drain()
        self._install(segment)

    def _install(self, segment: Segment) -> None:
        segment.pool_base = self._pool_cursor
        self._pool_cursor += segment.index.layout.allocated_bytes
        self.segments.append(segment)
        self.segments.sort(key=lambda s: s.min_doc_id)

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------

    @property
    def num_docs(self) -> int:
        """Live document count."""
        return self.stats.num_docs

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def schemes(self) -> Optional[List[str]]:
        """Codec candidates every seal/merge builds with."""
        return None if self._schemes is None else list(self._schemes)

    @property
    def terms(self) -> List[str]:
        """Live vocabulary (terms with at least one surviving doc)."""
        return self.stats.terms

    def __contains__(self, term: str) -> bool:
        return self.stats.df(term) > 0

    def posting_list(self, term: str) -> CompressedPostingList:
        """Newest sealed posting list for ``term``.

        The buffer is not compressed, so a term living only there has
        no list; sessions treat such terms as host-resident.
        """
        for segment in reversed(self.segments):
            if term in segment.index:
                return segment.index.posting_list(term)
        raise InvertedIndexError(f"term {term!r} has no sealed postings")

    def comp_types(self, terms: Sequence[str]) -> List[str]:
        """``compType`` array over sealed lists (buffer-only terms are
        skipped: their postings are host-resident and uncompressed)."""
        schemes = []
        for term in terms:
            try:
                schemes.append(self.posting_list(term).scheme)
            except InvertedIndexError:
                continue
        return schemes

    def list_address(self, term: str) -> int:
        """Pool-absolute base address of the newest list for ``term``."""
        for segment in reversed(self.segments):
            if term in segment.index:
                region = segment.index.posting_list(term).region
                return segment.pool_base + region.base
        raise InvertedIndexError(f"term {term!r} has no sealed postings")

    def oldest_live_doc(self) -> Optional[int]:
        """Lowest live docID (the churn victim for sliding-window
        workloads); ``None`` when the index is empty."""
        for segment in self.segments:
            live = [
                doc_id for doc_id in segment.doc_lengths
                if doc_id not in segment.tombstones
            ]
            if live:
                return min(live)
        buffered = self.memseg.doc_ids()
        return buffered[0] if buffered else None

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def search(self, query, k: Optional[int] = None) -> SearchResult:
        """Fan one query across segments + buffer; merge top-k exactly."""
        node = parse_query(query) if isinstance(query, str) else query
        effective_k = self._config.k if k is None else k
        for term in set(node.terms()):
            if self.stats.df(term) <= 0:
                raise QueryError(f"term {term!r} not in index")

        traffic = TrafficCounter()
        work = WorkCounters()
        interconnect = 0
        candidates: List[ScoredDocument] = []

        for segment in self.segments:
            pruned = prune_query_scored(node,
                                        lambda t, s=segment: t in s.index)
            if pruned is None:
                continue
            engine = self._engine_for(segment)
            overfetch = effective_k + len(segment.tombstones)
            result = engine.search(pruned, k=overfetch)
            traffic.merge(result.traffic)
            work.merge(result.work)
            interconnect += result.interconnect_bytes
            live_hits = [
                hit for hit in result.hits
                if hit.doc_id not in segment.tombstones
            ]
            candidates.extend(live_hits[:effective_k])

        candidates.extend(self._buffer_hits(node, effective_k))
        candidates.sort(key=lambda hit: (-hit.score, hit.doc_id))
        hits = candidates[:effective_k]
        return SearchResult(
            query=node,
            hits=hits,
            traffic=traffic,
            work=work,
            interconnect_bytes=interconnect,
        )

    def _engine_for(self, segment: Segment) -> BossAccelerator:
        """Per-segment engine, rebuilt when the segment goes stale."""
        version = self.stats.version
        cached = self._engines.get(segment.segment_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        if segment.stats_version == version:
            index = segment.index
        else:
            index = self._stale_view(segment)
        engine = BossAccelerator(index, self._config,
                                 observer=self._observer)
        self._engines[segment.segment_id] = (version, engine)
        return engine

    def _stale_view(self, segment: Segment) -> InvertedIndex:
        """Re-dress a stale segment with live statistics.

        Payloads, blocks, and regions are shared with the sealed index;
        only the score metadata is replaced: live IDFs, and per-block
        upper bounds computed from the recorded per-block max term
        frequency against the smallest possible live normalizer. Those
        bounds can only be *looser* than the true live maxima, which
        early termination tolerates (it skips less), never tighter
        (which would drop results).
        """
        scorer = self.stats.scorer()
        min_norm = self.stats.min_normalizer()
        k1 = self.stats.params.k1
        lists: Dict[str, CompressedPostingList] = {}
        for term in segment.index.terms:
            sealed = segment.index.posting_list(term)
            idf = self.stats.idf(term)
            blocks: List[Block] = []
            list_max = 0.0
            for block, tf_max in zip(sealed.blocks,
                                     segment.block_max_tfs[term]):
                bound = idf * (tf_max * (k1 + 1.0)) / (tf_max + min_norm)
                blocks.append(Block(
                    metadata=replace(block.metadata,
                                     max_term_score=bound),
                    doc_payload=block.doc_payload,
                    tf_payload=block.tf_payload,
                ))
                list_max = max(list_max, bound)
            lists[term] = CompressedPostingList(
                term=term,
                scheme=sealed.scheme,
                blocks=blocks,
                document_frequency=sealed.document_frequency,
                idf=idf,
                max_term_score=list_max,
                region=sealed.region,
            )
        stats = DocumentStats(
            num_docs=scorer.id_space,
            avgdl=scorer.avgdl,
            total_tokens=self.stats.total_tokens,
        )
        return InvertedIndex(lists, scorer, segment.index.layout, stats)

    def _buffer_hits(self, node: QueryNode,
                     k: int) -> List[ScoredDocument]:
        """Brute-force the write buffer (DRAM-resident, no SCM traffic).

        Matching and scoring mirror the engines: boolean membership over
        the query tree, score summed over every query term present in
        the document, with live IDFs and live normalizers. Duplicate
        query terms follow the engine's path-dependent rule: the union
        fast path (a term, or an OR of terms) opens one cursor per term
        *occurrence*, so duplicates score once per occurrence; every
        other path merges per-term tf maps and collapses duplicates.
        """
        if len(self.memseg) == 0:
            return []
        terms = set(node.terms())
        if isinstance(node, TermNode) or (
            isinstance(node, OrNode)
            and all(isinstance(c, TermNode) for c in node.children)
        ):
            multiplicity = Counter(node.terms())
        else:
            multiplicity = {term: 1 for term in terms}
        per_term: Dict[str, Dict[int, int]] = {}
        for term in terms:
            postings = {
                doc_id: self.memseg.tf(doc_id, term)
                for doc_id in self.memseg.doc_ids()
                if self.memseg.tf(doc_id, term) > 0
            }
            per_term[term] = postings

        def matching(n: QueryNode) -> Set[int]:
            if isinstance(n, TermNode):
                return set(per_term[n.term])
            child_sets = [matching(child) for child in n.children]
            if isinstance(n, AndNode):
                out = child_sets[0]
                for child_set in child_sets[1:]:
                    out = out & child_set
                return out
            out = set()
            for child_set in child_sets:
                out |= child_set
            return out

        scorer = self.stats.scorer()
        hits = []
        for doc_id in sorted(matching(node)):
            score = sum(
                multiplicity[term]
                * scorer.term_score(self.stats.idf(term), tf_map[doc_id],
                                    doc_id)
                for term, tf_map in per_term.items()
                if doc_id in tf_map
            )
            hits.append(ScoredDocument(doc_id, score))
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:k]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SegmentedIndex docs={self.num_docs} "
            f"segments={len(self.segments)} "
            f"buffered={len(self.memseg)}>"
        )
