"""Crash-consistent segment manifest (the durable directory's root).

The manifest is one JSON document naming the committed segment set:
which segment files exist, their tiers and sizes, the next segment id,
the writer configuration, and — crucially — ``wal_records``, the
length of the WAL prefix this manifest reflects. It is rewritten via
*atomic rename* at every seal/merge commit, so at any instant the
directory holds exactly one complete, self-checksummed manifest; a
crash between commits simply leaves the previous one, and recovery
replays the WAL suffix past ``wal_records`` over it.

Determinism matters beyond correctness: the serialization is canonical
(sorted keys, fixed separators), and the version *is* the WAL record
count — a pure function of log position — so a recovered writer
charges byte-for-byte the same manifest traffic a never-crashed writer
charged, which the conservation invariants assert.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import InvertedIndexError
from repro.live.segfile import segment_file_name
from repro.live.segments import Segment

MANIFEST_NAME = "MANIFEST.json"

#: Bumped when the manifest schema changes incompatibly.
MANIFEST_FORMAT = 1


def manifest_payload(segments: List[Segment], next_segment_id: int,
                     wal_records: int, config: dict) -> dict:
    """The manifest document for the current committed state."""
    return {
        "format": MANIFEST_FORMAT,
        "version": wal_records,
        "wal_records": wal_records,
        "next_segment_id": next_segment_id,
        "config": dict(config),
        "segments": [
            {
                "id": segment.segment_id,
                "tier": segment.tier,
                "stats_version": segment.stats_version,
                "file": segment_file_name(segment.segment_id),
                "nbytes": segment.nbytes,
            }
            for segment in sorted(segments,
                                  key=lambda s: s.segment_id)
        ],
    }


def serialize_manifest(payload: dict) -> bytes:
    """Canonical bytes: sorted keys + embedded CRC32 self-checksum."""
    body = dict(payload)
    body.pop("checksum", None)
    canonical = json.dumps(body, sort_keys=True,
                           separators=(",", ":"))
    body["checksum"] = zlib.crc32(canonical.encode("utf-8"))
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def write_manifest(path: Union[str, Path], payload: dict) -> int:
    """Atomically replace the manifest; returns bytes written."""
    data = serialize_manifest(payload)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as out:
        out.write(data)
        out.flush()
    os.replace(tmp, path)
    return len(data)


def load_manifest(path: Union[str, Path]) -> Optional[dict]:
    """Read and verify the manifest; ``None`` when absent.

    Raises :class:`~repro.errors.InvertedIndexError` on damage — the
    rename protocol never leaves a torn manifest, so damage means the
    file was edited or the directory is not a WAL directory.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        body = json.loads(path.read_bytes().decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise InvertedIndexError(
            f"{path}: manifest does not parse ({error})"
        ) from error
    recorded = body.pop("checksum", None)
    canonical = json.dumps(body, sort_keys=True,
                           separators=(",", ":"))
    if recorded != zlib.crc32(canonical.encode("utf-8")):
        raise InvertedIndexError(f"{path}: manifest checksum mismatch")
    if body.get("format") != MANIFEST_FORMAT:
        raise InvertedIndexError(
            f"{path}: unsupported manifest format {body.get('format')!r}"
        )
    return body
