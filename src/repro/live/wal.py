"""Append-only write-ahead log for the durable live index.

Every mutation that must survive a crash is appended here *before* the
in-memory state advances past its commit point:

* ``add`` / ``delete`` — the op stream itself (tokens in original
  order, so a replayed :class:`~repro.live.memseg.MemSegment` rebuilds
  byte-identical postings);
* ``seal`` — the buffer at this log position became segment N (logged
  after the segment file landed durably, so replay can load it);
* ``merge`` — inputs were compacted into an output segment (or dropped
  entirely when every input document was tombstoned).

**Framing.** The file opens with the magic ``BOSSWAL1``; each record is
``u32 payload length | u32 CRC32(payload) | payload``, with the payload
encoded through the same varint/length-prefix primitives as the
``.bossx`` format (:mod:`repro.index.binaryio`). A torn tail — a
truncated frame or a checksum mismatch — is *expected* after a crash:
:func:`read_wal` stops at the last valid record and reports how many
trailing bytes it refused, and recovery truncates them away.

**Metering.** The WAL is index-maintenance state on the SCM device, so
every appended frame is charged as a sequential ``ST Index`` write into
the writer's shared :class:`~repro.scm.traffic.TrafficCounter` —
appends ride the device's sequential-write path (group commit), they do
not open scheduler busy-windows of their own.

**Crash model.** The harness kills a writer by raising
:class:`~repro.errors.CrashError` at a named kill-point and abandoning
the object; anything already ``flush()``-ed to the OS survives such a
death, so ``fsync`` per append (for power-loss durability) is optional
and off by default.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, List, Optional, Tuple, Union

from repro.errors import InvertedIndexError
from repro.index.binaryio import (
    read_bytes_field,
    read_varint,
    write_bytes_field,
    write_varint,
)

WAL_MAGIC = b"BOSSWAL1"

#: Frame header: u32 LE payload length + u32 LE CRC32(payload).
_FRAME_HEADER = struct.Struct("<II")

#: Payload op-type tags (first varint of every payload).
_OP_ADD = 1
_OP_DELETE = 2
_OP_SEAL = 3
_OP_MERGE = 4


@dataclass(frozen=True)
class AddRecord:
    """One buffered add: the allocated docID and its token stream."""

    doc_id: int
    tokens: Tuple[str, ...]

    kind = "add"


@dataclass(frozen=True)
class DeleteRecord:
    """One delete by global docID (buffer drop or tombstone)."""

    doc_id: int

    kind = "delete"


@dataclass(frozen=True)
class SealRecord:
    """The buffer at this log position sealed into segment ``segment_id``."""

    segment_id: int

    kind = "seal"


@dataclass(frozen=True)
class MergeCommitRecord:
    """``input_ids`` compacted into ``output_id`` on ``output_tier``.

    ``output_id`` is ``None`` when every input document was tombstoned
    and the merge collapsed to nothing.
    """

    input_ids: Tuple[int, ...]
    output_id: Optional[int]
    output_tier: int

    kind = "merge"


WalRecord = Union[AddRecord, DeleteRecord, SealRecord, MergeCommitRecord]


def encode_payload(record: WalRecord) -> bytes:
    """Encode one record's payload (no frame header)."""
    out = io.BytesIO()
    if isinstance(record, AddRecord):
        write_varint(out, _OP_ADD)
        write_varint(out, record.doc_id)
        write_varint(out, len(record.tokens))
        for token in record.tokens:
            write_bytes_field(out, token.encode("utf-8"))
    elif isinstance(record, DeleteRecord):
        write_varint(out, _OP_DELETE)
        write_varint(out, record.doc_id)
    elif isinstance(record, SealRecord):
        write_varint(out, _OP_SEAL)
        write_varint(out, record.segment_id)
    elif isinstance(record, MergeCommitRecord):
        write_varint(out, _OP_MERGE)
        write_varint(out, record.output_tier)
        write_varint(out, 0 if record.output_id is None else 1)
        write_varint(out, record.output_id or 0)
        write_varint(out, len(record.input_ids))
        for input_id in record.input_ids:
            write_varint(out, input_id)
    else:
        raise InvertedIndexError(f"unknown WAL record {record!r}")
    return out.getvalue()


def decode_payload(payload: bytes) -> WalRecord:
    """Decode one checksum-valid payload back into its record."""
    op, offset = read_varint(payload, 0)
    if op == _OP_ADD:
        doc_id, offset = read_varint(payload, offset)
        num_tokens, offset = read_varint(payload, offset)
        tokens = []
        for _ in range(num_tokens):
            token, offset = read_bytes_field(payload, offset)
            tokens.append(token.decode("utf-8"))
        record: WalRecord = AddRecord(doc_id, tuple(tokens))
    elif op == _OP_DELETE:
        doc_id, offset = read_varint(payload, offset)
        record = DeleteRecord(doc_id)
    elif op == _OP_SEAL:
        segment_id, offset = read_varint(payload, offset)
        record = SealRecord(segment_id)
    elif op == _OP_MERGE:
        output_tier, offset = read_varint(payload, offset)
        has_output, offset = read_varint(payload, offset)
        output_id, offset = read_varint(payload, offset)
        num_inputs, offset = read_varint(payload, offset)
        input_ids = []
        for _ in range(num_inputs):
            input_id, offset = read_varint(payload, offset)
            input_ids.append(input_id)
        record = MergeCommitRecord(
            tuple(input_ids), output_id if has_output else None,
            output_tier,
        )
    else:
        raise InvertedIndexError(f"unknown WAL op type {op}")
    if offset != len(payload):
        raise InvertedIndexError(
            f"{len(payload) - offset} trailing bytes in WAL payload"
        )
    return record


def frame_record(record: WalRecord) -> bytes:
    """The full on-disk frame: header + payload."""
    payload = encode_payload(record)
    return _FRAME_HEADER.pack(len(payload),
                              zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """Result of scanning a WAL file.

    ``valid_bytes`` is the file offset just past the last valid record
    (recovery truncates the file there); ``torn`` is ``None`` for a
    clean log or the reason scanning stopped early (``"truncated"``,
    ``"corrupted"``).
    """

    records: List[WalRecord]
    valid_bytes: int
    total_bytes: int

    torn: Optional[str] = None

    @property
    def torn_bytes(self) -> int:
        return self.total_bytes - self.valid_bytes


def read_wal(path: Union[str, Path]) -> WalScan:
    """Scan a WAL file up to the last valid record.

    A well-formed prefix followed by arbitrary garbage (a torn append)
    parses to the records of the prefix; only a bad magic raises, since
    that means the file is not a WAL at all.
    """
    data = Path(path).read_bytes()
    if len(data) >= len(WAL_MAGIC) and data[:len(WAL_MAGIC)] != WAL_MAGIC:
        raise InvertedIndexError(f"{path} is not a BOSSWAL1 file")
    if len(data) < len(WAL_MAGIC):
        # A crash while creating the file: nothing was ever logged.
        return WalScan(records=[], valid_bytes=0, total_bytes=len(data),
                       torn="truncated" if data else None)
    records: List[WalRecord] = []
    offset = len(WAL_MAGIC)
    valid = offset
    torn: Optional[str] = None
    while offset < len(data):
        if offset + _FRAME_HEADER.size > len(data):
            torn = "truncated"
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > len(data):
            torn = "truncated"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            torn = "corrupted"
            break
        try:
            records.append(decode_payload(payload))
        except InvertedIndexError:
            # The checksum matched but the payload does not parse —
            # treat it like any other tail damage and stop here.
            torn = "corrupted"
            break
        offset = end
        valid = end
    return WalScan(records=records, valid_bytes=valid,
                   total_bytes=len(data), torn=torn)


class WriteAheadLog:
    """The append side: one open file, flushed (optionally fsynced)
    per record, with every frame charged as sequential ``ST Index``
    traffic and reported to the observer.

    ``records_logged`` / ``bytes_logged`` count *durable* frames —
    recovery seeds them with the surviving log's totals so manifest
    versions and conservation identities continue seamlessly.
    """

    def __init__(self, path: Union[str, Path], traffic=None,
                 observer=None, crash=None, fsync: bool = False,
                 _existing: Optional[Tuple[int, int]] = None) -> None:
        from repro.observability.observer import NULL_OBSERVER
        from repro.scm.traffic import TrafficCounter

        self.path = Path(path)
        self.traffic = TrafficCounter() if traffic is None else traffic
        self._observer = NULL_OBSERVER if observer is None else observer
        self._crash = crash
        self._fsync = fsync
        if _existing is None:
            if self.path.exists() and self.path.stat().st_size > 0:
                raise InvertedIndexError(
                    f"{self.path} already holds a WAL — recover it "
                    f"instead of opening a fresh writer over it"
                )
            self.records_logged = 0
            self.bytes_logged = 0
            self._handle: BinaryIO = open(self.path, "wb")
            self._handle.write(WAL_MAGIC)
            self._flush()
        else:
            self.records_logged, self.bytes_logged = _existing
            self._handle = open(self.path, "ab")

    def _flush(self) -> None:
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def append(self, record: WalRecord) -> int:
        """Durably append one record; returns the frame size in bytes.

        The armed ``mid_wal_append`` kill-point fires *during* the
        write: a deterministic prefix (or corrupted copy) of the frame
        reaches the file, then :class:`~repro.errors.CrashError`
        unwinds — exactly the torn tail :func:`read_wal` must detect.
        """
        frame = frame_record(record)
        if self._crash is not None:
            mangled = self._crash.wal_tear(frame)
            if mangled is not None:
                self._handle.write(mangled)
                self._flush()
                self._crash.die("mid_wal_append")
        self._handle.write(frame)
        self._flush()
        self.records_logged += 1
        self.bytes_logged += len(frame)
        self.charge(record, len(frame))
        return len(frame)

    def charge(self, record: WalRecord, nbytes: int) -> None:
        """Meter one frame (shared by append and recovery replay)."""
        from repro.scm.traffic import AccessClass, AccessPattern

        self.traffic.record(AccessClass.ST_INDEX,
                            AccessPattern.SEQUENTIAL, nbytes)
        if self._observer.enabled:
            self._observer.on_wal_append(record.kind, nbytes)

    def close(self) -> None:
        if not self._handle.closed:
            self._flush()
            self._handle.close()
