"""Durable segment files: one sealed :class:`~repro.live.segments.
Segment` per file, bit-faithful to the in-memory original.

The ``.bossx`` format (:mod:`repro.index.binaryio`) is *not* reusable
as-is for live segments: loading it rebuilds a plain
:class:`~repro.index.bm25.BM25Scorer` over the segment's own documents,
but a live segment scores with a :class:`~repro.live.stats.
LiveBM25Scorer` snapshot — normalizer slots for *every* docID ever
allocated, with ``N`` and ``avgdl`` from the live survivors. Recovery
must reproduce that scorer exactly or the fresh-segment query path
diverges from a clean replay. So segment files store the scorer's
actual inputs — the full allocated docID length table, the live
document count, and the exact live token total (an integer; storing
the derived float would not round-trip the division) — and loading
re-runs the same constructor the seal ran.

Layout (all varints/length-prefixed fields via the shared
:mod:`~repro.index.binaryio` primitives, doubles IEEE-754 LE)::

    magic BOSSSEG1
    segment_id, tier, stats_version
    scorer: k1, b (doubles); id_space; doc_lengths[id_space];
            num_live; total_live_tokens
    doc table: count; per doc: docID, length, term count, terms
    term sections: count; per term the shared .bossx section
    block_max_tfs: per term (in section order): count, values
    trailer: u32 CRC32 of everything before it

Files are written to a temp name and ``os.replace``-d into place, so a
crash never leaves a half-written file under the real name; the
whole-file checksum catches any other damage, and recovery falls back
to a deterministic rebuild from the WAL when a file fails to load.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import InvertedIndexError
from repro.index.binaryio import (
    read_bytes_field,
    read_term_section,
    read_varint,
    write_bytes_field,
    write_term_section,
    write_varint,
)
from repro.index.bm25 import BM25Parameters
from repro.index.index import (
    CompressedPostingList,
    DocumentStats,
    InvertedIndex,
)
from repro.index.storage import AddressSpaceLayout
from repro.live.segments import Segment
from repro.live.stats import LiveBM25Scorer

SEG_MAGIC = b"BOSSSEG1"

_CRC = struct.Struct("<I")
_PAIR = struct.Struct("<dd")


def segment_file_name(segment_id: int) -> str:
    """Canonical on-disk name for one segment."""
    return f"seg-{segment_id:08d}.seg"


def encode_segment(segment: Segment) -> bytes:
    """Serialize one segment (without the CRC trailer)."""
    scorer = segment.index.scorer
    if not isinstance(scorer, LiveBM25Scorer):
        raise InvertedIndexError(
            f"segment {segment.segment_id} was not sealed with live "
            f"statistics; refusing to persist a non-live scorer"
        )
    out = io.BytesIO()
    out.write(SEG_MAGIC)
    write_varint(out, segment.segment_id)
    write_varint(out, segment.tier)
    write_varint(out, segment.stats_version)
    params = scorer.params
    out.write(_PAIR.pack(params.k1, params.b))
    write_varint(out, len(scorer._doc_lengths))
    for length in scorer._doc_lengths:
        write_varint(out, length)
    write_varint(out, scorer.num_docs)
    total_live_tokens = round(scorer.avgdl * scorer.num_docs)
    write_varint(out, total_live_tokens)
    write_varint(out, len(segment.doc_lengths))
    for doc_id, length in segment.doc_lengths.items():
        write_varint(out, doc_id)
        write_varint(out, length)
        terms = segment.doc_terms[doc_id]
        write_varint(out, len(terms))
        for term in terms:
            write_bytes_field(out, term.encode("utf-8"))
    terms = segment.index.terms
    write_varint(out, len(terms))
    for term in terms:
        write_term_section(out, segment.index.posting_list(term))
    for term in terms:
        tf_maxima = segment.block_max_tfs[term]
        write_varint(out, len(tf_maxima))
        for tf_max in tf_maxima:
            write_varint(out, tf_max)
    return out.getvalue()


def save_segment(segment: Segment, path: Union[str, Path]) -> int:
    """Atomically persist ``segment``; returns the file size in bytes.

    The CRC32 trailer covers the whole body, so a reader can prove the
    file intact without trusting anything else on disk.
    """
    body = encode_segment(segment)
    data = body + _CRC.pack(zlib.crc32(body))
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as out:
        out.write(data)
        out.flush()
    os.replace(tmp, path)
    return len(data)


def load_segment(path: Union[str, Path]) -> Tuple[Segment, int]:
    """Load one segment file; returns ``(segment, file_size_bytes)``.

    Raises :class:`~repro.errors.InvertedIndexError` on any damage
    (bad magic, failed checksum, truncated body) — recovery treats that
    as "file lost" and rebuilds the segment from the WAL instead.
    """
    data = Path(path).read_bytes()
    if len(data) < len(SEG_MAGIC) + _CRC.size:
        raise InvertedIndexError(f"{path}: segment file truncated")
    if data[:len(SEG_MAGIC)] != SEG_MAGIC:
        raise InvertedIndexError(f"{path} is not a BOSSSEG1 file")
    body, (crc,) = data[:-_CRC.size], _CRC.unpack(data[-_CRC.size:])
    if zlib.crc32(body) != crc:
        raise InvertedIndexError(f"{path}: segment checksum mismatch")

    offset = len(SEG_MAGIC)
    segment_id, offset = read_varint(body, offset)
    tier, offset = read_varint(body, offset)
    stats_version, offset = read_varint(body, offset)
    if offset + _PAIR.size > len(body):
        raise InvertedIndexError(f"{path}: truncated scorer header")
    k1, b = _PAIR.unpack_from(body, offset)
    offset += _PAIR.size
    id_space, offset = read_varint(body, offset)
    all_lengths: List[int] = []
    for _ in range(id_space):
        length, offset = read_varint(body, offset)
        all_lengths.append(length)
    num_live, offset = read_varint(body, offset)
    total_live_tokens, offset = read_varint(body, offset)
    scorer = LiveBM25Scorer(all_lengths, num_live, total_live_tokens,
                            BM25Parameters(k1=k1, b=b))

    num_docs, offset = read_varint(body, offset)
    doc_lengths: Dict[int, int] = {}
    doc_terms: Dict[int, Tuple[str, ...]] = {}
    for _ in range(num_docs):
        doc_id, offset = read_varint(body, offset)
        length, offset = read_varint(body, offset)
        doc_lengths[doc_id] = length
        num_terms, offset = read_varint(body, offset)
        terms = []
        for _ in range(num_terms):
            raw, offset = read_bytes_field(body, offset)
            terms.append(raw.decode("utf-8"))
        doc_terms[doc_id] = tuple(terms)

    num_terms, offset = read_varint(body, offset)
    layout = AddressSpaceLayout()
    lists: Dict[str, CompressedPostingList] = {}
    term_order: List[str] = []
    for _ in range(num_terms):
        posting_list, offset = read_term_section(body, offset, layout)
        lists[posting_list.term] = posting_list
        term_order.append(posting_list.term)
    block_max_tfs: Dict[str, List[int]] = {}
    for term in term_order:
        count, offset = read_varint(body, offset)
        tf_maxima = []
        for _ in range(count):
            tf_max, offset = read_varint(body, offset)
            tf_maxima.append(tf_max)
        block_max_tfs[term] = tf_maxima
    if offset != len(body):
        raise InvertedIndexError(
            f"{path}: {len(body) - offset} trailing bytes in segment body"
        )

    # Reconstruct DocumentStats exactly the way IndexBuilder.build()
    # derives it when handed a pre-built scorer.
    stats = DocumentStats(
        num_docs=scorer.id_space,
        avgdl=scorer.avgdl,
        total_tokens=int(round(scorer.avgdl * scorer.num_docs)),
    )
    index = InvertedIndex(lists, scorer, layout, stats)
    return Segment(
        segment_id=segment_id,
        index=index,
        tier=tier,
        stats_version=stats_version,
        doc_lengths=doc_lengths,
        doc_terms=doc_terms,
        block_max_tfs=block_max_tfs,
    ), len(data)
