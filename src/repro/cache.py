"""DRAM block cache in front of the SCM tier (extension study).

The paper's memory node pairs slow, huge SCM with the memory
controller's fast path; a natural extension — and prior art the paper
cites (compressed inverted-list caching, [73]) — is a small DRAM-side
cache for hot posting-list blocks. Query logs are heavily skewed
(Zipfian query popularity), so a cache of a few percent of the index
can absorb a large share of the block fetches, multiplying the
effective SCM bandwidth.

This module simulates that tier from the engines' fetch traces:

* :class:`LRUBlockCache` — byte-capacity LRU over (term, block) keys;
* :class:`CacheSimulator` — replays per-query fetch logs, producing a
  :class:`CacheReport` with hit rates and the SCM bytes absorbed;
* :func:`cached_memory_seconds` — the memory-side service time with the
  cache in place (hits at DRAM speed, misses at SCM speed).

It also hosts :class:`DecodedBlockCache`, the host-side *decoded*-block
cache used by the fast query path: an LRU over already-decompressed
``(docID array, tf array)`` pairs. Unlike the simulated DRAM tier above,
this cache is purely a wall-clock optimization — the performance model
still charges the full modeled SCM traffic and decompression work for
every block touch, so modeled metrics are bit-identical with the cache
on or off.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scm.device import DDR4_4CH, OPTANE_NODE_4CH, MemoryDeviceModel
from repro.scm.traffic import AccessPattern

#: One fetch-trace entry: (term, block_index, payload_bytes, pattern).
#: ``pattern`` is the engine-observed :class:`AccessPattern` of the
#: fetch — sequential only when the block continued the cursor's
#: previous fetched block; a metadata-guided skip landing is random.
#: Legacy three-field records (no pattern) are accepted by the replay
#: helpers and treated as sequential walks.
FetchRecord = Tuple[str, int, int, AccessPattern]


def _unpack_record(record) -> Tuple[str, int, int, AccessPattern]:
    """Normalize a fetch record; legacy 3-tuples default to sequential."""
    if len(record) >= 4:
        term, block_index, size, pattern = record[:4]
        return term, block_index, size, pattern
    term, block_index, size = record
    return term, block_index, size, AccessPattern.SEQUENTIAL


class LRUBlockCache:
    """Byte-capacity LRU cache over posting-list blocks."""

    def __init__(self, capacity_bytes: int, observer=None) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Tuple[str, int], int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        #: Observability hook; only consulted when ``observer.enabled``.
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_blocks(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def access(self, term: str, block_index: int, size: int) -> bool:
        """Touch one block; returns True on a hit."""
        if size < 0:
            raise ConfigurationError("negative block size")
        key = (term, block_index)
        if key in self._entries:
            # A hit may carry a different size than the insert did
            # (e.g. replayed traces from differently-compressed runs);
            # keep the byte accounting honest or the capacity LRU
            # over/under-evicts forever after.
            stored = self._entries[key]
            if size != stored:
                self._used += size - stored
                self._entries[key] = size
            self._entries.move_to_end(key)
            if size > self.capacity_bytes:
                # Grew past the whole cache: now uncacheable, same as
                # the miss path's oversized rule.
                del self._entries[key]
                self._used -= size
            while self._used > self.capacity_bytes and self._entries:
                _evicted_key, evicted_size = self._entries.popitem(last=False)
                self._used -= evicted_size
            self.hits += 1
            if self._observer is not None:
                self._observer.on_cache_access(True, size)
            return True
        self.misses += 1
        if self._observer is not None:
            self._observer.on_cache_access(False, size)
        if size > self.capacity_bytes:
            return False  # uncacheable oversized block
        while self._used + size > self.capacity_bytes and self._entries:
            _evicted_key, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
        self._entries[key] = size
        self._used += size
        return False


#: Default capacity (in blocks) of the fast path's decoded-block cache.
#: At 128 postings per block this retains about one million decoded
#: postings — small against index size, large against a query batch's
#: working set of hot terms.
DEFAULT_DECODED_CACHE_BLOCKS = 8192


class DecodedBlockCache:
    """LRU cache of decompressed blocks, keyed ``(term, block, scheme)``.

    Holds the fast path's decoded ``(docID array, tf array)`` pairs so
    repeated touches of a hot block skip decompression entirely.
    Capacity is counted in *blocks* (each is at most 128 postings), not
    bytes, since decoded blocks are near-uniform in size.

    Thread-safe: the batched query driver shares one instance across
    worker threads, so lookups and insertions take an internal lock.
    Cached arrays are treated as immutable by all readers.

    Functional-only by design — see the module docstring: modeled
    traffic/latency accounting happens in the cursor regardless of hits.
    """

    def __init__(self, capacity_blocks: int = DEFAULT_DECODED_CACHE_BLOCKS,
                 observer=None) -> None:
        if capacity_blocks <= 0:
            raise ConfigurationError(
                "decoded cache capacity must be positive"
            )
        self.capacity_blocks = capacity_blocks
        self._entries: "OrderedDict[Tuple[str, int, str], tuple]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Observability hook; only consulted when ``observer.enabled``.
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )

    @property
    def num_blocks(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, term: str, block_index: int, scheme: str):
        """Look up a decoded block; returns the pair or ``None``."""
        key = (term, block_index, scheme)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if self._observer is not None:
            self._observer.on_decoded_block(entry is not None)
        return entry

    def put(self, term: str, block_index: int, scheme: str,
            decoded) -> None:
        """Insert a freshly decoded ``(doc_ids, tfs)`` pair."""
        key = (term, block_index, scheme)
        with self._lock:
            self._entries[key] = decoded
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity_blocks:
                self._entries.popitem(last=False)


@dataclass(frozen=True)
class CacheReport:
    """Outcome of replaying a fetch trace through the cache."""

    capacity_bytes: int
    hits: int
    misses: int
    #: Bytes served from DRAM (hits).
    dram_bytes: int
    #: Bytes that still went to SCM (misses).
    scm_bytes: int
    #: Miss bytes that stayed part of an unbroken sequential run — the
    #: record was engine-sequential *and* the immediately preceding
    #: miss was the same term's previous block (a hit punched out of
    #: the middle of a run restarts it: the device seeks again).
    scm_seq_bytes: int = 0
    #: Miss bytes charged at the Table I random-read rate.
    scm_rand_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def bytes_absorbed_fraction(self) -> float:
        total = self.dram_bytes + self.scm_bytes
        return self.dram_bytes / total if total else 0.0

    @property
    def scm_random_fraction(self) -> float:
        """Share of SCM (miss) bytes paying the random-read rate."""
        return self.scm_rand_bytes / self.scm_bytes if self.scm_bytes else 0.0


class CacheSimulator:
    """Replays fetch traces through an LRU block cache.

    Misses are charged at their *true* access pattern: a miss continues
    a sequential SCM run only when the engine observed the fetch as
    sequential and the device's previous miss was the same term's
    previous block. Everything else — skip landings, list starts, runs
    broken by interleaved hits or other terms — pays the random rate.
    """

    def __init__(self, capacity_bytes: int, observer=None) -> None:
        self._cache = LRUBlockCache(capacity_bytes, observer=observer)
        self._dram_bytes = 0
        self._scm_seq_bytes = 0
        self._scm_rand_bytes = 0
        #: (term, block_index) of the immediately preceding miss.
        self._last_miss: Optional[Tuple[str, int]] = None

    def replay(self, fetch_log: Iterable[FetchRecord]) -> None:
        """Feed one query's fetch records through the cache."""
        for record in fetch_log:
            term, block_index, size, pattern = _unpack_record(record)
            if self._cache.access(term, block_index, size):
                # Served from DRAM: the SCM stream (if any) is
                # interrupted, so a later miss restarts its run.
                self._dram_bytes += size
                self._last_miss = None
                continue
            sequential = (
                pattern is AccessPattern.SEQUENTIAL
                and self._last_miss == (term, block_index - 1)
            )
            if sequential:
                self._scm_seq_bytes += size
            else:
                self._scm_rand_bytes += size
            self._last_miss = (term, block_index)

    def report(self) -> CacheReport:
        return CacheReport(
            capacity_bytes=self._cache.capacity_bytes,
            hits=self._cache.hits,
            misses=self._cache.misses,
            dram_bytes=self._dram_bytes,
            scm_bytes=self._scm_seq_bytes + self._scm_rand_bytes,
            scm_seq_bytes=self._scm_seq_bytes,
            scm_rand_bytes=self._scm_rand_bytes,
        )


def uncached_memory_seconds(fetch_log: Iterable[FetchRecord],
                            scm: MemoryDeviceModel = OPTANE_NODE_4CH,
                            ) -> float:
    """Block-fetch service time with no cache tier at all.

    Every record goes to SCM at its engine-observed pattern — the
    baseline the cache/planner studies compare against. The historical
    model charged all of it sequential, hiding the Table I 4x
    sequential/random asymmetry that skip-heavy query plans actually pay.
    """
    seq = rand = 0
    for record in fetch_log:
        _term, _index, size, pattern = _unpack_record(record)
        if pattern is AccessPattern.SEQUENTIAL:
            seq += size
        else:
            rand += size
    return (scm.read_time(seq, AccessPattern.SEQUENTIAL)
            + scm.read_time(rand, AccessPattern.RANDOM))


def cached_memory_seconds(report: CacheReport,
                          scm: MemoryDeviceModel = OPTANE_NODE_4CH,
                          dram: MemoryDeviceModel = DDR4_4CH) -> float:
    """Block-fetch service time with the cache tier in place.

    Hits are scattered single-block DRAM lookups (random at DRAM's mild
    penalty); misses are charged at the pattern the replay actually
    observed — only unbroken sequential runs earn the sequential SCM
    rate, everything else pays the Table I random rate. Reports from
    older callers that never split the miss bytes fall back to charging
    them all sequential (the pre-fix behavior).
    """
    if report.scm_seq_bytes or report.scm_rand_bytes:
        scm_seconds = (
            scm.read_time(report.scm_seq_bytes, AccessPattern.SEQUENTIAL)
            + scm.read_time(report.scm_rand_bytes, AccessPattern.RANDOM)
        )
    else:
        scm_seconds = scm.read_time(report.scm_bytes,
                                    AccessPattern.SEQUENTIAL)
    return (
        dram.read_time(report.dram_bytes, AccessPattern.RANDOM)
        + scm_seconds
    )
