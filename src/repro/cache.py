"""DRAM block cache in front of the SCM tier (extension study).

The paper's memory node pairs slow, huge SCM with the memory
controller's fast path; a natural extension — and prior art the paper
cites (compressed inverted-list caching, [73]) — is a small DRAM-side
cache for hot posting-list blocks. Query logs are heavily skewed
(Zipfian query popularity), so a cache of a few percent of the index
can absorb a large share of the block fetches, multiplying the
effective SCM bandwidth.

This module simulates that tier from the engines' fetch traces:

* :class:`LRUBlockCache` — byte-capacity LRU over (term, block) keys;
* :class:`CacheSimulator` — replays per-query fetch logs, producing a
  :class:`CacheReport` with hit rates and the SCM bytes absorbed;
* :func:`cached_memory_seconds` — the memory-side service time with the
  cache in place (hits at DRAM speed, misses at SCM speed).

It also hosts :class:`DecodedBlockCache`, the host-side *decoded*-block
cache used by the fast query path: an LRU over already-decompressed
``(docID array, tf array)`` pairs. Unlike the simulated DRAM tier above,
this cache is purely a wall-clock optimization — the performance model
still charges the full modeled SCM traffic and decompression work for
every block touch, so modeled metrics are bit-identical with the cache
on or off.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import ConfigurationError
from repro.scm.device import DDR4_4CH, OPTANE_NODE_4CH, MemoryDeviceModel
from repro.scm.traffic import AccessPattern

#: One fetch-trace entry: (term, block_index, payload_bytes).
FetchRecord = Tuple[str, int, int]


class LRUBlockCache:
    """Byte-capacity LRU cache over posting-list blocks."""

    def __init__(self, capacity_bytes: int, observer=None) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Tuple[str, int], int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        #: Observability hook; only consulted when ``observer.enabled``.
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_blocks(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def access(self, term: str, block_index: int, size: int) -> bool:
        """Touch one block; returns True on a hit."""
        if size < 0:
            raise ConfigurationError("negative block size")
        key = (term, block_index)
        if key in self._entries:
            # A hit may carry a different size than the insert did
            # (e.g. replayed traces from differently-compressed runs);
            # keep the byte accounting honest or the capacity LRU
            # over/under-evicts forever after.
            stored = self._entries[key]
            if size != stored:
                self._used += size - stored
                self._entries[key] = size
            self._entries.move_to_end(key)
            if size > self.capacity_bytes:
                # Grew past the whole cache: now uncacheable, same as
                # the miss path's oversized rule.
                del self._entries[key]
                self._used -= size
            while self._used > self.capacity_bytes and self._entries:
                _evicted_key, evicted_size = self._entries.popitem(last=False)
                self._used -= evicted_size
            self.hits += 1
            if self._observer is not None:
                self._observer.on_cache_access(True, size)
            return True
        self.misses += 1
        if self._observer is not None:
            self._observer.on_cache_access(False, size)
        if size > self.capacity_bytes:
            return False  # uncacheable oversized block
        while self._used + size > self.capacity_bytes and self._entries:
            _evicted_key, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
        self._entries[key] = size
        self._used += size
        return False


#: Default capacity (in blocks) of the fast path's decoded-block cache.
#: At 128 postings per block this retains about one million decoded
#: postings — small against index size, large against a query batch's
#: working set of hot terms.
DEFAULT_DECODED_CACHE_BLOCKS = 8192


class DecodedBlockCache:
    """LRU cache of decompressed blocks, keyed ``(term, block, scheme)``.

    Holds the fast path's decoded ``(docID array, tf array)`` pairs so
    repeated touches of a hot block skip decompression entirely.
    Capacity is counted in *blocks* (each is at most 128 postings), not
    bytes, since decoded blocks are near-uniform in size.

    Thread-safe: the batched query driver shares one instance across
    worker threads, so lookups and insertions take an internal lock.
    Cached arrays are treated as immutable by all readers.

    Functional-only by design — see the module docstring: modeled
    traffic/latency accounting happens in the cursor regardless of hits.
    """

    def __init__(self, capacity_blocks: int = DEFAULT_DECODED_CACHE_BLOCKS,
                 observer=None) -> None:
        if capacity_blocks <= 0:
            raise ConfigurationError(
                "decoded cache capacity must be positive"
            )
        self.capacity_blocks = capacity_blocks
        self._entries: "OrderedDict[Tuple[str, int, str], tuple]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Observability hook; only consulted when ``observer.enabled``.
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )

    @property
    def num_blocks(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, term: str, block_index: int, scheme: str):
        """Look up a decoded block; returns the pair or ``None``."""
        key = (term, block_index, scheme)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if self._observer is not None:
            self._observer.on_decoded_block(entry is not None)
        return entry

    def put(self, term: str, block_index: int, scheme: str,
            decoded) -> None:
        """Insert a freshly decoded ``(doc_ids, tfs)`` pair."""
        key = (term, block_index, scheme)
        with self._lock:
            self._entries[key] = decoded
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity_blocks:
                self._entries.popitem(last=False)


@dataclass(frozen=True)
class CacheReport:
    """Outcome of replaying a fetch trace through the cache."""

    capacity_bytes: int
    hits: int
    misses: int
    #: Bytes served from DRAM (hits).
    dram_bytes: int
    #: Bytes that still went to SCM (misses).
    scm_bytes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def bytes_absorbed_fraction(self) -> float:
        total = self.dram_bytes + self.scm_bytes
        return self.dram_bytes / total if total else 0.0


class CacheSimulator:
    """Replays fetch traces through an LRU block cache."""

    def __init__(self, capacity_bytes: int, observer=None) -> None:
        self._cache = LRUBlockCache(capacity_bytes, observer=observer)
        self._dram_bytes = 0
        self._scm_bytes = 0

    def replay(self, fetch_log: Iterable[FetchRecord]) -> None:
        """Feed one query's fetch records through the cache."""
        for term, block_index, size in fetch_log:
            if self._cache.access(term, block_index, size):
                self._dram_bytes += size
            else:
                self._scm_bytes += size

    def report(self) -> CacheReport:
        return CacheReport(
            capacity_bytes=self._cache.capacity_bytes,
            hits=self._cache.hits,
            misses=self._cache.misses,
            dram_bytes=self._dram_bytes,
            scm_bytes=self._scm_bytes,
        )


def cached_memory_seconds(report: CacheReport,
                          scm: MemoryDeviceModel = OPTANE_NODE_4CH,
                          dram: MemoryDeviceModel = DDR4_4CH) -> float:
    """Block-fetch service time with the cache tier in place.

    Hits stream from the DRAM tier, misses from SCM; both sides are
    sequential block reads (the cache does not change access order).
    """
    return (
        dram.read_time(report.dram_bytes, AccessPattern.SEQUENTIAL)
        + scm.read_time(report.scm_bytes, AccessPattern.SEQUENTIAL)
    )
