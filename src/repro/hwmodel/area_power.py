"""Table III: area and power breakdown of BOSS at TSMC 40 nm.

Numbers are the paper's synthesis results (Synopsys Design Compiler,
TSMC 40 nm standard cells, 1 GHz). Areas are totals over all instances
of a component; power is average dynamic+static power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ComponentCost:
    """Synthesis cost of one component type."""

    name: str
    instances: int
    area_mm2: float
    power_mw: float

    @property
    def area_per_instance(self) -> float:
        return self.area_mm2 / self.instances

    @property
    def power_per_instance(self) -> float:
        return self.power_mw / self.instances


#: Per-core module breakdown (Table III, lower half). Areas/powers are
#: totals over the listed instance counts within ONE BOSS core.
BOSS_CORE_BREAKDOWN: Tuple[ComponentCost, ...] = (
    ComponentCost("block-fetch", 1, 0.108, 10.5),
    ComponentCost("decompression", 4, 0.093, 43.0),
    ComponentCost("intersection", 1, 0.003, 0.49),
    ComponentCost("union", 1, 0.011, 5.55),
    ComponentCost("scoring", 4, 0.464, 200.0),
    ComponentCost("top-k", 1, 0.324, 147.1),
)

#: Device-level breakdown (Table III, upper half): 8 cores + peripherals.
BOSS_DEVICE_BREAKDOWN: Tuple[ComponentCost, ...] = (
    ComponentCost("boss-core", 8, 8.024, 3200.0),
    ComponentCost("command-queue", 1, 0.078, 0.078),
    ComponentCost("query-scheduler", 1, 0.001, 1.96),
    ComponentCost("mai-with-tlb", 1, 0.127, 1.20),
)

#: Measured average package power of the evaluation host CPU (Intel Xeon
#: 8280M via Intel SoC Watch, paper Section V-C footnote).
CPU_PACKAGE_POWER_W: float = 74.8

#: Paper-reported totals, used as consistency checks.
PAPER_CORE_AREA_MM2 = 1.003
PAPER_CORE_POWER_MW = 406.6
PAPER_DEVICE_AREA_MM2 = 8.27
PAPER_DEVICE_POWER_W = 3.2


def boss_core_totals() -> Dict[str, float]:
    """Summed area (mm^2) and power (mW) of one BOSS core."""
    return {
        "area_mm2": sum(c.area_mm2 for c in BOSS_CORE_BREAKDOWN),
        "power_mw": sum(c.power_mw for c in BOSS_CORE_BREAKDOWN),
    }


def boss_device_totals() -> Dict[str, float]:
    """Summed area (mm^2) and power (mW) of the full 8-core device."""
    return {
        "area_mm2": sum(c.area_mm2 for c in BOSS_DEVICE_BREAKDOWN),
        "power_mw": sum(c.power_mw for c in BOSS_DEVICE_BREAKDOWN),
    }
