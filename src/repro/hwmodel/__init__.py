"""Hardware cost model: area, power (Table III) and energy (Figure 17).

The paper synthesizes BOSS from Chisel RTL at TSMC 40 nm; since RTL
synthesis is outside a Python reproduction, the reported area/power
numbers are carried as model constants and combined with the timing
model's runtimes to reproduce the energy comparison (``E = P × t``).
"""

from repro.hwmodel.area_power import (
    BOSS_CORE_BREAKDOWN,
    BOSS_DEVICE_BREAKDOWN,
    CPU_PACKAGE_POWER_W,
    ComponentCost,
    boss_core_totals,
    boss_device_totals,
)
from repro.hwmodel.energy import EnergyModel, EnergyReport

__all__ = [
    "ComponentCost",
    "BOSS_CORE_BREAKDOWN",
    "BOSS_DEVICE_BREAKDOWN",
    "CPU_PACKAGE_POWER_W",
    "boss_core_totals",
    "boss_device_totals",
    "EnergyModel",
    "EnergyReport",
]
