"""Energy model: runtime x power (Figure 17).

The paper reports a 189x average energy saving of BOSS over 8-core
Lucene. Energy is runtime times average power: BOSS draws 3.2 W
(Table III), the host CPU package 74.8 W. Memory-device energy is
excluded on both sides (the same SCM pool serves both configurations),
exactly as the paper compares compute energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hwmodel.area_power import CPU_PACKAGE_POWER_W, boss_device_totals
from repro.sim.timing import ThroughputReport


@dataclass(frozen=True)
class EnergyReport:
    """Energy outcome for one engine run."""

    engine: str
    power_watts: float
    runtime_seconds: float

    @property
    def energy_joules(self) -> float:
        return self.power_watts * self.runtime_seconds

    @property
    def energy_per_query(self) -> float:
        return self.energy_joules  # callers divide by query count if needed

    def savings_over(self, other: "EnergyReport") -> float:
        """How many times less energy this run used than ``other``."""
        if self.energy_joules <= 0:
            raise ConfigurationError("non-positive energy")
        return other.energy_joules / self.energy_joules


class EnergyModel:
    """Maps engine throughput reports to energy consumption."""

    def __init__(self,
                 boss_power_watts: float = None,
                 cpu_power_watts: float = CPU_PACKAGE_POWER_W) -> None:
        if boss_power_watts is None:
            boss_power_watts = boss_device_totals()["power_mw"] / 1000.0
        if boss_power_watts <= 0 or cpu_power_watts <= 0:
            raise ConfigurationError("powers must be positive")
        self.boss_power_watts = boss_power_watts
        self.cpu_power_watts = cpu_power_watts

    def power_for(self, engine: str) -> float:
        """Average power draw of an engine's compute substrate."""
        if engine.lower().startswith("lucene"):
            return self.cpu_power_watts
        # BOSS and IIU are both small ASICs; the paper reports only
        # BOSS's synthesis, and IIU's published design is of the same
        # scale — both are charged the accelerator power.
        return self.boss_power_watts

    def energy(self, report: ThroughputReport) -> EnergyReport:
        """Energy of one batch run."""
        return EnergyReport(
            engine=report.engine,
            power_watts=self.power_for(report.engine),
            runtime_seconds=report.batch_seconds,
        )
