"""Comparison engines: IIU (prior accelerator) and Lucene (software).

Both baselines share the functional substrate (index, codecs, BM25) and
return the same top-k results as BOSS; they differ in *how* they execute —
which is what the performance model measures:

* :mod:`repro.baselines.iiu` — the prior inverted-index accelerator
  [34]: binary-search intersections (random access), exhaustive unions
  (no early termination), intermediate-result spills for multi-term
  queries, and host-side top-k (the full scored list leaves the device);
* :mod:`repro.baselines.lucene` — a production-grade software engine
  model: document-at-a-time WAND with skip lists, per-operation CPU
  costs, running on host cores across the shared interconnect.
"""

from repro.baselines.iiu import IIUAccelerator, IIUConfig
from repro.baselines.lucene import LuceneEngine, LuceneConfig

__all__ = [
    "IIUAccelerator",
    "IIUConfig",
    "LuceneEngine",
    "LuceneConfig",
]
