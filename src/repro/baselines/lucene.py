"""Lucene-like software baseline: host-CPU query processing.

Models a production-grade search library (the paper's Apache Lucene
baseline) running on host cores with the index resident in the SCM pool:

* **document-at-a-time WAND** for unions — Lucene implements WAND-style
  dynamic pruning over per-term maximum scores (``MAXSCORE``/``WAND``
  in Lucene 8), but not the block-level score-estimation skipping BOSS
  adds in hardware;
* **leapfrog SvS** intersections using skip lists (block-level skipping
  on docID ranges is standard in Lucene's postings format);
* **software top-k** via a heap — results never leave host memory, so no
  result traffic is charged;
* **every loaded byte crosses the shared interconnect**: the host has no
  near-data placement, so posting and metadata traffic is charged both
  at the device and on the link.

The *work counters* produced here are converted to CPU seconds by
:class:`repro.sim.timing.LuceneTimingModel`; the paper's observation
that Lucene is compute-bound (Figure 16: ≤15% gain from DRAM) emerges
from those per-operation costs dominating the bandwidth terms.

Functionally the engine returns exactly the same top-k as BOSS (WAND is
safe and the scoring arithmetic is shared), which tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.engine import BossAccelerator, BossConfig
from repro.core.query import QueryNode
from repro.core.result import SearchResult
from repro.core.topk import DEFAULT_K
from repro.index.index import InvertedIndex


@dataclass(frozen=True)
class LuceneConfig:
    """Software engine configuration."""

    num_threads: int = 8
    k: int = DEFAULT_K


class LuceneEngine:
    """Host-side software search over the pooled SCM index."""

    def __init__(self, index: InvertedIndex,
                 config: Optional[LuceneConfig] = None) -> None:
        self._index = index
        self._config = LuceneConfig() if config is None else config
        # Lucene's dynamic pruning is document-level WAND without the
        # hardware block-max score estimation.
        self._executor = BossAccelerator(
            index,
            BossConfig(k=config.k, et_block=False, et_wand=True),
        )

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def config(self) -> LuceneConfig:
        return self._config

    def search(self, query: Union[str, QueryNode],
               k: int = None) -> SearchResult:
        """Execute a query on the software path.

        The functional result and the work counters come from the shared
        execution machinery (WAND unions, leapfrog intersections); the
        interconnect accounting is rewritten for a host-side engine: all
        loaded bytes cross the link, while the in-host top-k produces no
        result traffic.
        """
        k = self._config.k if k is None else k
        result = self._executor.search(query, k=k)
        # Host-side engine: result stays in host DRAM; loads cross the
        # shared link instead.
        result.interconnect_bytes = result.traffic.read_bytes
        return result
