"""IIU accelerator model (Heo et al., ASPLOS 2020 — the paper's [34]).

IIU is the state-of-the-art inverted-index accelerator BOSS compares
against. The paper attributes IIU's weakness on SCM to four design
properties (Sections II-D and III), each of which this model reproduces
with its own traffic signature:

1. **binary-search intersection**: membership tests probe the larger
   list by binary search, generating dependent *random* accesses — fast
   on DRAM, slow on SCM (this is why IIU gains more than BOSS from DRAM
   on Q2/Q6 in Figure 16);
2. **no union pruning**: union queries fetch and score *every* posting
   of every term ("its union algorithm ends up retrieving much more
   data from the memory than required");
3. **intermediate spills**: multi-term intersections run as iterative
   SvS passes whose intermediate lists are stored to memory and reloaded
   (``ST Inter`` / ``LD Inter`` in Figure 15) — writes hit SCM's worst
   bandwidth class;
4. **host-side top-k**: the device emits the full scored, unsorted
   result list (``ST Result``), which the host must pull across the
   shared interconnect. Following the paper's methodology, the *time* of
   host top-k selection is ignored, but its traffic is charged.

Functionally IIU returns the same top-k as BOSS (the host sorts the full
list); tests assert this equivalence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.core.query import (
    AndNode,
    OrNode,
    QueryNode,
    TermNode,
    flatten,
    parse_query,
    push_intersections_down,
)
from repro.core.result import ScoredDocument, SearchResult
from repro.core.topk import DEFAULT_K, TopKQueue
from repro.errors import QueryError
from repro.index.index import CompressedPostingList, InvertedIndex
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter
from repro.sim.metrics import WorkCounters

#: Bytes read per binary-search probe (one cache-line-sized touch of the
#: skip structure / block head).
PROBE_BYTES = 64

#: Bytes per intermediate entry (docID + tf).
INTERMEDIATE_ENTRY_BYTES = 8

#: Bytes per result entry (docID + score).
RESULT_ENTRY_BYTES = 8

#: Bytes of scoring metadata per evaluated document.
SCORE_METADATA_BYTES = 8


@dataclass(frozen=True)
class IIUConfig:
    """IIU device configuration (matched to BOSS where the paper does)."""

    num_cores: int = 8
    k: int = DEFAULT_K


class IIUAccelerator:
    """Functional + traffic model of the IIU design."""

    def __init__(self, index: InvertedIndex,
                 config: Optional[IIUConfig] = None) -> None:
        self._index = index
        self._config = IIUConfig() if config is None else config

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def config(self) -> IIUConfig:
        return self._config

    def search(self, query: Union[str, QueryNode],
               k: int = None) -> SearchResult:
        """Execute a query; same top-k as BOSS, IIU-shaped traffic."""
        node = parse_query(query) if isinstance(query, str) else flatten(query)
        missing = [t for t in node.terms() if t not in self._index]
        if missing:
            raise QueryError(f"terms not in index: {missing}")
        k = self._config.k if k is None else k

        work = WorkCounters()
        traffic = TrafficCounter()

        if isinstance(node, TermNode):
            matches = self._load_full_list(node.term, work, traffic)
        elif isinstance(node, OrNode) and all(
            isinstance(c, TermNode) for c in node.children
        ):
            matches = self._exhaustive_union(
                [c.term for c in node.children], work, traffic
            )
        elif isinstance(node, AndNode) and all(
            isinstance(c, TermNode) for c in node.children
        ):
            matches = self._iterative_intersection(
                [c.term for c in node.children], work, traffic
            )
        else:
            matches = self._mixed(node, work, traffic)

        # Score every matching document and emit the full unsorted list.
        scored = self._score_all(matches, work, traffic)
        result_bytes = RESULT_ENTRY_BYTES * len(scored)
        traffic.record(
            AccessClass.ST_RESULT,
            AccessPattern.SEQUENTIAL,
            result_bytes,
            accesses=1 if scored else 0,
        )

        # Host-side top-k: pulls the full list across the interconnect.
        topk = TopKQueue(k)
        for doc, score in scored:
            topk.offer(doc, score)
        hits = [ScoredDocument(d, s) for d, s in topk.results()]

        return SearchResult(
            query=node,
            hits=hits,
            traffic=traffic,
            work=work,
            interconnect_bytes=result_bytes,
        )

    # ------------------------------------------------------------------
    # Execution primitives
    # ------------------------------------------------------------------

    def _load_full_list(self, term: str, work: WorkCounters,
                        traffic: TrafficCounter) -> List[Tuple[int, Dict[str, int]]]:
        """Sequentially fetch and decode an entire posting list."""
        posting_list = self._index.posting_list(term)
        self._charge_full_list(posting_list, work, traffic)
        return [
            (p.doc_id, {term: p.tf}) for p in posting_list.decode_all()
        ]

    def _exhaustive_union(self, terms: List[str], work: WorkCounters,
                          traffic: TrafficCounter) -> List[Tuple[int, Dict[str, int]]]:
        """Multi-way merge over fully fetched lists — no pruning."""
        merged: Dict[int, Dict[str, int]] = {}
        total_postings = 0
        for term in terms:
            postings = self._load_full_list(term, work, traffic)
            total_postings += len(postings)
            for doc, tfs in postings:
                merged.setdefault(doc, {}).update(tfs)
        work.merge_ops += total_postings  # one merger step per posting
        work.docs_matched += len(merged)
        return sorted(merged.items())

    def _iterative_intersection(self, terms: List[str], work: WorkCounters,
                                traffic: TrafficCounter) -> List[Tuple[int, Dict[str, int]]]:
        """SvS passes with binary-search membership and spills.

        The smallest list is fully fetched as the driver; each pass
        probes the next-larger list by binary search over its blocks.
        Between passes the intermediate result is spilled to memory and
        reloaded (the paper's "unnecessary memory accesses to load/store
        intermediate data").
        """
        ordered = sorted(terms,
                         key=lambda t: self._index.posting_list(t).document_frequency)
        candidates = self._load_full_list(ordered[0], work, traffic)
        for pass_number, term in enumerate(ordered[1:]):
            if pass_number > 0:
                # Spill + reload the intermediate list around each pass.
                spill = INTERMEDIATE_ENTRY_BYTES * len(candidates)
                traffic.record(AccessClass.ST_INTER,
                               AccessPattern.SEQUENTIAL, spill,
                               accesses=max(1, len(candidates)))
                traffic.record(AccessClass.LD_INTER,
                               AccessPattern.SEQUENTIAL, spill,
                               accesses=max(1, len(candidates)))
                work.intermediate_passes += 1
            candidates = self._probe_membership(candidates, term, work,
                                                traffic)
            if not candidates:
                break
        work.docs_matched += len(candidates)
        return candidates

    def _probe_membership(self, candidates: List[Tuple[int, Dict[str, int]]],
                          term: str, work: WorkCounters,
                          traffic: TrafficCounter,
                          keep_misses: bool = False) -> List[Tuple[int, Dict[str, int]]]:
        """Binary-search each candidate against ``term``'s posting list.

        With ``keep_misses`` the candidate set is annotated rather than
        filtered — used to complete tf maps for scoring when a document
        matched through a different branch of the query.
        """
        posting_list = self._index.posting_list(term)
        blocks = posting_list.blocks
        num_blocks = len(blocks)
        probes_per_lookup = max(1, math.ceil(math.log2(num_blocks + 1)))
        decoded_blocks: Dict[int, Dict[int, int]] = {}

        survivors: List[Tuple[int, Dict[str, int]]] = []
        lasts = [b.metadata.last_doc_id for b in blocks]
        import bisect

        for doc, tfs in candidates:
            # Binary search over the block directory: the upper tree
            # levels stay cache-resident, so one uncached random touch is
            # charged per lookup; the full probe count still feeds the
            # pipeline-stall term of the timing model.
            work.probe_reads += probes_per_lookup
            traffic.record(
                AccessClass.LD_LIST,
                AccessPattern.RANDOM,
                PROBE_BYTES,
                accesses=1,
            )
            index = bisect.bisect_left(lasts, doc)
            if index >= num_blocks:
                if keep_misses:
                    survivors.append((doc, tfs))
                continue
            meta = blocks[index].metadata
            if doc < meta.first_doc_id:
                if keep_misses:
                    survivors.append((doc, tfs))
                continue
            # Fetch the target block (randomly addressed), memoized.
            block_map = decoded_blocks.get(index)
            if block_map is None:
                postings = posting_list.decode_block(index)
                block_map = {p.doc_id: p.tf for p in postings}
                decoded_blocks[index] = block_map
                work.blocks_fetched += 1
                work.postings_decoded += len(postings)
                traffic.record(
                    AccessClass.LD_LIST,
                    AccessPattern.RANDOM,
                    blocks[index].compressed_bytes,
                )
            tf = block_map.get(doc)
            if tf is not None:
                tfs[term] = tf
                survivors.append((doc, tfs))
            elif keep_misses:
                survivors.append((doc, tfs))
        return survivors

    def _mixed(self, node: QueryNode, work: WorkCounters,
               traffic: TrafficCounter) -> List[Tuple[int, Dict[str, int]]]:
        """Mixed query: evaluate OR-groups exhaustively, spill, intersect.

        For ``A AND (B OR C OR D)`` IIU materializes the union ``B∪C∪D``
        in memory (a large spill), then intersects it with ``A`` via
        binary search over the spilled array.
        """
        node = flatten(node)
        if isinstance(node, TermNode):
            return self._load_full_list(node.term, work, traffic)
        if isinstance(node, OrNode) and all(
            isinstance(c, TermNode) for c in node.children
        ):
            return self._exhaustive_union(
                [c.term for c in node.children], work, traffic
            )
        if not isinstance(node, AndNode):
            # OR over complex children: distribute and recurse per branch.
            # Branch results are merged, then tf maps are completed by
            # probing the untouched lists so scoring stays exact.
            dnf = push_intersections_down(node)
            branches = (
                list(dnf.children) if isinstance(dnf, OrNode) else [dnf]
            )
            merged: Dict[int, Dict[str, int]] = {}
            for branch in branches:
                for doc, tfs in self._mixed(branch, work, traffic):
                    merged.setdefault(doc, {}).update(tfs)
            matches = sorted(merged.items())
            # Complete the tf maps: BM25 scores every query term present
            # in a matching document, so probe the lists a branch did
            # not touch (annotate-only membership tests).
            for term in sorted(set(node.terms())):
                pending = [
                    (doc, tfs) for doc, tfs in matches if term not in tfs
                ]
                if pending:
                    self._probe_membership(pending, term, work, traffic,
                                           keep_misses=True)
            work.docs_matched += len(matches)
            return matches

        # AND node: materialize every child (term or OR-group), smallest
        # first, intersecting by binary search with spills between passes.
        materialized: List[List[Tuple[int, Dict[str, int]]]] = []
        plain_terms: List[str] = []
        for child in node.children:
            if isinstance(child, TermNode):
                plain_terms.append(child.term)
            else:
                group = self._exhaustive_union(
                    [t for t in child.terms()], work, traffic
                )
                spill = INTERMEDIATE_ENTRY_BYTES * len(group)
                traffic.record(AccessClass.ST_INTER,
                               AccessPattern.SEQUENTIAL, spill,
                               accesses=max(1, len(group)))
                work.intermediate_passes += 1
                materialized.append(group)

        if plain_terms:
            candidates = self._iterative_intersection(plain_terms, work,
                                                      traffic)
        else:
            candidates = materialized.pop(0)

        for group in materialized:
            spill = INTERMEDIATE_ENTRY_BYTES * len(group)
            traffic.record(AccessClass.LD_INTER,
                           AccessPattern.SEQUENTIAL, spill,
                           accesses=max(1, len(group)))
            # SvS direction: probe the larger side with the smaller one.
            if len(candidates) <= len(group):
                drivers, targets = candidates, group
            else:
                drivers, targets = group, candidates
            target_map = dict(targets)
            probes = max(1, math.ceil(math.log2(len(targets) + 1)))
            survivors = []
            for doc, tfs in drivers:
                # Binary search over the spilled array: ~2 uncached line
                # touches per lookup (leaf + one mid level); the probe
                # count feeds the stall term.
                work.probe_reads += probes
                traffic.record(AccessClass.LD_INTER,
                               AccessPattern.RANDOM,
                               2 * PROBE_BYTES, accesses=2)
                hit = target_map.get(doc)
                if hit is not None:
                    merged_tfs = dict(tfs)
                    merged_tfs.update(hit)
                    survivors.append((doc, merged_tfs))
            candidates = survivors
        work.docs_matched += len(candidates)
        return candidates

    # ------------------------------------------------------------------
    # Shared accounting
    # ------------------------------------------------------------------

    def _charge_full_list(self, posting_list: CompressedPostingList,
                          work: WorkCounters,
                          traffic: TrafficCounter) -> None:
        """Sequential fetch of every block plus the metadata array."""
        work.blocks_fetched += posting_list.num_blocks
        work.metadata_inspected += posting_list.num_blocks
        work.postings_decoded += posting_list.document_frequency
        traffic.record(
            AccessClass.LD_LIST,
            AccessPattern.SEQUENTIAL,
            posting_list.compressed_bytes + posting_list.metadata_bytes,
            accesses=posting_list.num_blocks,
        )

    def _score_all(self, matches: List[Tuple[int, Dict[str, int]]],
                   work: WorkCounters,
                   traffic: TrafficCounter) -> List[Tuple[int, float]]:
        """Score every matching document (no ET anywhere in IIU)."""
        scorer = self._index.scorer
        scored: List[Tuple[int, float]] = []
        for doc, tfs in matches:
            score = 0.0
            for term, tf in tfs.items():
                score += scorer.term_score(
                    self._index.posting_list(term).idf, tf, doc
                )
            scored.append((doc, score))
        work.docs_evaluated += len(scored)
        # Per-document scoring metadata is scattered across the huge
        # per-doc array (4 B entries, SCM 256 B access granules), so
        # these loads run at random-access bandwidth — the LD Score
        # wall that dominates IIU's union traffic in Figure 15.
        traffic.record(
            AccessClass.LD_SCORE,
            AccessPattern.RANDOM,
            SCORE_METADATA_BYTES * len(scored),
            accesses=len(scored),
        )
        return scored
