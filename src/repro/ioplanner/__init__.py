"""Global I/O planning over the serving layer.

The per-query engines fetch posting-list blocks on demand, one cursor
at a time — each query pays the SCM's random-read rate for every skip
landing and re-fetches hot blocks its neighbors just pulled. The I/O
planner sits between the admission queue and the search target and
plans *across* queries instead: admitted requests are batched over a
short planning window, their block demands are deduplicated and
coalesced into large sequential SCM runs, and the hot working set is
staged in a shared DRAM-over-SCM tier with popularity-driven prefetch.
Per-tenant byte quotas keep one aggressive workload from starving the
rest of the window's bandwidth.

Modules:

* :mod:`repro.ioplanner.plan` — window planning: dedup, run
  coalescing with gap-fill, per-query service-time attribution, and
  the traffic-conservation invariant;
* :mod:`repro.ioplanner.tier` — the segmented (hot/warm/cold) DRAM
  tier plus Zipf popularity tracking and prefetch candidates;
* :mod:`repro.ioplanner.fairness` — per-tenant byte quotas enforced
  with deficit round robin;
* :mod:`repro.ioplanner.server` — :class:`PlannedQueryServer`, the
  windowed serving loop that ties the pieces together.

See ``docs/io_planner.md`` for the architecture and the modeling
assumptions.
"""

from repro.ioplanner.fairness import DeficitRoundRobin, TenantSpec
from repro.ioplanner.plan import FetchPlan, FetchRun, plan_window
from repro.ioplanner.server import (
    PlannedQueryServer,
    PlannedServingResult,
    PlannerConfig,
    PlannerRunReport,
)
from repro.ioplanner.tier import DramTier

__all__ = [
    "DeficitRoundRobin",
    "DramTier",
    "FetchPlan",
    "FetchRun",
    "PlannedQueryServer",
    "PlannedServingResult",
    "PlannerConfig",
    "PlannerRunReport",
    "TenantSpec",
    "plan_window",
]
