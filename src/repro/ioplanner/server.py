"""The planned serving loop: windowed admission, planning, execution.

:class:`PlannedQueryServer` replaces :class:`repro.serving.server.
QueryServer`'s one-query-at-a-time dispatch with short *planning
windows*: requests arriving inside a window are queued per tenant,
admitted at the window close under deficit-round-robin byte quotas
(:mod:`repro.ioplanner.fairness`), executed for real against the
target, and their block demands planned together
(:mod:`repro.ioplanner.plan`) over the shared DRAM tier
(:mod:`repro.ioplanner.tier`).

**Execution vs. timeline** follows the serving layer's split exactly:
queries execute bit-identically to the unplanned server (the planner
only watches their fetch logs; it never alters what the engines
fetch or rank), while the *serving timeline* charges each query the
modeled time of the path the plan routed its blocks through. Turning
the planner off (``PlannerConfig(enabled=False)``) keeps the same
windowed loop but charges every block at its engine-recorded pattern —
the controlled baseline for every planner-on comparison.

Prefetch traffic is issued into bandwidth the window leaves idle, so
it is reported (``planner.prefetch_bytes``) but not charged to any
query's latency; gap-fill bytes ride inside their run and are charged
to the run's members pro-rata.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ioplanner.fairness import DeficitRoundRobin, TenantSpec
from repro.ioplanner.plan import BlockDemand, FetchPlan, plan_window
from repro.ioplanner.tier import DramTier
from repro.scm.device import DDR4_4CH, OPTANE_NODE_4CH, MemoryDeviceModel
from repro.serving.loadgen import Request
from repro.serving.server import (
    SHED_QUEUE_FULL,
    RequestOutcome,
    ServingReport,
    build_serving_report,
)

#: Effectively-unlimited per-window quota for unconfigured tenants.
UNLIMITED_QUOTA = 1 << 62


@dataclass(frozen=True)
class PlannerConfig:
    """How the planner windows, stages, and meters block traffic."""

    #: Planning-window length on the serving timeline.
    window_seconds: float = 0.002
    #: Shared DRAM tier capacity (0 disables the tier).
    dram_bytes: int = 64 << 20
    #: False = planner-off baseline: same windowed loop, no dedup /
    #: tier / coalescing; blocks charged at engine-recorded patterns.
    enabled: bool = True
    #: Largest intra-run gap (in blocks) gap-fill may bridge.
    max_gap_blocks: int = 2
    #: Hot terms considered for prefetch each window (0 disables).
    prefetch_terms: int = 4
    #: Blocks prefetched past each hot term's deepest block seen.
    prefetch_depth: int = 2
    #: Per-window prefetch byte budget.
    prefetch_budget_bytes: int = 1 << 20
    #: Logical workers executing admitted queries.
    workers: int = 4
    #: Per-tenant backlog bound (full tenant queue sheds the newcomer).
    queue_capacity: int = 64
    #: Per-query SLO deadline from arrival (None = no SLO accounting).
    deadline_seconds: Optional[float] = None
    #: Top-k passed to the target (None = the target's default).
    k: Optional[int] = None
    #: Tenant quotas; empty = every tenant in the workload, unlimited.
    tenants: Tuple[TenantSpec, ...] = ()
    scm: MemoryDeviceModel = OPTANE_NODE_4CH
    dram: MemoryDeviceModel = DDR4_4CH

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ConfigurationError("planning window must be positive")
        if self.dram_bytes < 0:
            raise ConfigurationError("tier capacity must be >= 0")
        if self.workers < 1:
            raise ConfigurationError("need at least one worker")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if min(self.max_gap_blocks, self.prefetch_terms,
               self.prefetch_depth, self.prefetch_budget_bytes) < 0:
            raise ConfigurationError(
                "gap/prefetch parameters must be >= 0"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError("deadline must be positive (or None)")


@dataclass
class PlannerRunReport:
    """Planner-side accounting aggregated over all windows of a run."""

    enabled: bool = True
    windows: int = 0
    demand_blocks: int = 0
    demand_bytes: int = 0
    dram_hit_bytes: int = 0
    dedup_bytes: int = 0
    scm_seq_bytes: int = 0
    scm_rand_bytes: int = 0
    gap_bytes: int = 0
    prefetch_blocks: int = 0
    prefetch_bytes: int = 0
    runs: int = 0
    sequential_runs: int = 0
    tenant_bytes: Dict[str, int] = field(default_factory=dict)
    tenant_served: Dict[str, int] = field(default_factory=dict)
    tenant_shed: Dict[str, int] = field(default_factory=dict)

    @property
    def scm_bytes(self) -> int:
        return self.scm_seq_bytes + self.scm_rand_bytes

    @property
    def sequential_share(self) -> float:
        """Share of SCM miss bytes moved at the sequential rate."""
        total = self.scm_bytes
        return self.scm_seq_bytes / total if total else 0.0

    @property
    def staged_fraction(self) -> float:
        """Demand bytes served from DRAM (tier hits + window dedup)."""
        if not self.demand_bytes:
            return 0.0
        return (self.dram_hit_bytes + self.dedup_bytes) / self.demand_bytes

    def absorb(self, plan: FetchPlan) -> None:
        self.windows += 1
        self.demand_blocks += plan.demand_blocks
        self.demand_bytes += plan.demand_bytes
        self.dram_hit_bytes += plan.dram_hit_bytes
        self.dedup_bytes += plan.dedup_bytes
        self.scm_seq_bytes += plan.scm_seq_bytes
        self.scm_rand_bytes += plan.scm_rand_bytes
        self.gap_bytes += plan.gap_bytes
        self.runs += len(plan.runs)
        self.sequential_runs += plan.num_sequential_runs
        for tenant, nbytes in plan.tenant_bytes.items():
            self.tenant_bytes[tenant] = (
                self.tenant_bytes.get(tenant, 0) + nbytes
            )

    def check_conservation(self) -> None:
        routed = (self.dram_hit_bytes + self.dedup_bytes
                  + self.scm_seq_bytes + self.scm_rand_bytes)
        if routed != self.demand_bytes:
            raise AssertionError(
                f"planner run lost bytes: routed {routed} != "
                f"demanded {self.demand_bytes}"
            )

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "windows": self.windows,
            "demand_blocks": self.demand_blocks,
            "demand_bytes": self.demand_bytes,
            "dram_hit_bytes": self.dram_hit_bytes,
            "dedup_bytes": self.dedup_bytes,
            "scm_seq_bytes": self.scm_seq_bytes,
            "scm_rand_bytes": self.scm_rand_bytes,
            "sequential_share": self.sequential_share,
            "staged_fraction": self.staged_fraction,
            "gap_bytes": self.gap_bytes,
            "prefetch_blocks": self.prefetch_blocks,
            "prefetch_bytes": self.prefetch_bytes,
            "runs": self.runs,
            "sequential_runs": self.sequential_runs,
            "tenant_bytes": dict(self.tenant_bytes),
            "tenant_served": dict(self.tenant_served),
            "tenant_shed": dict(self.tenant_shed),
        }


class PlannedServingResult:
    """Outcomes (arrival order) plus serving and planner reports."""

    __slots__ = ("outcomes", "report", "planner")

    def __init__(self, outcomes: List[RequestOutcome],
                 report: ServingReport,
                 planner: PlannerRunReport) -> None:
        self.outcomes = outcomes
        self.report = report
        self.planner = planner

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]

    def served_results(self) -> list:
        return [o.result for o in self.outcomes if o.served]


def _fetch_leaves(target) -> List:
    """Every engine whose ``fetch_log`` must be captured for ``target``.

    A cluster root fans queries out to its shard engines (and, under
    faults, their replicas); a bare engine or session-like object is
    its own single leaf. Fault wrappers delegate attribute *reads* to
    the wrapped engine but keep writes on themselves, so each leaf is
    unwrapped to the engine that actually appends fetch records.
    """
    engines = getattr(target, "engines", None)
    if engines is None:
        leaves = [target]
    else:
        leaves = list(engines)
        for group in getattr(target, "replicas", []):
            leaves.extend(group)
    unwrapped = []
    for leaf in leaves:
        inner = getattr(leaf, "engine", None)
        while inner is not None and inner is not leaf:
            leaf, inner = inner, getattr(inner, "engine", None)
        unwrapped.append(leaf)
    return unwrapped


class PlannedQueryServer:
    """Windowed, planned serving over any search target.

    ``target`` is anything with ``search(expression, k)`` — an engine
    or a cluster root. ``compute_time`` optionally adds per-query
    compute seconds ``(request, result) -> seconds`` on top of the
    planned fetch time (default: fetch time only). The timeline is
    fully virtual and deterministic; nothing sleeps.
    """

    def __init__(self, target, config: Optional[PlannerConfig] = None,
                 observer=None,
                 compute_time: Optional[Callable] = None) -> None:
        self._target = target
        self._config = PlannerConfig() if config is None else config
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )
        self._compute_time = compute_time

    @property
    def config(self) -> PlannerConfig:
        return self._config

    @property
    def target(self):
        return self._target

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------

    def serve(self, requests: Sequence[Request]) -> PlannedServingResult:
        requests = sorted(requests,
                          key=lambda r: (r.arrival_seconds, r.request_id))
        if not requests:
            raise ConfigurationError("serving workload is empty")
        cfg = self._config
        drr = self._build_scheduler(requests)
        tier = (
            DramTier(cfg.dram_bytes)
            if cfg.enabled and cfg.dram_bytes > 0 else None
        )
        run_report = PlannerRunReport(enabled=cfg.enabled)

        outcomes = {
            r.request_id: RequestOutcome(
                request_id=r.request_id, expression=r.expression,
                arrival_seconds=r.arrival_seconds,
            )
            for r in requests
        }
        queues: Dict[str, deque] = {name: deque() for name in drr.tenants}
        pending = deque(requests)
        worker_free = [0.0] * cfg.workers
        heapq.heapify(worker_free)
        depth_samples: List[int] = []
        max_depth = 0

        leaves = _fetch_leaves(self._target)
        saved_logs = [getattr(leaf, "fetch_log", None) for leaf in leaves]
        try:
            window = 0
            while pending or any(queues.values()):
                if pending and not any(queues.values()):
                    # Idle gap: jump to the window of the next arrival.
                    window = max(window, int(
                        pending[0].arrival_seconds / cfg.window_seconds
                    ))
                window += 1
                close = window * cfg.window_seconds
                while pending and pending[0].arrival_seconds < close:
                    self._enqueue(pending.popleft(), queues, outcomes,
                                  run_report)
                depth = sum(len(q) for q in queues.values())
                depth_samples.append(depth)
                max_depth = max(max_depth, depth)

                admitted = self._admit(drr, queues)
                if not admitted:
                    continue
                plan = self._run_window(admitted, outcomes, tier, close,
                                        worker_free, drr, run_report)
                run_report.absorb(plan)
                prefetched = self._prefetch(tier, run_report)
                depth_samples.append(
                    sum(len(q) for q in queues.values())
                )
                if self._observer is not None:
                    self._observer.on_plan_complete(
                        plan, prefetch_blocks=prefetched[0],
                        prefetch_bytes=prefetched[1],
                    )
        finally:
            for leaf, saved in zip(leaves, saved_logs):
                leaf.fetch_log = saved

        run_report.check_conservation()
        ordered = [outcomes[r.request_id] for r in requests]
        report = build_serving_report(
            ordered, depth_samples, max_depth,
            deadline_seconds=cfg.deadline_seconds,
        )
        if self._observer is not None:
            self._observer.on_serving_complete(report)
        return PlannedServingResult(ordered, report, run_report)

    # ------------------------------------------------------------------
    # Window steps
    # ------------------------------------------------------------------

    def _build_scheduler(self,
                         requests: Sequence[Request]) -> DeficitRoundRobin:
        cfg = self._config
        if cfg.tenants:
            return DeficitRoundRobin(cfg.tenants)
        seen = list(dict.fromkeys(
            getattr(r, "tenant", "default") for r in requests
        ))
        return DeficitRoundRobin(tuple(
            TenantSpec(name, UNLIMITED_QUOTA) for name in seen
        ))

    def _enqueue(self, request: Request, queues: Dict[str, deque],
                 outcomes: Dict[int, RequestOutcome],
                 run_report: PlannerRunReport) -> None:
        tenant = getattr(request, "tenant", "default")
        if tenant not in queues:
            known = ", ".join(sorted(queues))
            raise ConfigurationError(
                f"request {request.request_id} names unknown tenant "
                f"{tenant!r} (configured: {known})"
            )
        queue = queues[tenant]
        if len(queue) >= self._config.queue_capacity:
            # The tenant's backlog is full: its own newcomer is shed,
            # other tenants' queues are untouched (isolation).
            run_report.tenant_shed[tenant] = (
                run_report.tenant_shed.get(tenant, 0) + 1
            )
            outcome = outcomes[request.request_id]
            outcome.status = "shed"
            outcome.shed_reason = SHED_QUEUE_FULL
            if self._observer is not None:
                self._observer.on_request_shed(SHED_QUEUE_FULL)
            return
        queue.append(request)
        if self._observer is not None:
            self._observer.on_request_admitted(len(queue))

    def _admit(self, drr: DeficitRoundRobin,
               queues: Dict[str, deque]) -> List[Request]:
        """One DRR pass: rotate tenants, take one query per turn."""
        drr.begin_window()
        admitted: List[Request] = []
        order = drr.service_order()
        progress = True
        while progress:
            progress = False
            for tenant in order:
                queue = queues[tenant]
                if queue and drr.can_admit(tenant):
                    admitted.append(queue.popleft())
                    progress = True
        return admitted

    def _run_window(self, admitted: Sequence[Request],
                    outcomes: Dict[int, RequestOutcome],
                    tier: Optional[DramTier], close: float,
                    worker_free: List[float], drr: DeficitRoundRobin,
                    run_report: PlannerRunReport) -> FetchPlan:
        cfg = self._config
        demands: List[BlockDemand] = []
        compute_seconds: Dict[int, float] = {}
        for request in admitted:
            tenant = getattr(request, "tenant", "default")
            result, records = self._execute(request)
            outcome = outcomes[request.request_id]
            outcome.result = result
            outcome.degraded = bool(getattr(result, "degraded", False))
            for term, block, size, pattern in records:
                demands.append(BlockDemand(
                    request_id=request.request_id, tenant=tenant,
                    term=term, block_index=block, size=size,
                    pattern=pattern,
                ))
            if self._compute_time is not None:
                compute_seconds[request.request_id] = float(
                    self._compute_time(request, result)
                )
            run_report.tenant_served[tenant] = (
                run_report.tenant_served.get(tenant, 0) + 1
            )

        plan = plan_window(
            demands, tier=tier, scm=cfg.scm, dram=cfg.dram,
            max_gap_blocks=cfg.max_gap_blocks, enabled=cfg.enabled,
        )
        if tier is not None:
            for term, block, size in plan.fetched:
                tier.admit(term, block, size)

        for request in admitted:
            tenant = getattr(request, "tenant", "default")
            drr.charge(tenant,
                       plan.per_request_bytes.get(request.request_id, 0))
            seconds = (
                plan.per_request_seconds.get(request.request_id, 0.0)
                + compute_seconds.get(request.request_id, 0.0)
            )
            start = max(close, heapq.heappop(worker_free))
            completion = start + seconds
            heapq.heappush(worker_free, completion)
            outcome = outcomes[request.request_id]
            outcome.start_seconds = start
            outcome.completion_seconds = completion
            if cfg.deadline_seconds is not None:
                outcome.slo_attained = (
                    outcome.latency_seconds <= cfg.deadline_seconds
                )
            if self._observer is not None:
                self._observer.on_request_served(outcome)
        return plan

    def _prefetch(self, tier: Optional[DramTier],
                  run_report: PlannerRunReport) -> Tuple[int, int]:
        cfg = self._config
        if tier is None:
            return (0, 0)
        tier.end_window()
        if cfg.prefetch_terms <= 0 or cfg.prefetch_depth <= 0:
            return (0, 0)
        budget = cfg.prefetch_budget_bytes
        blocks = nbytes = 0
        for cand in tier.prefetch_candidates(cfg.prefetch_terms,
                                             cfg.prefetch_depth):
            if cand.size > budget:
                break
            budget -= cand.size
            tier.admit(cand.term, cand.block_index, cand.size,
                       segment="warm")
            blocks += 1
            nbytes += cand.size
        run_report.prefetch_blocks += blocks
        run_report.prefetch_bytes += nbytes
        return (blocks, nbytes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, request: Request):
        """Run one request for real; return (result, fetch records)."""
        leaves = _fetch_leaves(self._target)
        for leaf in leaves:
            leaf.fetch_log = []
        if getattr(request, "update", None) is not None:
            result = self._target.apply_update(request)
        elif self._config.k is None:
            result = self._target.search(request.expression)
        else:
            result = self._target.search(request.expression,
                                         k=self._config.k)
        records: List[tuple] = []
        for leaf in leaves:
            records.extend(leaf.fetch_log)
            leaf.fetch_log = []
        return result, records
