"""Shared DRAM-over-SCM tier with segmented promotion and prefetch.

Unlike the per-study :class:`repro.cache.LRUBlockCache` (a flat LRU
replayed offline), this tier is the planner's *online* staging area,
shared by every tenant. It is a segmented LRU: blocks enter the cold
segment on their first demand fetch, are promoted cold -> warm -> hot
on re-reference, and are evicted cold-first — one burst of one-shot
blocks cannot flush the hot working set (the scan-resistance argument
behind SLRU / bcache-style tiers).

The tier also tracks per-term popularity as an exponentially decayed
byte count per planning window. The planner uses the top terms as
prefetch candidates: posting lists are Zipf-skewed, so the next blocks
of the currently-hot terms are the best guess for the next window's
demand.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Segment names, eviction order first.
SEGMENTS = ("cold", "warm", "hot")


@dataclass(frozen=True)
class PrefetchCandidate:
    """One block the popularity model suggests staging ahead of demand."""

    term: str
    block_index: int
    #: Estimated payload bytes (mean of the term's observed blocks).
    size: int


class DramTier:
    """Byte-capacity segmented LRU over ``(term, block)`` keys.

    ``hot_fraction``/``warm_fraction`` bound the privileged segments;
    the remainder is the cold probation segment. Capacity pressure
    first demotes over-full hot/warm tails downward, then evicts the
    cold LRU — so the demand path can only displace proven-hot blocks
    after the entire probation segment is gone.
    """

    def __init__(self, capacity_bytes: int,
                 hot_fraction: float = 0.5,
                 warm_fraction: float = 0.3,
                 popularity_decay: float = 0.5) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("tier capacity must be positive")
        if not (0.0 <= hot_fraction and 0.0 <= warm_fraction
                and hot_fraction + warm_fraction <= 1.0):
            raise ConfigurationError(
                "hot/warm fractions must be non-negative and sum to <= 1"
            )
        if not 0.0 <= popularity_decay < 1.0:
            raise ConfigurationError("popularity decay must be in [0, 1)")
        self.capacity_bytes = capacity_bytes
        self._limits = {
            "hot": int(hot_fraction * capacity_bytes),
            "warm": int(warm_fraction * capacity_bytes),
        }
        self._segments: Dict[str, "OrderedDict[Tuple[str, int], int]"] = {
            name: OrderedDict() for name in SEGMENTS
        }
        self._used = 0
        self.hits = 0
        self.misses = 0
        self._decay = popularity_decay
        #: term -> decayed popularity (bytes).
        self._popularity: Dict[str, float] = {}
        #: term -> bytes demanded in the current window.
        self._window_bytes: Dict[str, int] = {}
        #: term -> (max block index seen, total bytes, blocks seen).
        self._term_shape: Dict[str, Tuple[int, int, int]] = {}

    # ------------------------------------------------------------------
    # Occupancy views
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_blocks(self) -> int:
        return sum(len(seg) for seg in self._segments.values())

    def segment_bytes(self, name: str) -> int:
        return sum(self._segments[name].values())

    def segment_of(self, term: str, block_index: int) -> Optional[str]:
        key = (term, block_index)
        for name in SEGMENTS:
            if key in self._segments[name]:
                return name
        return None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def lookup(self, term: str, block_index: int, size: int) -> bool:
        """Probe the tier for one demanded block; promote on a hit."""
        if size < 0:
            raise ConfigurationError("negative block size")
        self._note_demand(term, block_index, size)
        key = (term, block_index)
        for position, name in enumerate(SEGMENTS):
            segment = self._segments[name]
            if key not in segment:
                continue
            stored = segment.pop(key)
            self._used -= stored
            promoted = SEGMENTS[min(position + 1, len(SEGMENTS) - 1)]
            self.hits += 1
            self._place(key, size, promoted)
            return True
        self.misses += 1
        return False

    def admit(self, term: str, block_index: int, size: int,
              segment: str = "cold") -> None:
        """Insert a block fetched from SCM (demand: cold; prefetch:
        warm, so speculation cannot evict the proven-hot set)."""
        if segment not in SEGMENTS:
            raise ConfigurationError(f"unknown tier segment {segment!r}")
        if size < 0:
            raise ConfigurationError("negative block size")
        key = (term, block_index)
        for name in SEGMENTS:
            if key in self._segments[name]:
                stored = self._segments[name].pop(key)
                self._used -= stored
                segment = name  # refresh in place, keep its standing
                break
        self._place(key, size, segment)

    def contains(self, term: str, block_index: int) -> bool:
        return self.segment_of(term, block_index) is not None

    # ------------------------------------------------------------------
    # Popularity / prefetch
    # ------------------------------------------------------------------

    def end_window(self) -> None:
        """Fold the window's demand into the decayed popularity model."""
        for term, score in list(self._popularity.items()):
            decayed = score * self._decay
            if decayed < 1.0 and term not in self._window_bytes:
                del self._popularity[term]
            else:
                self._popularity[term] = decayed
        for term, nbytes in self._window_bytes.items():
            self._popularity[term] = (
                self._popularity.get(term, 0.0) + nbytes
            )
        self._window_bytes.clear()

    def hot_terms(self, count: int) -> List[str]:
        """The ``count`` most popular terms, by decayed demand bytes."""
        ranked = sorted(self._popularity.items(),
                        key=lambda item: (-item[1], item[0]))
        return [term for term, _score in ranked[:count]]

    def prefetch_candidates(self, terms_count: int,
                            depth: int) -> List[PrefetchCandidate]:
        """Next blocks of the hot terms, past the deepest block seen.

        The planner only ever observes fetched blocks, so list lengths
        are unknown; candidates may overshoot a short list's end and
        the overshoot is honest modeled waste, reported as prefetch
        traffic. Sizes are the term's observed mean block payload.
        """
        out: List[PrefetchCandidate] = []
        for term in self.hot_terms(terms_count):
            shape = self._term_shape.get(term)
            if shape is None:
                continue
            max_block, total_bytes, blocks_seen = shape
            mean_size = max(1, total_bytes // max(1, blocks_seen))
            for offset in range(1, depth + 1):
                block = max_block + offset
                if not self.contains(term, block):
                    out.append(PrefetchCandidate(term, block, mean_size))
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _note_demand(self, term: str, block_index: int, size: int) -> None:
        self._window_bytes[term] = (
            self._window_bytes.get(term, 0) + size
        )
        max_block, total, seen = self._term_shape.get(term, (-1, 0, 0))
        self._term_shape[term] = (
            max(max_block, block_index), total + size, seen + 1
        )

    def _place(self, key: Tuple[str, int], size: int,
               segment: str) -> None:
        if size > self.capacity_bytes:
            return  # uncacheable oversized block
        self._segments[segment][key] = size
        self._used += size
        self._rebalance()

    def _rebalance(self) -> None:
        # Over-full privileged segments demote their LRU tail downward.
        for upper, lower in (("hot", "warm"), ("warm", "cold")):
            segment = self._segments[upper]
            while segment and self.segment_bytes(upper) > self._limits[upper]:
                key, size = segment.popitem(last=False)
                self._segments[lower][key] = size
        # Capacity pressure evicts cold-first.
        while self._used > self.capacity_bytes:
            for name in SEGMENTS:
                segment = self._segments[name]
                if segment:
                    _key, size = segment.popitem(last=False)
                    self._used -= size
                    break
