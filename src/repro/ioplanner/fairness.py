"""Per-tenant bandwidth quotas via deficit round robin.

The planner's admission queue is shared: one tenant replaying a hot
benchmark at 10x its quota must not starve a compliant tenant's
interactive queries. Classic deficit round robin (Shreedhar &
Varghese) fits the windowed planner directly: each planning window
credits every tenant's deficit counter with a byte quantum
proportional to its quota, and the admission pass serves tenants in
rotating order while their counter is positive.

Charging is *post-paid*: the demand bytes of a query are only known
after it executes (the fetch log), so admission checks ``deficit > 0``
and the actual bytes are debited afterwards — a query may overdraw its
window, and the tenant then sits out windows until the quanta repay
the debt. Credit is capped at a few windows' worth so an idle tenant
cannot bank an unbounded burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share of the planner's per-window byte budget."""

    name: str
    #: Demand bytes this tenant may fetch per planning window.
    quota_bytes_per_window: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.quota_bytes_per_window <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: quota must be positive"
            )


class DeficitRoundRobin:
    """Deficit-round-robin admission over a fixed tenant set."""

    def __init__(self, tenants: Sequence[TenantSpec],
                 credit_cap_windows: float = 4.0) -> None:
        if not tenants:
            raise ConfigurationError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError("tenant names must be unique")
        if credit_cap_windows < 1.0:
            raise ConfigurationError(
                "credit cap must be at least one window's quantum"
            )
        self._specs: Dict[str, TenantSpec] = {t.name: t for t in tenants}
        self._order = list(names)
        self._deficit: Dict[str, float] = {name: 0.0 for name in names}
        self._charged: Dict[str, int] = {name: 0 for name in names}
        self._cap_windows = credit_cap_windows
        self._rotation = 0

    @property
    def tenants(self) -> List[str]:
        return list(self._order)

    def spec(self, tenant: str) -> TenantSpec:
        try:
            return self._specs[tenant]
        except KeyError:
            known = ", ".join(self._order)
            raise ConfigurationError(
                f"unknown tenant {tenant!r} (known: {known})"
            ) from None

    def deficit(self, tenant: str) -> float:
        self.spec(tenant)
        return self._deficit[tenant]

    def charged_bytes(self, tenant: str) -> int:
        self.spec(tenant)
        return self._charged[tenant]

    def begin_window(self) -> None:
        """Credit every tenant's quantum; rotate the service order."""
        for name, spec in self._specs.items():
            quantum = spec.quota_bytes_per_window
            self._deficit[name] = min(
                self._deficit[name] + quantum,
                self._cap_windows * quantum,
            )
        self._rotation = (self._rotation + 1) % len(self._order)

    def service_order(self) -> List[str]:
        """Tenants in this window's rotated round-robin order."""
        offset = self._rotation
        return self._order[offset:] + self._order[:offset]

    def can_admit(self, tenant: str) -> bool:
        """True while the tenant's deficit counter is positive."""
        self.spec(tenant)
        return self._deficit[tenant] > 0.0

    def charge(self, tenant: str, nbytes: int) -> None:
        """Debit a served query's actual demand bytes (post-paid)."""
        if nbytes < 0:
            raise ConfigurationError("cannot charge negative bytes")
        self.spec(tenant)
        self._deficit[tenant] -= nbytes
        self._charged[tenant] += nbytes
