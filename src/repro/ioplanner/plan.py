"""Window planning: dedup, run coalescing, and time attribution.

One planning window collects the block demands of every query admitted
in it (their engine fetch logs) and rewrites them into a fetch plan:

1. **Dedup** — the first demand of a ``(term, block)`` key fetches it;
   every later demand in the window reads the staged copy at DRAM
   speed. Zipf-skewed logs make this the planner's cheapest win.
2. **Tier probe** — keys resident in the shared DRAM tier are hits and
   never touch SCM.
3. **Coalescing** — the remaining (miss) keys are grouped per term and
   sorted; consecutive block indices become one sequential SCM run.
   Two runs of the same term separated by a small gap are bridged when
   reading the gap sequentially is cheaper than paying the next run's
   random seek (**gap-fill**): the gap bytes are honest overhead,
   reported separately, never attributed to any query's demand.
4. **Attribution** — each demand is charged at the rate of the path
   that served it (DRAM hit / dedup copy / sequential run member /
   random singleton); a run's first block pays the random rate as its
   seek, matching :class:`repro.cache.CacheSimulator`'s convention.

The plan's byte accounting obeys a conservation identity checked by
:meth:`FetchPlan.check_conservation`:

    ``dram_hit + dedup + scm_seq + scm_rand == sum(demand bytes)``

i.e. the planner may *re-route* traffic between tiers and patterns but
can neither invent nor lose demanded bytes (gap-fill and prefetch
bytes are accounted on top, not inside).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.scm.device import DDR4_4CH, OPTANE_NODE_4CH, MemoryDeviceModel
from repro.scm.traffic import AccessPattern

#: How one demand was served.
SOURCE_DRAM = "dram"
SOURCE_DEDUP = "dedup"
SOURCE_SCM_SEQ = "scm_seq"
SOURCE_SCM_RAND = "scm_rand"


@dataclass(frozen=True)
class BlockDemand:
    """One block fetch demanded by one admitted query."""

    request_id: int
    tenant: str
    term: str
    block_index: int
    size: int
    #: The engine-observed pattern (used by the planner-off baseline).
    pattern: AccessPattern


@dataclass(frozen=True)
class FetchRun:
    """One coalesced SCM transfer of same-term blocks."""

    term: str
    blocks: Tuple[int, ...]
    nbytes: int
    #: Bytes read purely to bridge gaps inside the run.
    gap_bytes: int

    @property
    def length(self) -> int:
        return len(self.blocks)


@dataclass
class FetchPlan:
    """Accounting for one planning window."""

    planned: bool
    demand_blocks: int = 0
    demand_bytes: int = 0
    dram_hit_bytes: int = 0
    dedup_bytes: int = 0
    scm_seq_bytes: int = 0
    scm_rand_bytes: int = 0
    gap_bytes: int = 0
    runs: List[FetchRun] = field(default_factory=list)
    #: Unique keys actually fetched from SCM: (term, block, size).
    fetched: List[Tuple[str, int, int]] = field(default_factory=list)
    per_request_seconds: Dict[int, float] = field(default_factory=dict)
    per_request_bytes: Dict[int, int] = field(default_factory=dict)
    tenant_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def scm_bytes(self) -> int:
        return self.scm_seq_bytes + self.scm_rand_bytes

    @property
    def num_sequential_runs(self) -> int:
        return sum(1 for run in self.runs if run.length > 1)

    @property
    def sequential_share(self) -> float:
        """Share of SCM miss bytes moved at the sequential rate."""
        total = self.scm_bytes
        return self.scm_seq_bytes / total if total else 0.0

    def check_conservation(self) -> None:
        """Planned bytes must equal the queries' demanded bytes."""
        routed = (self.dram_hit_bytes + self.dedup_bytes
                  + self.scm_seq_bytes + self.scm_rand_bytes)
        if routed != self.demand_bytes:
            raise AssertionError(
                f"planner lost bytes: routed {routed} != demanded "
                f"{self.demand_bytes} (dram={self.dram_hit_bytes} "
                f"dedup={self.dedup_bytes} seq={self.scm_seq_bytes} "
                f"rand={self.scm_rand_bytes})"
            )
        attributed = sum(self.per_request_bytes.values())
        if attributed != self.demand_bytes:
            raise AssertionError(
                f"per-query bytes {attributed} != demanded "
                f"{self.demand_bytes}"
            )


def plan_window(demands: Sequence[BlockDemand],
                tier=None,
                scm: MemoryDeviceModel = OPTANE_NODE_4CH,
                dram: MemoryDeviceModel = DDR4_4CH,
                max_gap_blocks: int = 2,
                enabled: bool = True) -> FetchPlan:
    """Plan one window of block demands.

    With ``enabled`` false this is the planner-off baseline: every
    demand goes to SCM at its engine-recorded pattern, with no dedup,
    no tier, and no coalescing — the exact traffic the per-query
    engines would have issued, which is what makes on/off comparisons
    an apples-to-apples re-routing story.
    """
    if max_gap_blocks < 0:
        raise ConfigurationError("max gap must be >= 0")
    plan = FetchPlan(planned=enabled)
    for demand in demands:
        plan.demand_blocks += 1
        plan.demand_bytes += demand.size
        plan.per_request_bytes[demand.request_id] = (
            plan.per_request_bytes.get(demand.request_id, 0) + demand.size
        )
        plan.tenant_bytes[demand.tenant] = (
            plan.tenant_bytes.get(demand.tenant, 0) + demand.size
        )
    if not enabled:
        _plan_unrouted(plan, demands, scm)
        return plan

    # Classify demands in admission order: dedup, tier hit, or miss.
    sources: List[str] = []
    first_toucher: Dict[Tuple[str, int], int] = {}
    miss_keys: Dict[Tuple[str, int], int] = {}
    for position, demand in enumerate(demands):
        key = (demand.term, demand.block_index)
        if key in first_toucher:
            sources.append(SOURCE_DEDUP)
            plan.dedup_bytes += demand.size
            continue
        first_toucher[key] = position
        if tier is not None and tier.lookup(demand.term,
                                            demand.block_index,
                                            demand.size):
            sources.append(SOURCE_DRAM)
            plan.dram_hit_bytes += demand.size
            continue
        sources.append(SOURCE_SCM_SEQ)  # provisional; runs decide
        miss_keys[key] = demand.size

    # Coalesce misses into per-term runs with cost-aware gap-fill.
    key_pattern, key_gap_seconds = _coalesce(plan, miss_keys, scm,
                                             max_gap_blocks)

    # Attribute service time (and final pattern) per demand.
    for demand, source in zip(demands, sources):
        key = (demand.term, demand.block_index)
        if source in (SOURCE_DEDUP, SOURCE_DRAM):
            seconds = dram.read_time(demand.size, AccessPattern.RANDOM)
        else:
            pattern = key_pattern[key]
            if pattern is AccessPattern.SEQUENTIAL:
                plan.scm_seq_bytes += demand.size
            else:
                plan.scm_rand_bytes += demand.size
            seconds = (scm.read_time(demand.size, pattern)
                       + key_gap_seconds.get(key, 0.0))
        plan.per_request_seconds[demand.request_id] = (
            plan.per_request_seconds.get(demand.request_id, 0.0) + seconds
        )
    plan.check_conservation()
    return plan


def _plan_unrouted(plan: FetchPlan, demands: Sequence[BlockDemand],
                   scm: MemoryDeviceModel) -> None:
    """Planner-off: charge every demand at its engine pattern."""
    for demand in demands:
        if demand.pattern is AccessPattern.SEQUENTIAL:
            plan.scm_seq_bytes += demand.size
        else:
            plan.scm_rand_bytes += demand.size
        seconds = scm.read_time(demand.size, demand.pattern)
        plan.per_request_seconds[demand.request_id] = (
            plan.per_request_seconds.get(demand.request_id, 0.0) + seconds
        )
    plan.check_conservation()


def _coalesce(plan: FetchPlan, miss_keys: Dict[Tuple[str, int], int],
              scm: MemoryDeviceModel, max_gap_blocks: int,
              ) -> Tuple[Dict[Tuple[str, int], AccessPattern],
                         Dict[Tuple[str, int], float]]:
    """Group misses into runs; return per-key pattern and gap share.

    A run's first block is its seek and pays the random rate; the rest
    stream sequentially. Adjacent chunks of the same term merge across
    a gap of at most ``max_gap_blocks`` blocks when reading the gap
    sequentially costs less than the seek it eliminates.
    """
    by_term: Dict[str, List[int]] = {}
    for term, block in miss_keys:
        by_term.setdefault(term, []).append(block)

    key_pattern: Dict[Tuple[str, int], AccessPattern] = {}
    key_gap_seconds: Dict[Tuple[str, int], float] = {}
    for term in sorted(by_term):
        blocks = sorted(by_term[term])
        sizes = [miss_keys[(term, b)] for b in blocks]
        mean_size = max(1, sum(sizes) // len(sizes))
        # Maximal consecutive chunks first.
        chunks: List[List[int]] = [[blocks[0]]]
        for block in blocks[1:]:
            if block == chunks[-1][-1] + 1:
                chunks[-1].append(block)
            else:
                chunks.append([block])
        # Bridge a chunk into the current run when the gap's streaming
        # cost undercuts the seek it saves (the next chunk's first
        # block downgrading random -> sequential).
        runs: List[Tuple[List[int], int]] = []  # (blocks, gap_bytes)
        current, gap_bytes = chunks[0], 0
        for chunk in chunks[1:]:
            gap_blocks = chunk[0] - current[-1] - 1
            bridge_bytes = gap_blocks * mean_size
            seek_size = miss_keys[(term, chunk[0])]
            saved = (scm.read_time(seek_size, AccessPattern.RANDOM)
                     - scm.read_time(seek_size, AccessPattern.SEQUENTIAL))
            if (gap_blocks <= max_gap_blocks
                    and scm.read_time(bridge_bytes,
                                      AccessPattern.SEQUENTIAL) <= saved):
                gap_bytes += bridge_bytes
                current.extend(chunk)
            else:
                runs.append((current, gap_bytes))
                current, gap_bytes = chunk, 0
        runs.append((current, gap_bytes))

        for blocks_in_run, run_gap_bytes in runs:
            run_sizes = [miss_keys[(term, b)] for b in blocks_in_run]
            run_bytes = sum(run_sizes)
            plan.runs.append(FetchRun(
                term=term, blocks=tuple(blocks_in_run),
                nbytes=run_bytes, gap_bytes=run_gap_bytes,
            ))
            plan.gap_bytes += run_gap_bytes
            gap_seconds = scm.read_time(run_gap_bytes,
                                        AccessPattern.SEQUENTIAL)
            for position, block in enumerate(blocks_in_run):
                key = (term, block)
                key_pattern[key] = (
                    AccessPattern.RANDOM if position == 0
                    else AccessPattern.SEQUENTIAL
                )
                if run_gap_bytes:
                    # Pro-rata by payload share of the run.
                    key_gap_seconds[key] = (
                        gap_seconds * miss_keys[key] / run_bytes
                    )
                plan.fetched.append((term, block, miss_keys[key]))
    return key_pattern, key_gap_seconds
