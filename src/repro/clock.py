"""Injectable clock: wall time by default, virtual time under test.

Three subsystems sleep or measure elapsed time on purpose — fault
injection (latency spikes, :mod:`repro.faults`), resilient leaf
execution (retry backoff and per-attempt timeouts,
:mod:`repro.cluster.resilience`), and the serving queue
(:mod:`repro.serving`). Binding them to ``time.sleep`` directly makes
every fault-matrix test and CI smoke run burn real seconds, so each of
them takes a :class:`Clock` instead:

* :data:`WALL_CLOCK` (the default everywhere) reads
  ``time.perf_counter`` and really sleeps — production behavior is
  unchanged;
* :class:`VirtualClock` advances a simulated ``now`` instantly on
  ``sleep`` and records every requested duration, so a test can assert
  the *schedule* of sleeps (backoff ladders, spike lengths) without
  waiting through them. ``advance`` lets a stub engine model a slow
  attempt, which is how the timeout paths are exercised in zero wall
  time.

The two implementations share the duck type ``now() -> float`` /
``sleep(seconds) -> None``; nothing in the library type-checks beyond
that, so tests may substitute richer fakes freely.
"""

from __future__ import annotations

import time

from repro.errors import ConfigurationError


class Clock:
    """Duck-type contract: a monotonic ``now`` and a ``sleep``."""

    def now(self) -> float:
        """Monotonic seconds; only differences are meaningful."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        raise NotImplementedError


class WallClock(Clock):
    """The real thing: ``time.perf_counter`` + ``time.sleep``."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Simulated time: ``sleep`` advances instantly and is recorded.

    ``sleeps`` keeps every requested sleep duration in call order, so
    tests assert on the exact backoff/spike schedule. ``advance`` moves
    time forward without recording a sleep — the hook for stub engines
    that model slow work (e.g. to trip a per-attempt timeout).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError(
                f"cannot sleep a negative duration ({seconds})"
            )
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without counting as a sleep."""
        if seconds < 0:
            raise ConfigurationError(
                f"cannot advance time backwards ({seconds})"
            )
        self._now += seconds

    @property
    def total_slept(self) -> float:
        return sum(self.sleeps)


#: Shared default; stateless, so one instance serves the whole process.
WALL_CLOCK = WallClock()
