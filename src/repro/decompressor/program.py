"""Configuration-program parser for the decompression module.

The paper configures the module with a text file split into four
sections, one per pipeline stage (Figure 8). Stages 1, 3 and 4 are fixed
datapaths with parameters; stage 2 is structural — assignments wiring
primitive units together, one evaluation per payload unit:

.. code-block:: text

    # Stage 1
    extractor.mode = byte          # byte | fixed | patched | word32 | word64
    extractor.header_bytes = 0     # fixed: per-block width header size
    # Stage 2
    reg Reg = 0
    wire1 := AND(Input, 0x7F)
    wire2 := SHL(Reg, 0x7)
    wire3 := ADD(wire1, wire2)
    Reg := wire3
    Output := wire3
    Output.valid := SHR(Input, 0x7)
    reset := SHR(Input, 0x7)
    # Stage 3
    exceptions = none              # none | patch
    # Stage 4
    use_delta = 1

Stage-2 semantics per unit ("cycle"): statements evaluate top to bottom;
``Input`` is the current payload unit; registers (declared with ``reg``)
carry values between cycles; ``Output``/``Output.valid`` control
emission; a non-zero ``reset`` restores all registers to their initial
values at the end of the cycle. ``Output := UNPACK(Input)`` invokes the
selector-table unpacker (mode table supplied as a stage-2 parameter).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import DecompressorProgramError

#: Stage-1 extractor modes.
EXTRACTOR_MODES = ("byte", "fixed", "patched", "word32", "word64")


@dataclass(frozen=True)
class Statement:
    """One stage-2 assignment: ``target := OP(args)`` or ``target := ident``."""

    target: str
    op: Optional[str]  # None for a plain copy
    args: Tuple[Union[str, int], ...]


@dataclass
class DecompressorProgram:
    """Parsed four-stage configuration."""

    # Stage 1
    extractor_mode: str = "byte"
    header_bytes: int = 0
    # Stage 2
    registers: Dict[str, int] = field(default_factory=dict)
    statements: List[Statement] = field(default_factory=list)
    selector_bits: int = 0
    mode_table: Optional[Sequence[Sequence[int]]] = None
    # Stage 3
    exceptions: str = "none"
    # Stage 4
    use_delta: bool = True
    #: Display name (scheme) for diagnostics.
    name: str = "custom"

    def validate(self) -> None:
        if self.extractor_mode not in EXTRACTOR_MODES:
            raise DecompressorProgramError(
                f"unknown extractor mode {self.extractor_mode!r}"
            )
        if self.exceptions not in ("none", "patch"):
            raise DecompressorProgramError(
                f"unknown exception mode {self.exceptions!r}"
            )
        if self.exceptions == "patch" and self.extractor_mode != "patched":
            raise DecompressorProgramError(
                "exception patching requires the patched extractor"
            )
        # A missing UNPACK mode table is checked at execution time, so a
        # program can be parsed first and have its table attached after
        # (tables are data, not config-file syntax).
        uses_unpack = any(s.op == "UNPACK" for s in self.statements)
        targets = {s.target for s in self.statements}
        if "Output" not in targets and not uses_unpack:
            raise DecompressorProgramError("program never assigns Output")


_SECTION_RE = re.compile(r"#\s*stage\s*([1-4])", re.IGNORECASE)
_PARAM_RE = re.compile(r"^([A-Za-z_.]+)\s*=\s*(\S+)$")
_REG_RE = re.compile(r"^reg\s+([A-Za-z_]\w*)\s*=\s*(\S+)$")
_ASSIGN_RE = re.compile(
    r"^([A-Za-z_][\w.]*)\s*:=\s*"
    r"(?:([A-Z][A-Z0-9]*)\(([^)]*)\)|([A-Za-z_]\w*|0x[0-9a-fA-F]+|\d+))$"
)


def _parse_value(token: str) -> Union[str, int]:
    token = token.strip()
    if token.startswith("0x") or token.startswith("0X"):
        return int(token, 16)
    if token.isdigit():
        return int(token)
    return token


def parse_program(text: str, name: str = "custom") -> DecompressorProgram:
    """Parse a configuration file into a :class:`DecompressorProgram`."""
    program = DecompressorProgram(name=name)
    section = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        section_match = _SECTION_RE.search(line)
        if line.startswith("#"):
            if section_match:
                section = int(section_match.group(1))
            continue
        if section == 0:
            raise DecompressorProgramError(
                f"statement before any stage header: {line!r}"
            )
        if section == 1:
            _parse_stage1(program, line)
        elif section == 2:
            _parse_stage2(program, line)
        elif section == 3:
            _parse_stage3(program, line)
        else:
            _parse_stage4(program, line)
    program.validate()
    return program


def _parse_stage1(program: DecompressorProgram, line: str) -> None:
    match = _PARAM_RE.match(line)
    if not match:
        raise DecompressorProgramError(f"bad stage-1 parameter: {line!r}")
    key, value = match.groups()
    if key == "extractor.mode":
        program.extractor_mode = value
    elif key == "extractor.header_bytes":
        program.header_bytes = int(value)
    else:
        raise DecompressorProgramError(f"unknown stage-1 key {key!r}")


def _parse_stage2(program: DecompressorProgram, line: str) -> None:
    reg_match = _REG_RE.match(line)
    if reg_match:
        name, init = reg_match.groups()
        program.registers[name] = int(_parse_value(init))
        return
    param_match = _PARAM_RE.match(line)
    if param_match and param_match.group(1) == "selector_bits":
        program.selector_bits = int(param_match.group(2))
        return
    assign_match = _ASSIGN_RE.match(line)
    if not assign_match:
        raise DecompressorProgramError(f"bad stage-2 statement: {line!r}")
    target, op, arg_text, ident = assign_match.groups()
    if op is not None:
        args = tuple(
            _parse_value(a) for a in arg_text.split(",") if a.strip()
        )
        program.statements.append(Statement(target, op, args))
    else:
        program.statements.append(
            Statement(target, None, (_parse_value(ident),))
        )


def _parse_stage3(program: DecompressorProgram, line: str) -> None:
    match = _PARAM_RE.match(line)
    if not match or match.group(1) != "exceptions":
        raise DecompressorProgramError(f"bad stage-3 parameter: {line!r}")
    program.exceptions = match.group(2)


def _parse_stage4(program: DecompressorProgram, line: str) -> None:
    match = _PARAM_RE.match(line)
    if not match or match.group(1) != "use_delta":
        raise DecompressorProgramError(f"bad stage-4 parameter: {line!r}")
    program.use_delta = bool(int(match.group(2)))
