"""Built-in configuration programs, one per paper compression scheme.

These are the programs ``init()`` ships to BOSS so the decompression
module can decode whichever scheme each posting list selected (the
``compType`` of the ``search()`` call). The VB program is the paper's
Figure 8 example; the others parameterize the fixed stages and, for the
Simple family, the stage-2 selector unpacker.
"""

from __future__ import annotations

from typing import Dict

from repro.compression.simple8b import S8B_MODES
from repro.compression.simple16 import S16_MODES
from repro.decompressor.program import DecompressorProgram, parse_program
from repro.errors import DecompressorProgramError

#: Figure 8: VariableByte. One byte per cycle; the accumulator shifts
#: seven bits per byte and the MSB terminates (emits + resets).
VB_PROGRAM_TEXT = """
# Stage 1
extractor.mode = byte
# Stage 2
reg Reg = 0
wire1 := AND(Input, 0x7F)
wire2 := SHL(Reg, 0x7)
wire3 := ADD(wire1, wire2)
Reg := wire3
Output := wire3
Output.valid := SHR(Input, 0x7)
reset := SHR(Input, 0x7)
# Stage 3
exceptions = none
# Stage 4
use_delta = 0
"""

#: Bit-Packing: fixed-width fields behind a one-byte width header;
#: stage 2 is a pass-through wire.
BP_PROGRAM_TEXT = """
# Stage 1
extractor.mode = fixed
extractor.header_bytes = 1
# Stage 2
Output := Input
# Stage 3
exceptions = none
# Stage 4
use_delta = 0
"""

#: PForDelta / OptPForDelta: patched frames; stage 3 ORs the exception
#: high bits back in. (Both schemes share one decode program — they
#: differ only in how the *encoder* picks the frame width.)
PFD_PROGRAM_TEXT = """
# Stage 1
extractor.mode = patched
# Stage 2
Output := Input
# Stage 3
exceptions = patch
# Stage 4
use_delta = 0
"""

#: Simple16: 32-bit selector words through the stage-2 unpacker.
S16_PROGRAM_TEXT = """
# Stage 1
extractor.mode = word32
# Stage 2
selector_bits = 4
Output := UNPACK(Input)
# Stage 3
exceptions = none
# Stage 4
use_delta = 0
"""

#: Simple8b: 64-bit selector words; zero-run rows handled by the table.
S8B_PROGRAM_TEXT = """
# Stage 1
extractor.mode = word64
# Stage 2
selector_bits = 4
Output := UNPACK(Input)
# Stage 3
exceptions = none
# Stage 4
use_delta = 0
"""


#: Extension scheme: Group Varint. Each control byte's four 2-bit
#: fields give the byte lengths of the next four little-endian values.
#: The program is a five-register state machine over the byte stream —
#: pure shift/mask/add/compare/mux primitives, demonstrating that new
#: schemes compose from the module's primitive units (Section III-B).
GVB_PROGRAM_TEXT = """
# Stage 1
extractor.mode = byte
# Stage 2
reg Ctrl = 0
reg Count = 0
reg Remain = 0
reg Acc = 0
reg Shift = 0
isctrl := EQ(Count, 0)
Ctrl := MUX(isctrl, Input, Ctrl)
Count := MUX(isctrl, 4, Count)
lenbits := AND(Ctrl, 3)
len0 := ADD(lenbits, 1)
Remain := MUX(isctrl, len0, Remain)
Acc := MUX(isctrl, 0, Acc)
Shift := MUX(isctrl, 0, Shift)
isdata := EQ(isctrl, 0)
shifted := SHL(Input, Shift)
contrib := MUX(isdata, shifted, 0)
Acc := ADD(Acc, contrib)
step8 := MUX(isdata, 8, 0)
Shift := ADD(Shift, step8)
dec := MUX(isdata, 1, 0)
Remain := SUB(Remain, dec)
remzero := EQ(Remain, 0)
done := AND(isdata, remzero)
Output := Acc
Output.valid := done
Count := SUB(Count, done)
shr2 := SHR(Ctrl, 2)
Ctrl := MUX(done, shr2, Ctrl)
nextbits := AND(Ctrl, 3)
nextlen := ADD(nextbits, 1)
more := GT(Count, 0)
loadnext := AND(done, more)
Remain := MUX(loadnext, nextlen, Remain)
Acc := MUX(done, 0, Acc)
Shift := MUX(done, 0, Shift)
# Stage 3
exceptions = none
# Stage 4
use_delta = 0
"""


def _build() -> Dict[str, DecompressorProgram]:
    programs: Dict[str, DecompressorProgram] = {}
    programs["VB"] = parse_program(VB_PROGRAM_TEXT, name="VB")
    programs["BP"] = parse_program(BP_PROGRAM_TEXT, name="BP")
    pfd = parse_program(PFD_PROGRAM_TEXT, name="PFD")
    programs["PFD"] = pfd
    programs["OptPFD"] = parse_program(PFD_PROGRAM_TEXT, name="OptPFD")
    s16 = parse_program(S16_PROGRAM_TEXT, name="S16")
    s16.mode_table = S16_MODES
    programs["S16"] = s16
    s8b = parse_program(S8B_PROGRAM_TEXT, name="S8b")
    # S8b's two zero-run selectors are (0, run_length) rows; uniform
    # rows expand to per-field width lists.
    s8b.mode_table = tuple(
        (0, capacity) if width == 0 else (width,) * capacity
        for width, capacity in S8B_MODES
    )
    programs["S8b"] = s8b
    programs["GVB"] = parse_program(GVB_PROGRAM_TEXT, name="GVB")
    return programs


#: Scheme name -> ready-to-run program.
BUILTIN_PROGRAMS: Dict[str, DecompressorProgram] = _build()


def program_for_scheme(scheme: str) -> DecompressorProgram:
    """The built-in program decoding ``scheme``'s payloads."""
    try:
        return BUILTIN_PROGRAMS[scheme]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_PROGRAMS))
        raise DecompressorProgramError(
            f"no built-in program for scheme {scheme!r}; known: {known}"
        ) from None
