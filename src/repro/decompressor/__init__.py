"""Programmable decompression module (paper Figures 6 and 8).

BOSS decodes many compression schemes on one datapath by splitting
decompression into four canonical stages:

1. **extract** — slice payload units out of the serialized bitstream
   (fixed-width fields, bytes, or 32/64-bit selector words);
2. **manipulate** — a *programmable* network of primitive units (shift,
   mask, add, accumulate-register, selector-unpack) wired together by a
   configuration program;
3. **exception** — patch PFD-style exception values back into the
   stream;
4. **delta** — undo d-gap encoding by accumulating a running docID.

Stage 2 is configured with a small structural program in the style of
Figure 8 (``wire1 := AND(Input, 0x7F)`` ...); the other stages take
plain parameters. :data:`repro.decompressor.configs.BUILTIN_PROGRAMS`
ships one program per paper scheme, and tests verify that the module
decodes *bit-identically* to the software codecs.
"""

from repro.decompressor.pipeline import DecompressionModule
from repro.decompressor.program import DecompressorProgram, parse_program
from repro.decompressor.configs import BUILTIN_PROGRAMS, program_for_scheme

__all__ = [
    "DecompressionModule",
    "DecompressorProgram",
    "parse_program",
    "BUILTIN_PROGRAMS",
    "program_for_scheme",
]
