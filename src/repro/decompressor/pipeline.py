"""The four-stage decompression pipeline executor (paper Figure 6).

:class:`DecompressionModule` runs a parsed
:class:`~repro.decompressor.program.DecompressorProgram` against a
compressed payload:

* **stage 1 (extract)** — fixed datapath with parameters: slices the
  bitstream into payload units (bytes, fixed-width fields, selector
  words, or a patched frame with its exception section);
* **stage 2 (manipulate)** — interprets the structural program once per
  payload unit, emitting zero or more output values;
* **stage 3 (exception)** — ORs patch values into the flagged positions;
* **stage 4 (delta)** — reconstructs docIDs from d-gaps when enabled.

Tests assert bit-exact parity with every software codec in
:mod:`repro.compression`.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.compression.bitio import BitReader
from repro.compression.delta import doc_ids_from_deltas
from repro.compression.pfordelta import SEGMENT_SIZE
from repro.decompressor.primitives import apply_op, unpack_word
from repro.decompressor.program import DecompressorProgram, Statement
from repro.errors import DecompressorProgramError


class DecompressionModule:
    """Executes decompression programs; one instance per hardware lane."""

    def __init__(self, program: DecompressorProgram,
                 observer=None) -> None:
        program.validate()
        self._program = program
        #: Observability hook; only consulted when ``observer.enabled``.
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )

    @property
    def program(self) -> DecompressorProgram:
        return self._program

    def decode(self, data: bytes, count: int, base: int = -1) -> List[int]:
        """Decode ``count`` values from ``data``.

        When the program's stage 4 enables delta decoding, the returned
        values are docIDs accumulated from ``base`` (the block metadata's
        preceding docID); otherwise they are the raw decoded integers.
        """
        if self._observer is not None:
            self._observer.on_decode(self._program.name, count)
        units, exceptions = self._extract(data, count)
        values = self._manipulate(units, count)
        if len(values) < count:
            raise DecompressorProgramError(
                f"{self._program.name}: produced {len(values)} of {count} values"
            )
        values = values[:count]
        if self._program.exceptions == "patch":
            for position, patch in exceptions:
                if position >= count:
                    raise DecompressorProgramError(
                        f"exception position {position} out of range"
                    )
                values[position] |= patch
        if self._program.use_delta:
            return doc_ids_from_deltas(values, base=base)
        return values

    # ------------------------------------------------------------------
    # Stage 1: extraction
    # ------------------------------------------------------------------

    def _extract(self, data: bytes,
                 count: int) -> Tuple[List[int], List[Tuple[int, int]]]:
        mode = self._program.extractor_mode
        if mode == "byte":
            return list(data), []
        if mode == "fixed":
            return self._extract_fixed(data, count), []
        if mode == "patched":
            return self._extract_patched(data, count)
        if mode == "word32":
            if len(data) % 4:
                raise DecompressorProgramError(
                    "word32 payload is not word aligned"
                )
            return [w for (w,) in struct.iter_unpack("<I", data)], []
        if mode == "word64":
            if len(data) % 8:
                raise DecompressorProgramError(
                    "word64 payload is not word aligned"
                )
            return [w for (w,) in struct.iter_unpack("<Q", data)], []
        raise DecompressorProgramError(f"unknown extractor mode {mode!r}")

    def _extract_fixed(self, data: bytes, count: int) -> List[int]:
        header = self._program.header_bytes
        if header == 0:
            raise DecompressorProgramError(
                "fixed extractor needs a width header"
            )
        if len(data) < header:
            raise DecompressorProgramError("truncated width header")
        width = int.from_bytes(data[:header], "little")
        if width == 0:
            return [0] * count
        reader = BitReader(data, offset=header)
        return reader.read_many(width, count)

    def _extract_patched(self, data: bytes,
                         count: int) -> Tuple[List[int], List[Tuple[int, int]]]:
        """PFD segment walk: frames plus the per-segment patch records."""
        units: List[int] = []
        exceptions: List[Tuple[int, int]] = []
        offset = 0
        emitted = 0
        while emitted < count:
            if offset + 2 > len(data):
                raise DecompressorProgramError("truncated patched segment")
            width = data[offset]
            n_exc = data[offset + 1]
            seg_count = min(SEGMENT_SIZE, count - emitted)
            frame_bytes = (seg_count * width + 7) // 8
            if width:
                reader = BitReader(data, offset=offset + 2)
                units.extend(reader.read_many(width, seg_count))
            else:
                units.extend([0] * seg_count)
            position = offset + 2 + frame_bytes
            for _ in range(n_exc):
                if position >= len(data):
                    raise DecompressorProgramError("truncated patch section")
                local = data[position]
                position += 1
                high = 0
                while position < len(data):
                    byte = data[position]
                    position += 1
                    high = (high << 7) | (byte & 0x7F)
                    if byte & 0x80:
                        break
                exceptions.append((emitted + local, high << width))
            offset = position
            emitted += seg_count
        return units, exceptions

    # ------------------------------------------------------------------
    # Stage 2: the programmable manipulation network
    # ------------------------------------------------------------------

    def _manipulate(self, units: List[int], count: int) -> List[int]:
        program = self._program
        registers = dict(program.registers)
        initial = dict(program.registers)
        outputs: List[int] = []

        for unit in units:
            wires: Dict[str, int] = {"Input": unit}
            output: Optional[int] = None
            valid: Optional[int] = None
            reset = 0
            unpacked: Optional[List[int]] = None

            for statement in program.statements:
                value, burst = self._evaluate(statement, wires, registers,
                                              unit)
                if statement.target == "Output":
                    if burst is not None:
                        unpacked = burst
                    else:
                        output = value
                elif statement.target == "Output.valid":
                    valid = value
                elif statement.target == "reset":
                    reset = value
                elif statement.target in registers:
                    registers[statement.target] = value
                else:
                    wires[statement.target] = value

            if unpacked is not None:
                outputs.extend(unpacked)
            elif output is not None and (valid is None or valid):
                outputs.append(output)
            if reset:
                registers.update(initial)
            if len(outputs) >= count:
                break
        return outputs

    def _evaluate(self, statement: Statement, wires: Dict[str, int],
                  registers: Dict[str, int],
                  unit: int) -> Tuple[int, Optional[List[int]]]:
        program = self._program

        def resolve(token) -> int:
            if isinstance(token, int):
                return token
            if token in wires:
                return wires[token]
            if token in registers:
                return registers[token]
            raise DecompressorProgramError(
                f"{program.name}: unknown identifier {token!r}"
            )

        if statement.op is None:
            return resolve(statement.args[0]), None
        if statement.op == "UNPACK":
            word = resolve(statement.args[0]) if statement.args else unit
            if program.mode_table is None:
                raise DecompressorProgramError("UNPACK without a mode table")
            return 0, unpack_word(word, program.selector_bits,
                                  program.mode_table)
        args = [resolve(a) for a in statement.args]
        return apply_op(statement.op, args), None
