"""Primitive units available to the stage-2 manipulation network.

These are the hardware building blocks the paper's programmable stage
composes through its MUX/DEMUX array: shifters, maskers, adders, and a
selector-driven unpacker (the word-splitting structure Simple16/Simple8b
need). Each primitive is a pure function on 64-bit unsigned values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import DecompressorProgramError

_MASK64 = (1 << 64) - 1


def _and(a: int, b: int) -> int:
    return a & b


def _or(a: int, b: int) -> int:
    return a | b


def _xor(a: int, b: int) -> int:
    return a ^ b


def _add(a: int, b: int) -> int:
    return (a + b) & _MASK64


def _sub(a: int, b: int) -> int:
    return (a - b) & _MASK64


def _shl(a: int, b: int) -> int:
    if b >= 64:
        return 0
    return (a << b) & _MASK64


def _shr(a: int, b: int) -> int:
    if b >= 64:
        return 0
    return a >> b


def _eq(a: int, b: int) -> int:
    return 1 if a == b else 0


def _lt(a: int, b: int) -> int:
    return 1 if a < b else 0


def _gt(a: int, b: int) -> int:
    return 1 if a > b else 0


def _mux(cond: int, a: int, b: int) -> int:
    return a if cond else b


#: Operation name -> (arity, implementation).
BINARY_OPS: Dict[str, Tuple[int, Callable[..., int]]] = {
    "AND": (2, _and),
    "OR": (2, _or),
    "XOR": (2, _xor),
    "ADD": (2, _add),
    "SUB": (2, _sub),
    "SHL": (2, _shl),
    "SHR": (2, _shr),
    "EQ": (2, _eq),
    "LT": (2, _lt),
    "GT": (2, _gt),
    "MUX": (3, _mux),
}


def apply_op(name: str, args: Sequence[int]) -> int:
    """Apply a primitive by name, validating arity."""
    try:
        arity, fn = BINARY_OPS[name]
    except KeyError:
        known = ", ".join(sorted(BINARY_OPS))
        raise DecompressorProgramError(
            f"unknown primitive {name!r}; known: {known}"
        ) from None
    if len(args) != arity:
        raise DecompressorProgramError(
            f"{name} expects {arity} operands, got {len(args)}"
        )
    return fn(*args)


def unpack_word(word: int, selector_bits: int,
                mode_table: Sequence[Sequence[int]]) -> List[int]:
    """Selector-driven field unpacker (the S16/S8b stage-2 structure).

    The low ``selector_bits`` of ``word`` index ``mode_table``; the
    remaining payload is split into that mode's field widths, LSB-first.
    A field width of 0 denotes a run-length mode: the table row is
    ``(0, run_length)`` and the unpacker emits that many zeros.
    """
    selector = word & ((1 << selector_bits) - 1)
    if selector >= len(mode_table):
        raise DecompressorProgramError(
            f"selector {selector} outside mode table of {len(mode_table)}"
        )
    row = mode_table[selector]
    if row and row[0] == 0:
        # Zero-run mode: (0, run_length).
        if len(row) != 2:
            raise DecompressorProgramError(
                "zero-run mode rows must be (0, run_length)"
            )
        return [0] * row[1]
    payload = word >> selector_bits
    values: List[int] = []
    for width in row:
        values.append(payload & ((1 << width) - 1))
        payload >>= width
    return values
