"""Text analysis: turning raw text into index terms.

The paper consumes pre-built inverted indexes; a usable library also
needs the step before that. This module provides a small, deterministic
analysis chain in the style of Lucene's ``StandardAnalyzer``:

1. **tokenize** — Unicode-aware word splitting (letters/digits runs,
   with inner apostrophes kept: ``don't`` stays one token);
2. **lowercase**;
3. **stop-word removal** — a compact English list (configurable);
4. **light stemming** — the S-stemmer (Harman 1991): plural suffix
   stripping only. It is deliberately conservative — no Porter rules —
   so stems stay readable and the mapping is easy to reason about in
   tests.

All steps are optional and composable via :class:`Analyzer`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from repro.errors import ConfigurationError

#: Compact English stop-word list (the classic Lucene default set).
ENGLISH_STOPWORDS: FrozenSet[str] = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
    "in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
    "that", "the", "their", "then", "there", "these", "they", "this",
    "to", "was", "will", "with",
})

_TOKEN_RE = re.compile(r"[^\W_]+(?:'[^\W_]+)*", re.UNICODE)


def tokenize(text: str) -> List[str]:
    """Split ``text`` into word tokens (keeps inner apostrophes)."""
    return _TOKEN_RE.findall(text)


def s_stem(token: str) -> str:
    """Harman's S-stemmer: conservative English plural stripping.

    * ``...ies`` -> ``...y``   (unless preceded by ``a`` or ``e``)
    * ``...es``  -> ``...e``   (unless ending ``aes``/``ees``/``oes``)
    * ``...s``   -> drop       (unless ending ``us``/``ss`` or too short)
    """
    if len(token) > 4 and token.endswith("ies"):
        if token[-4] not in ("a", "e"):
            return token[:-3] + "y"
        return token
    if len(token) > 3 and token.endswith("es"):
        if token[-3] not in ("a", "e", "o"):
            return token[:-1]
        return token
    if len(token) > 3 and token.endswith("s"):
        if token[-2] not in ("u", "s"):
            return token[:-1]
    return token


@dataclass(frozen=True)
class Analyzer:
    """Composable text-analysis chain."""

    lowercase: bool = True
    stopwords: Optional[FrozenSet[str]] = ENGLISH_STOPWORDS
    stem: bool = True
    min_token_length: int = 1
    max_token_length: int = 64

    def __post_init__(self) -> None:
        if self.min_token_length < 1:
            raise ConfigurationError("min_token_length must be >= 1")
        if self.max_token_length < self.min_token_length:
            raise ConfigurationError(
                "max_token_length below min_token_length"
            )

    def analyze(self, text: str) -> List[str]:
        """Raw text -> index terms."""
        terms: List[str] = []
        for token in tokenize(text):
            if self.lowercase:
                token = token.lower()
            if not (self.min_token_length <= len(token)
                    <= self.max_token_length):
                continue
            if self.stopwords is not None and token in self.stopwords:
                continue
            if self.stem:
                token = s_stem(token)
            terms.append(token)
        return terms

    def __call__(self, text: str) -> List[str]:
        return self.analyze(text)


#: An analyzer that only tokenizes and lowercases (no stop/stem), for
#: exact-term applications.
KEYWORD_ANALYZER = Analyzer(stopwords=None, stem=False)


def index_texts(texts: Iterable[str],
                analyzer: Analyzer = Analyzer(),
                schemes: Optional[List[str]] = None):
    """Convenience: analyze and index raw text documents.

    Documents that analyze to nothing (all stop words) are indexed with
    a single placeholder token so docIDs stay aligned with the input
    order.
    """
    from repro.index.builder import IndexBuilder

    builder = IndexBuilder(schemes=schemes)
    for text in texts:
        terms = analyzer.analyze(text)
        builder.add_document(terms if terms else ["__empty__"])
    return builder.build()
