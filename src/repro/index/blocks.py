"""Posting-list blocks and per-block metadata.

Each posting list is divided into blocks of up to :data:`BLOCK_SIZE`
(128) postings. A block stores two compressed payloads — docID d-gaps and
term frequencies — plus the paper's 19-byte metadata record used for
skipping and decompression (Section IV-A):

======================== ===== =======================================
field                    bytes purpose
======================== ===== =======================================
first docID              4     skip check (overlap test lower bound)
last docID               4     skip check (overlap test upper bound)
max term-score           4     early-termination score estimation
compressed block offset  4     where the payload lives in SCM
element count            7 bit decompressor stop condition
encoded bit width        5 bit fixed-width extractor configuration
first exception offset   12 bit PFD-style patch section locator
======================== ===== =======================================

The three sub-byte fields share the final 3 bytes, totalling 19 bytes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.compression.base import Codec
from repro.compression.delta import (
    deltas_from_doc_ids,
    doc_ids_from_deltas,
    doc_ids_from_deltas_array,
    doc_ids_from_deltas_columnar,
)
from repro.errors import CompressionError, InvertedIndexError
from repro.index.postings import Posting

#: Postings per block, the paper's fixed block granularity.
BLOCK_SIZE = 128

#: Size of the per-block metadata record (Section IV-A).
BLOCK_METADATA_BYTES = 19


@dataclass(frozen=True)
class BlockMetadata:
    """The 19-byte per-block record kept uncompressed beside the list."""

    #: First (uncompressed) docID in the block.
    first_doc_id: int
    #: Last (uncompressed) docID in the block.
    last_doc_id: int
    #: Maximum BM25 term-score of any posting in the block.
    max_term_score: float
    #: Byte offset of the compressed payload within the list's region.
    offset: int
    #: Number of postings in the block (7-bit field, <= 128).
    count: int
    #: Encoded bit width hint for the fixed-width extractor (5-bit field).
    bit_width: int
    #: Offset of the first exception value/index (12-bit field; 0 when the
    #: scheme has no patch section).
    exception_offset: int

    def __post_init__(self) -> None:
        if not 0 < self.count <= BLOCK_SIZE:
            raise InvertedIndexError(
                f"block count {self.count} outside (0, {BLOCK_SIZE}]"
            )
        if self.first_doc_id > self.last_doc_id:
            raise InvertedIndexError(
                f"block range [{self.first_doc_id}, {self.last_doc_id}] inverted"
            )
        if self.bit_width >= 1 << 5:
            raise InvertedIndexError(f"bit width {self.bit_width} exceeds 5 bits")
        if self.exception_offset >= 1 << 12:
            raise InvertedIndexError(
                f"exception offset {self.exception_offset} exceeds 12 bits"
            )

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether the block's docID range intersects ``[lo, hi]``.

        This is the overlap check unit's test (Section IV-C, Block Fetch
        Module): it inspects only the first/last docID metadata fields.
        """
        return self.first_doc_id <= hi and lo <= self.last_doc_id


@dataclass(frozen=True)
class Block:
    """One compressed block: metadata plus the two payloads."""

    metadata: BlockMetadata
    #: Compressed docID d-gaps.
    doc_payload: bytes
    #: Compressed term frequencies (stored as ``tf - 1``).
    tf_payload: bytes

    @property
    def compressed_bytes(self) -> int:
        """Total payload size — what a block fetch reads from SCM."""
        return len(self.doc_payload) + len(self.tf_payload)

    def decode(self, codec: Codec) -> List[Posting]:
        """Decompress the block back into postings.

        The caller supplies the codec named by the list's compression
        scheme (the ``compType`` of the offloading API).
        """
        meta = self.metadata
        doc_payload, tf_payload = self.doc_payload, self.tf_payload
        if not isinstance(doc_payload, (bytes, bytearray)):
            # Zero-copy (mmap) payloads: the per-value reference
            # decoders assume bytes semantics, and this oracle path is
            # not the one the copy-free guarantee covers.
            doc_payload = bytes(doc_payload)
            tf_payload = bytes(tf_payload)
        deltas = codec.decode(doc_payload, meta.count)
        doc_ids = doc_ids_from_deltas(deltas, base=meta.first_doc_id - 1)
        tfs = codec.decode(tf_payload, meta.count)
        return [Posting(d, tf + 1) for d, tf in zip(doc_ids, tfs)]

    def decode_arrays(self, codec: Codec) -> Tuple[array, array]:
        """Fast-path decompression: ``(docID array, tf array)``.

        Functionally identical to :meth:`decode` but stays in bulk form
        end to end — the codec's ``decode_block`` emits ``array('I')``
        d-gaps, the prefix-sum transform reconstructs docIDs in one
        pass, and no per-posting objects are materialized. This is the
        representation the query cursors consume (and the decoded-block
        cache retains).
        """
        meta = self.metadata
        if not isinstance(self.doc_payload, (bytes, bytearray)):
            return self._decode_arrays_columnar(codec)
        deltas = codec.decode_block(self.doc_payload, meta.count)
        doc_ids = doc_ids_from_deltas_array(deltas,
                                            base=meta.first_doc_id - 1)
        tfs = codec.decode_block(self.tf_payload, meta.count)
        return doc_ids, array("I", [tf + 1 for tf in tfs])

    def _decode_arrays_columnar(self, codec: Codec) -> Tuple[array, array]:
        """Decompress zero-copy payloads (memoryview slices of an mmap).

        The columnar kernels accept any byte buffer without materializing
        a ``bytes`` copy. The outputs are converted to the same
        ``array('I')`` representation as the bytes path so the decoded
        block cache stays type-uniform across storage backends.
        """
        meta = self.metadata
        deltas = codec.decode_block_columnar(self.doc_payload, meta.count)
        doc_ids = doc_ids_from_deltas_columnar(deltas,
                                               base=meta.first_doc_id - 1)
        tfs = codec.decode_block_columnar(self.tf_payload, meta.count)
        tfs = tfs.astype(np.uint64) + np.uint64(1)
        if int(tfs.max()) > 0xFFFFFFFF:
            raise CompressionError("tf beyond 32 bits decoding block")
        # array('I', bytes) deserializes raw little-endian 32-bit words.
        return (
            array("I", doc_ids.astype("<u4", copy=False).tobytes()),
            array("I", tfs.astype("<u4").tobytes()),
        )


def build_block(postings: Sequence[Posting], codec: Codec,
                max_term_score: float, offset: int) -> Block:
    """Compress one run of postings into a :class:`Block`.

    ``offset`` is the byte position the payload will occupy within its
    posting list's region (recorded in metadata, exactly as the paper's
    "address offset of the compressed block" field).
    """
    if not postings:
        raise InvertedIndexError("cannot build an empty block")
    if len(postings) > BLOCK_SIZE:
        raise InvertedIndexError(
            f"block of {len(postings)} postings exceeds {BLOCK_SIZE}"
        )
    doc_ids = [p.doc_id for p in postings]
    deltas = deltas_from_doc_ids(doc_ids, base=doc_ids[0] - 1)
    tf_values = [p.tf - 1 for p in postings]
    doc_payload = codec.encode(deltas)
    tf_payload = codec.encode(tf_values)
    bit_width = min(31, max((d.bit_length() for d in deltas), default=0))
    metadata = BlockMetadata(
        first_doc_id=doc_ids[0],
        last_doc_id=doc_ids[-1],
        max_term_score=max_term_score,
        offset=offset,
        count=len(postings),
        bit_width=bit_width,
        exception_offset=0,
    )
    return Block(metadata=metadata, doc_payload=doc_payload,
                 tf_payload=tf_payload)


def split_into_blocks(postings: Sequence[Posting]) -> List[Tuple[int, Sequence[Posting]]]:
    """Partition postings into ``(start_index, run)`` chunks of BLOCK_SIZE."""
    return [
        (start, postings[start:start + BLOCK_SIZE])
        for start in range(0, len(postings), BLOCK_SIZE)
    ]
