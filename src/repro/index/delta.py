"""Near-real-time updates: a delta segment over the read-only index.

The paper (Section II-B): "Once created, the inverted list is a
(mostly) read-only data structure." The *mostly* is this module: new
documents land in a small, uncompressed in-memory *delta segment*;
queries evaluate over both the compressed base (on the accelerator) and
the delta (a software scan — it is tiny by construction); a periodic
``merge()`` folds the delta into a fresh compressed base, exactly the
segment-and-compaction pattern production engines use.

Because base and delta hold *disjoint docID ranges*, every boolean
query decomposes cleanly: a document matches the query within its own
segment, so the final answer is a top-k merge of the two segments'
results (the same argument that makes interval sharding exact).

Scoring note: delta documents are scored with the *base* corpus
statistics (N, avgdl, per-term IDF where the term exists in the base).
This is the standard near-real-time approximation — statistics refresh
at merge time; tests pin the post-merge equivalence with a from-scratch
build.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Union

from repro.core.query import AndNode, QueryNode, TermNode, flatten, parse_query
from repro.core.result import ScoredDocument, SearchResult
from repro.core.topk import TopKQueue
from repro.errors import ConfigurationError, QueryError
from repro.index.builder import IndexBuilder
from repro.index.index import InvertedIndex


class DeltaSegment:
    """Uncompressed in-memory tail of newly added documents."""

    def __init__(self, first_doc_id: int) -> None:
        self.first_doc_id = first_doc_id
        self._doc_terms: List[Counter] = []
        self._doc_lengths: List[int] = []
        #: term -> list of (docID, tf), append-ordered (ascending docID).
        self._postings: Dict[str, List] = {}

    @property
    def num_docs(self) -> int:
        return len(self._doc_terms)

    @property
    def terms(self) -> List[str]:
        return sorted(self._postings)

    def add_document(self, tokens: Sequence[str]) -> int:
        token_list = list(tokens)
        if not token_list:
            raise ConfigurationError("cannot index an empty document")
        doc_id = self.first_doc_id + len(self._doc_terms)
        counts = Counter(token_list)
        self._doc_terms.append(counts)
        self._doc_lengths.append(len(token_list))
        for term, tf in counts.items():
            self._postings.setdefault(term, []).append((doc_id, tf))
        return doc_id

    def postings(self, term: str) -> List:
        return self._postings.get(term, [])

    def doc_length(self, doc_id: int) -> int:
        return self._doc_lengths[doc_id - self.first_doc_id]

    def doc_counts(self, doc_id: int) -> Counter:
        return self._doc_terms[doc_id - self.first_doc_id]

    def documents(self) -> List[Sequence[str]]:
        """Token multisets, reconstructed for merging."""
        out = []
        for counts in self._doc_terms:
            tokens: List[str] = []
            for term, tf in sorted(counts.items()):
                tokens.extend([term] * tf)
            out.append(tokens)
        return out

    def __contains__(self, term: str) -> bool:
        return term in self._postings


class DeltaIndex:
    """A compressed base index plus a live delta segment.

    Parameters
    ----------
    engine:
        First-stage engine over the base index (BOSS/IIU/Lucene model).
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        self._base: InvertedIndex = engine.index
        self._delta = DeltaSegment(first_doc_id=self._base.stats.num_docs)

    @property
    def base(self) -> InvertedIndex:
        return self._base

    @property
    def delta_docs(self) -> int:
        return self._delta.num_docs

    def add_document(self, tokens: Sequence[str]) -> int:
        """Index a new document into the delta segment; returns docID."""
        return self._delta.add_document(tokens)

    # ------------------------------------------------------------------
    # Search across both segments
    # ------------------------------------------------------------------

    def search(self, query: Union[str, QueryNode],
               k: int = 10) -> SearchResult:
        node = parse_query(query) if isinstance(query, str) else flatten(query)
        known = [
            t for t in node.terms()
            if t in self._base or t in self._delta
        ]
        if len(known) != len(set(node.terms())):
            missing = sorted(set(node.terms()) - set(known))
            raise QueryError(f"terms not in index: {missing}")

        topk = TopKQueue(k)

        # Base segment: prune to base-resident terms, run on the engine.
        base_node = _prune(node, lambda t: t in self._base)
        base_result: Optional[SearchResult] = None
        if base_node is not None:
            base_result = self._engine.search(base_node, k=k)
            for hit in base_result.hits:
                topk.offer(hit.doc_id, hit.score)

        # Delta segment: software scan of the (small) tail.
        delta_node = _prune(node, lambda t: t in self._delta)
        if delta_node is not None:
            for doc_id, score in self._score_delta(delta_node, node):
                topk.offer(doc_id, score)

        hits = [ScoredDocument(d, s) for d, s in topk.results()]
        if base_result is not None:
            return SearchResult(
                query=node,
                hits=hits,
                traffic=base_result.traffic,
                work=base_result.work,
                interconnect_bytes=base_result.interconnect_bytes,
            )
        return SearchResult(query=node, hits=hits)

    def _score_delta(self, delta_node: QueryNode, full_node: QueryNode):
        """Evaluate the boolean condition over delta docs; BM25 scores
        use base statistics per the near-real-time approximation."""
        matching = self._matching_delta_docs(delta_node)
        scorer = self._base.scorer
        params = scorer.params
        query_terms = set(full_node.terms())
        for doc_id in sorted(matching):
            counts = self._delta.doc_counts(doc_id)
            length = self._delta.doc_length(doc_id)
            normalizer = params.k1 * (
                1.0 - params.b + params.b * length / scorer.avgdl
            )
            score = 0.0
            for term in query_terms:
                tf = counts.get(term)
                if not tf:
                    continue
                score += self._term_idf(term) * (
                    tf * (params.k1 + 1.0) / (tf + normalizer)
                )
            yield doc_id, score

    def _matching_delta_docs(self, node: QueryNode) -> set:
        if isinstance(node, TermNode):
            return {d for d, _tf in self._delta.postings(node.term)}
        child_sets = [self._matching_delta_docs(c) for c in node.children]
        if isinstance(node, AndNode):
            out = child_sets[0]
            for s in child_sets[1:]:
                out = out & s
            return out
        out = set()
        for s in child_sets:
            out |= s
        return out

    def _term_idf(self, term: str) -> float:
        """Base IDF where available; delta-local estimate otherwise."""
        if term in self._base:
            return self._base.posting_list(term).idf
        df = len(self._delta.postings(term))
        n = self._base.stats.num_docs + self._delta.num_docs
        return math.log((n - df + 0.5) / (df + 0.5) + 1.0)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def merge(self) -> InvertedIndex:
        """Fold the delta into a fresh compressed base index.

        Rebuilds from the combined document set (the offline indexing
        path), refreshing every statistic; the caller re-wraps the new
        index in an engine. Returns the merged index.
        """
        builder = IndexBuilder()
        for doc_id in range(self._base.stats.num_docs):
            builder.add_document(self._reconstruct_base_doc(doc_id))
        for tokens in self._delta.documents():
            builder.add_document(tokens)
        return builder.build()

    def _reconstruct_base_doc(self, doc_id: int) -> List[str]:
        """Rebuild a base document's token multiset from the index.

        (A production system would keep stored fields; the index is
        lossless for the bag-of-words content we need.)
        """
        tokens: List[str] = []
        for term in self._base.terms:
            posting_list = self._base.posting_list(term)
            # Binary probe via the block metadata.
            for block in posting_list.blocks:
                if block.metadata.first_doc_id <= doc_id <= block.metadata.last_doc_id:
                    for posting in block.decode(posting_list.codec):
                        if posting.doc_id == doc_id:
                            tokens.extend([term] * posting.tf)
                    break
        return tokens if tokens else ["__empty__"]


def _prune(node: QueryNode, has_term) -> Optional[QueryNode]:
    """Shared segment-pruning logic (missing terms drop out)."""
    if isinstance(node, TermNode):
        return node if has_term(node.term) else None
    pruned = [_prune(child, has_term) for child in node.children]
    if isinstance(node, AndNode):
        if any(child is None for child in pruned):
            return None
        kept = [c for c in pruned if c is not None]
    else:
        kept = [c for c in pruned if c is not None]
        if not kept:
            return None
    if len(kept) == 1:
        return kept[0]
    return type(node)(tuple(kept))
