"""Flat address-space layout for the index inside the SCM pool.

The performance model needs stable byte addresses for every compressed
posting list so the SCM device model can classify accesses as sequential
(consecutive blocks of one list) or random (jumps between lists,
binary-search probes). :class:`AddressSpaceLayout` is a simple bump
allocator over the memory node's physical address space; ``init()`` in
the offloading API uses it to place the index, mirroring the paper's
"loads the inverted index file from disk to SCM memory pool".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

#: Alignment of every allocation, one SCM access granule (Optane's
#: internal 256-byte block is the natural choice; 64 B would model the
#: cache-line interface instead).
DEFAULT_ALIGNMENT = 256


@dataclass(frozen=True)
class Region:
    """A contiguous allocated byte range ``[base, base + size)``."""

    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class AddressSpaceLayout:
    """Bump allocator assigning regions to named objects.

    Parameters
    ----------
    capacity:
        Total bytes available (default 2 TB, the paper's four 512 GB
        DIMMs per memory node).
    alignment:
        Every region starts at a multiple of this.
    """

    def __init__(self, capacity: int = 2 << 40,
                 alignment: int = DEFAULT_ALIGNMENT) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if alignment <= 0 or alignment & (alignment - 1):
            raise ConfigurationError(
                f"alignment must be a positive power of two, got {alignment}"
            )
        self._capacity = capacity
        self._alignment = alignment
        self._cursor = 0
        self._regions: Dict[str, Region] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def allocated_bytes(self) -> int:
        """High-water mark of the allocator."""
        return self._cursor

    def allocate(self, name: str, size: int) -> Region:
        """Reserve ``size`` bytes under ``name`` and return the region."""
        if name in self._regions:
            raise ConfigurationError(f"region {name!r} already allocated")
        if size < 0:
            raise ConfigurationError(f"negative allocation size {size}")
        base = self._align(self._cursor)
        if base + size > self._capacity:
            raise ConfigurationError(
                f"allocation of {size} B for {name!r} exceeds capacity "
                f"({base + size} > {self._capacity})"
            )
        region = Region(base=base, size=size)
        self._regions[name] = region
        self._cursor = base + size
        return region

    def region(self, name: str) -> Region:
        """Look up a previously allocated region."""
        try:
            return self._regions[name]
        except KeyError:
            raise ConfigurationError(f"unknown region {name!r}") from None

    def find(self, address: int) -> Optional[str]:
        """Name of the region containing ``address``, if any."""
        for name, region in self._regions.items():
            if region.contains(address):
                return name
        return None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def _align(self, value: int) -> int:
        mask = self._alignment - 1
        return (value + mask) & ~mask
