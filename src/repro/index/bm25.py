"""Okapi BM25 ranking with the paper's indexing-time pre-computation.

The paper (Section II-B) scores a document ``D`` for query ``Q``:

.. math::

    score(D, Q) = \\sum_i IDF(q_i) \\cdot
        \\frac{f(q_i, D) (k_1 + 1)}{f(q_i, D) + k_1 (1 - b + b |D| / avgdl)}

with ``IDF(q) = ln((N - n(q) + 0.5) / (n(q) + 0.5) + 1)``.

The scoring-module optimization (Section IV-C) pre-computes everything
except the term frequency at indexing time: the per-document *length
normalizer* ``k1 * (1 - b + b * |D| / avgdl)`` is stored as 4 bytes of
per-document metadata, so the hardware computes a term score with exactly
one division, one multiplication and one addition:

    ``term_score = idf * (tf * (k1 + 1)) / (tf + normalizer)``

:class:`BM25Scorer` reproduces that split: :meth:`length_normalizer` is
the stored metadata, :meth:`term_score` is the 3-op runtime path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BM25Parameters:
    """BM25 free parameters.

    The paper uses the customary ranges ``k1 in [1.2, 2.0]`` and
    ``b = 0.75``; we default to the common (k1=1.2, b=0.75) operating
    point used by Lucene.
    """

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ConfigurationError(f"k1 must be non-negative, got {self.k1}")
        if not 0.0 <= self.b <= 1.0:
            raise ConfigurationError(f"b must be in [0, 1], got {self.b}")


class BM25Scorer:
    """BM25 scoring over a fixed document corpus.

    Parameters
    ----------
    doc_lengths:
        Length (token count) of every document, indexed by docID.
    params:
        BM25 free parameters.
    """

    def __init__(self, doc_lengths: Sequence[int],
                 params: "BM25Parameters" = None) -> None:
        if not doc_lengths:
            raise ConfigurationError("corpus must contain at least one document")
        if any(length <= 0 for length in doc_lengths):
            raise ConfigurationError("document lengths must be positive")
        self._params = BM25Parameters() if params is None else params
        self._doc_lengths = list(doc_lengths)
        self._num_docs = len(doc_lengths)
        self._avgdl = sum(doc_lengths) / len(doc_lengths)
        # Per-document metadata: the paper's 4-byte pre-computed
        # normalizer k1 * (1 - b + b * |D| / avgdl).
        k1, b = self._params.k1, self._params.b
        self._normalizers = [
            k1 * (1.0 - b + b * length / self._avgdl)
            for length in self._doc_lengths
        ]
        # Columnar view of the normalizer table, built lazily by
        # :attr:`normalizer_array` (the array scorer's gather source).
        self._normalizer_nd = None

    @property
    def params(self) -> BM25Parameters:
        return self._params

    @property
    def num_docs(self) -> int:
        """Corpus size ``N``."""
        return self._num_docs

    @property
    def id_space(self) -> int:
        """Size of the docID domain the scorer can normalize.

        Equals :attr:`num_docs` for a plain corpus scorer; live-index
        scorers (:class:`repro.live.stats.LiveBM25Scorer`) keep
        normalizer slots for deleted documents, so their id space can
        exceed the live document count.
        """
        return len(self._normalizers)

    @property
    def avgdl(self) -> float:
        """Average document length."""
        return self._avgdl

    def idf(self, document_frequency: int) -> float:
        """Inverse document frequency of a term with the given ``df``."""
        if not 0 <= document_frequency <= self._num_docs:
            raise ConfigurationError(
                f"df {document_frequency} outside [0, {self._num_docs}]"
            )
        n = document_frequency
        return math.log((self._num_docs - n + 0.5) / (n + 0.5) + 1.0)

    def length_normalizer(self, doc_id: int) -> float:
        """The pre-computed per-document metadata value (4 B/doc)."""
        return self._normalizers[doc_id]

    @property
    def normalizer_array(self) -> np.ndarray:
        """The normalizer table as a float64 vector (built lazily).

        Scorers are immutable once constructed (live indexes snapshot a
        fresh scorer per version), so the cached array can never go
        stale; a length check guards subclasses that rebuild
        ``_normalizers`` in place.
        """
        cached = getattr(self, "_normalizer_nd", None)
        if cached is None or len(cached) != len(self._normalizers):
            cached = np.asarray(self._normalizers, dtype=np.float64)
            self._normalizer_nd = cached
        return cached

    def score_array(self, idf: float, tfs: np.ndarray,
                    doc_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`term_score` over parallel tf/docID vectors.

        Element ``i`` is bit-identical to
        ``term_score(idf, tfs[i], doc_ids[i])``: the elementwise float64
        operations are applied in exactly the scalar path's association
        order ``idf * (tf * (k1 + 1)) / (tf + normalizer)``, so IEEE-754
        rounding matches bit for bit.
        """
        norms = self.normalizer_array[doc_ids]
        tfs_f = np.asarray(tfs, dtype=np.float64)
        return idf * (tfs_f * (self._params.k1 + 1.0)) / (tfs_f + norms)

    def term_score(self, idf: float, tf: int, doc_id: int) -> float:
        """Runtime term score: one division, one multiply, one add.

        This is exactly the arithmetic the paper's scoring module performs
        in hardware using the stored normalizer.
        """
        normalizer = self._normalizers[doc_id]
        k1 = self._params.k1
        return idf * (tf * (k1 + 1.0)) / (tf + normalizer)

    def term_score_full(self, document_frequency: int, tf: int,
                        doc_id: int) -> float:
        """Term score computed from df (convenience for tests/baselines)."""
        return self.term_score(self.idf(document_frequency), tf, doc_id)

    def max_term_score(self, document_frequency: int,
                       postings: Sequence,
                       idf: float = None) -> float:
        """Upper-bound term score over ``postings`` (``(docID, tf)`` pairs).

        Used at indexing time to fill the block metadata's "maximum
        term-score" field and the per-list bound used by the WAND union
        module's pre-calculated lookup table. Pass ``idf`` explicitly
        when corpus-global statistics override the local df (sharded
        deployments).
        """
        if idf is None:
            idf = self.idf(document_frequency)
        best = 0.0
        for doc_id, tf in postings:
            score = self.term_score(idf, tf, doc_id)
            if score > best:
                best = score
        return best
