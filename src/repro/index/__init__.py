"""Inverted index substrate.

Implements the paper's index organization (Section IV-A):

* posting lists of ``(docID, term frequency)`` tuples, sorted by docID;
* 128-value *blocks* with d-gap + hybrid compression per list;
* 19-byte per-block metadata: first/last uncompressed docID, maximum
  term-score in the block, compressed-block address offset, element
  count, encoded bit width, and first-exception offset;
* per-document BM25 pre-computation (4 bytes per document) so the scoring
  hardware needs only a division, a multiplication, and an addition at
  query time (Section IV-C, Scoring Module);
* a flat address-space layout that places every compressed list at a
  stable address inside the (simulated) SCM memory pool.
"""

from repro.index.bm25 import BM25Parameters, BM25Scorer
from repro.index.blocks import BLOCK_SIZE, BLOCK_METADATA_BYTES, Block, BlockMetadata
from repro.index.builder import IndexBuilder
from repro.index.index import CompressedPostingList, DocumentStats, InvertedIndex
from repro.index.loader import STORAGE_MODES, open_index, sniff_format
from repro.index.mmapio import MmapIndexStorage, load_index_mmap
from repro.index.postings import Posting, PostingList
from repro.index.storage import AddressSpaceLayout, Region

__all__ = [
    "BM25Parameters",
    "BM25Scorer",
    "BLOCK_SIZE",
    "BLOCK_METADATA_BYTES",
    "Block",
    "BlockMetadata",
    "IndexBuilder",
    "CompressedPostingList",
    "DocumentStats",
    "InvertedIndex",
    "MmapIndexStorage",
    "STORAGE_MODES",
    "load_index_mmap",
    "open_index",
    "sniff_format",
    "Posting",
    "PostingList",
    "AddressSpaceLayout",
    "Region",
]
