"""Positional postings and phrase search (extension).

The paper notes posting lists "often [carry] additional information
such as term frequency, document length, and term's position in the
document" but evaluates the (docID, tf) form only. This extension adds
the positional sidecar and the phrase operator built on it:

* :class:`PositionStore` — per (term, doc) sorted position lists,
  VarByte-delta encoded, with byte accounting so the performance model
  can charge position fetches;
* :class:`PhraseSearcher` — exact phrase matching: candidates come from
  the engine's AND path (every phrase term must appear), then position
  lists verify adjacency. Scores are the BM25 score of the underlying
  AND — the standard first-stage treatment of phrases.

Positions live beside the index rather than inside the block format so
the paper's 19-byte metadata and block layout stay exactly as
published; a hardware BOSS would fetch them like scoring metadata
(small random reads per verified candidate), which is how the traffic
is charged here.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.compression.delta import deltas_from_doc_ids, doc_ids_from_deltas
from repro.compression.varbyte import VarByteCodec
from repro.core.query import AndNode, TermNode
from repro.core.result import ScoredDocument, SearchResult
from repro.errors import ConfigurationError, QueryError
from repro.scm.traffic import AccessClass, AccessPattern

_VB = VarByteCodec()


class PositionStore:
    """Encoded term positions per (term, docID)."""

    def __init__(self) -> None:
        #: (term, doc) -> (encoded payload, count)
        self._entries: Dict[Tuple[str, int], Tuple[bytes, int]] = {}

    @classmethod
    def from_documents(cls,
                       documents: Sequence[Sequence[str]]) -> "PositionStore":
        """Build from tokenized documents (docIDs are list positions)."""
        store = cls()
        for doc_id, tokens in enumerate(documents):
            per_term: Dict[str, List[int]] = {}
            for position, term in enumerate(tokens):
                per_term.setdefault(term, []).append(position)
            for term, positions in per_term.items():
                store.add(term, doc_id, positions)
        return store

    def add(self, term: str, doc_id: int,
            positions: Sequence[int]) -> None:
        ordered = list(positions)
        if ordered != sorted(set(ordered)):
            raise ConfigurationError(
                "positions must be strictly increasing"
            )
        if not ordered:
            raise ConfigurationError("empty position list")
        key = (term, doc_id)
        if key in self._entries:
            raise ConfigurationError(f"positions for {key} already stored")
        gaps = deltas_from_doc_ids(ordered)  # same transform: sorted ints
        self._entries[key] = (_VB.encode(gaps), len(ordered))

    def positions(self, term: str, doc_id: int) -> List[int]:
        try:
            payload, count = self._entries[(term, doc_id)]
        except KeyError:
            return []
        return doc_ids_from_deltas(_VB.decode(payload, count))

    def payload_bytes(self, term: str, doc_id: int) -> int:
        entry = self._entries.get((term, doc_id))
        return len(entry[0]) if entry else 0

    @property
    def total_bytes(self) -> int:
        return sum(len(payload) for payload, _c in self._entries.values())

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._entries


class PhraseSearcher:
    """Exact phrase matching over any first-stage engine."""

    def __init__(self, engine, store: PositionStore) -> None:
        self._engine = engine
        self._store = store

    def search_phrase(self, phrase: Sequence[str],
                      k: int = 10) -> SearchResult:
        """Documents containing ``phrase`` as consecutive terms.

        Pipeline: the engine's intersection retrieves every document
        containing all phrase terms (ranked by the AND's BM25 score);
        position lists are then fetched for each candidate and checked
        for an adjacent run. Position fetches are charged as small
        random reads, like scoring metadata.
        """
        terms = list(phrase)
        if len(terms) < 2:
            raise QueryError("a phrase needs at least two terms")
        node = AndNode(tuple(TermNode(t) for t in terms))
        # Retrieve every AND match: phrases filter further, so the
        # candidate pool must not be pre-truncated.
        candidate_pool = max(k, self._engine.index.stats.num_docs)
        result = self._engine.search(node, k=candidate_pool)

        verified: List[ScoredDocument] = []
        position_bytes = 0
        for hit in result.hits:
            position_bytes += sum(
                self._store.payload_bytes(term, hit.doc_id)
                for term in terms
            )
            if self._matches_phrase(terms, hit.doc_id):
                verified.append(hit)
        result.traffic.record(
            AccessClass.LD_SCORE,
            AccessPattern.RANDOM,
            position_bytes,
            accesses=len(result.hits) * len(terms),
        )
        verified.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return SearchResult(
            query=node,
            hits=verified[:k],
            traffic=result.traffic,
            work=result.work,
            interconnect_bytes=8 * min(k, len(verified)),
        )

    def _matches_phrase(self, terms: Sequence[str], doc_id: int) -> bool:
        """Adjacency check via iterative position-list intersection."""
        current = self._store.positions(terms[0], doc_id)
        for offset, term in enumerate(terms[1:], start=1):
            next_positions = set(self._store.positions(term, doc_id))
            current = [
                p for p in current if (p + offset) in next_positions
            ]
            if not current:
                return False
        return True
