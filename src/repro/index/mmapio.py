"""Zero-copy mmap serving of ``.bossx`` index files.

:func:`repro.index.binaryio.load_index_binary` reads the whole file
into one ``bytes`` object and slices payload copies out of it. For a
serving process that is wasteful twice over: load time is a full-file
copy, and resident memory duplicates what the page cache already
holds. :class:`MmapIndexStorage` instead maps the file read-only and
parses the index over a ``memoryview`` of the mapping, so

* term/block *metadata* is materialized as ordinary Python objects
  (it is tiny and hot), while
* every compressed block *payload* is a ``memoryview`` slice into the
  mapping — no bytes are copied until a query actually decodes the
  block, and the columnar decode kernels
  (:meth:`repro.compression.base.Codec.decode_block_columnar`) read
  straight from the view via ``np.frombuffer``.

This is the software analogue of the paper's ``init()`` placing the
index file in the SCM pool at stable addresses: the OS page cache
plays the pool, and block fetches become demand-paged reads.

Lifetime: each payload view holds a reference to the mapping, so the
mapping survives as long as any block does, even if the storage object
is dropped. :meth:`MmapIndexStorage.close` is therefore best-effort —
it releases the mapping only once no payload views remain alive.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Optional, Union

from repro.errors import InvertedIndexError
from repro.index.binaryio import MAGIC, parse_index_buffer
from repro.index.index import InvertedIndex


class MmapIndexStorage:
    """A read-only mapped ``.bossx`` file serving zero-copy blocks."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        try:
            with open(self.path, "rb") as handle:
                self._mmap = mmap.mmap(handle.fileno(), 0,
                                       access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file cannot be mapped
            raise InvertedIndexError(
                f"{self.path} cannot be mapped: {exc}"
            ) from exc
        self._view: Optional[memoryview] = memoryview(self._mmap)
        if bytes(self._view[:len(MAGIC)]) != MAGIC:
            self.close()
            raise InvertedIndexError(f"{self.path} is not a BOSSIDX1 file")
        self._index: Optional[InvertedIndex] = None

    @property
    def mapped_bytes(self) -> int:
        """Size of the mapping (the whole index file)."""
        return 0 if self._view is None else len(self._view)

    @property
    def closed(self) -> bool:
        return self._view is None

    def load(self) -> InvertedIndex:
        """Parse the mapping into an :class:`InvertedIndex`.

        Parsed once and cached; every block's payloads are
        ``memoryview`` slices of the mapping (asserted by the storage
        tests — nothing on this path materializes payload ``bytes``).
        """
        if self._view is None:
            raise InvertedIndexError(f"{self.path}: storage is closed")
        if self._index is None:
            self._index = parse_index_buffer(self._view,
                                             source=str(self.path))
        return self._index

    def close(self) -> None:
        """Drop the cached index and release the mapping if possible.

        Payload views exported to a still-live index pin the mapping
        (``mmap.close`` raises ``BufferError``); in that case the
        mapping stays open and is reclaimed when the last view dies.
        """
        self._index = None
        if self._view is not None:
            self._view.release()
            self._view = None
        try:
            self._mmap.close()
        except BufferError:
            pass  # exported block views still pin the mapping

    def __enter__(self) -> "MmapIndexStorage":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def load_index_mmap(path: Union[str, Path]) -> InvertedIndex:
    """Open ``path`` with :class:`MmapIndexStorage` and load the index.

    The storage object is not returned; the index's block views keep
    the mapping alive for exactly as long as the index is.
    """
    return MmapIndexStorage(path).load()
