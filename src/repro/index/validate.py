"""Index integrity checking (``fsck`` for .boss indexes).

Every skip decision BOSS makes trusts the per-block metadata: docID
ranges drive the overlap check, maximum term-scores drive early
termination, counts and offsets drive decompression. A corrupted or
hand-edited index silently breaks those guarantees — ET would drop
true results. This checker verifies every invariant the engines rely
on and reports violations instead of letting them surface as wrong
search results:

* blocks decode cleanly and hold exactly ``count`` postings;
* docIDs are strictly increasing within and across blocks, within the
  corpus range;
* metadata first/last docIDs equal the decoded endpoints;
* every block's max term-score truly bounds its postings' scores, and
  the list-level maximum equals the max over blocks;
* document frequency equals the sum of block counts; IDF matches the
  corpus statistics (or is flagged as shard-global);
* payload offsets are consistent and regions do not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import CompressionError
from repro.index.index import InvertedIndex

#: Tolerance for floating-point metadata comparisons.
_EPS = 1e-9


@dataclass
class ValidationReport:
    """Outcome of one integrity check."""

    terms_checked: int = 0
    blocks_checked: int = 0
    postings_checked: int = 0
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def _error(self, message: str) -> None:
        self.errors.append(message)

    def _warn(self, message: str) -> None:
        self.warnings.append(message)


def validate_index(index: InvertedIndex,
                   check_scores: bool = True) -> ValidationReport:
    """Check every engine-trusted invariant of ``index``.

    ``check_scores`` re-derives BM25 term scores for every posting to
    verify the block maxima (the expensive part; disable for a quick
    structural pass).
    """
    report = ValidationReport()
    scorer = index.scorer
    num_docs = index.stats.num_docs

    previous_region_end = -1
    for term in index.terms:
        posting_list = index.posting_list(term)
        report.terms_checked += 1

        # Regions: laid out in term order, non-overlapping.
        region = posting_list.region
        if region.base < previous_region_end:
            report._error(
                f"{term}: region [{region.base}, {region.end}) overlaps "
                f"the previous list"
            )
        previous_region_end = max(previous_region_end, region.end)

        block_counts = 0
        expected_offset = 0
        previous_doc = -1
        list_max_seen = 0.0
        for block_index, block in enumerate(posting_list.blocks):
            report.blocks_checked += 1
            meta = block.metadata
            label = f"{term}[block {block_index}]"

            if meta.offset != expected_offset:
                report._error(
                    f"{label}: offset {meta.offset} != running total "
                    f"{expected_offset}"
                )
            expected_offset += block.compressed_bytes

            try:
                postings = block.decode(posting_list.codec)
            except CompressionError as exc:
                report._error(f"{label}: payload does not decode ({exc})")
                continue
            report.postings_checked += len(postings)
            block_counts += meta.count

            if len(postings) != meta.count:
                report._error(
                    f"{label}: decoded {len(postings)} postings, "
                    f"metadata says {meta.count}"
                )
                continue
            doc_ids = [p.doc_id for p in postings]
            if doc_ids != sorted(set(doc_ids)):
                report._error(f"{label}: docIDs not strictly increasing")
            if doc_ids[0] != meta.first_doc_id:
                report._error(
                    f"{label}: first docID {doc_ids[0]} != metadata "
                    f"{meta.first_doc_id}"
                )
            if doc_ids[-1] != meta.last_doc_id:
                report._error(
                    f"{label}: last docID {doc_ids[-1]} != metadata "
                    f"{meta.last_doc_id}"
                )
            if doc_ids[0] <= previous_doc:
                report._error(
                    f"{label}: overlaps previous block "
                    f"({doc_ids[0]} <= {previous_doc})"
                )
            previous_doc = doc_ids[-1]
            if doc_ids[-1] >= num_docs:
                report._error(
                    f"{label}: docID {doc_ids[-1]} beyond corpus "
                    f"of {num_docs}"
                )
            if any(p.tf < 1 for p in postings):
                report._error(f"{label}: tf below 1")

            if check_scores:
                true_max = max(
                    scorer.term_score(posting_list.idf, p.tf, p.doc_id)
                    for p in postings
                )
                if true_max > meta.max_term_score + _EPS:
                    report._error(
                        f"{label}: max term-score {meta.max_term_score} "
                        f"below true bound {true_max} — early termination "
                        f"would drop results"
                    )
                elif meta.max_term_score > true_max + _EPS:
                    report._warn(
                        f"{label}: max term-score is loose "
                        f"({meta.max_term_score} vs {true_max})"
                    )
                list_max_seen = max(list_max_seen, meta.max_term_score)

        if block_counts != posting_list.document_frequency:
            report._error(
                f"{term}: df {posting_list.document_frequency} != "
                f"block counts {block_counts}"
            )
        if check_scores and posting_list.blocks:
            if abs(list_max_seen - posting_list.max_term_score) > _EPS:
                report._error(
                    f"{term}: list max score "
                    f"{posting_list.max_term_score} != max over blocks "
                    f"{list_max_seen}"
                )
        local_idf = scorer.idf(posting_list.document_frequency)
        if abs(local_idf - posting_list.idf) > _EPS:
            report._warn(
                f"{term}: idf {posting_list.idf} differs from the "
                f"corpus-local value {local_idf} (shard-global statistics?)"
            )
    return report


def validate_segmented(segmented,
                       check_scores: bool = True, *,
                       manifest: Optional[dict] = None,
                       segment_dir: Optional[Union[str, Path]] = None
                       ) -> ValidationReport:
    """Check the live-index invariants of a ``SegmentedIndex``.

    Runs :func:`validate_index` over every sealed segment (each is a
    complete index whose baked metadata must be self-consistent with
    its own scorer snapshot), then checks the cross-segment invariants
    the read path relies on:

    * every docID lives in at most one place (one segment's payload, or
      the write buffer);
    * tombstones reference documents the segment actually holds, and
      agree with the liveness bitmap in the statistics;
    * recorded per-document lengths match the statistics table;
    * the global statistics are exactly the sum over parts: live count,
      live token total, and every term's live document frequency.

    For a durable index, pass the loaded ``manifest`` and/or the WAL
    directory as ``segment_dir`` to extend the check to the durable
    state: the manifest must describe exactly the installed segment
    set (ids, tiers, sizes), every manifest entry's segment file must
    exist on disk at its recorded size, and no orphan ``seg-*.seg``
    file may sit in the directory outside the committed set.

    The merge scheduler runs this after every compaction (with
    ``check_scores=False`` for speed, no durable-state arguments);
    the differential tests run the full pass.
    """
    report = ValidationReport()
    stats = segmented.stats

    owner = {}
    for segment in segmented.segments:
        label = f"segment {segment.segment_id}"
        sub = validate_index(segment.index, check_scores=check_scores)
        report.terms_checked += sub.terms_checked
        report.blocks_checked += sub.blocks_checked
        report.postings_checked += sub.postings_checked
        for error in sub.errors:
            report._error(f"{label}: {error}")

        for doc_id in segment.tombstones:
            if doc_id not in segment.doc_lengths:
                report._error(
                    f"{label}: tombstone for docID {doc_id} it never held"
                )
            if stats.is_live(doc_id):
                report._error(
                    f"{label}: docID {doc_id} tombstoned but still live "
                    f"in the statistics"
                )
        for doc_id, length in segment.doc_lengths.items():
            if doc_id in owner:
                report._error(
                    f"{label}: docID {doc_id} also held by {owner[doc_id]}"
                )
            owner[doc_id] = label
            if (doc_id not in segment.tombstones
                    and not stats.is_live(doc_id)):
                report._error(
                    f"{label}: docID {doc_id} not tombstoned yet dead "
                    f"in the statistics"
                )
            if stats.doc_length(doc_id) != length:
                report._error(
                    f"{label}: docID {doc_id} length {length} != "
                    f"statistics {stats.doc_length(doc_id)}"
                )

    live_docs = 0
    live_tokens = 0
    live_dfs = {}
    for segment in segmented.segments:
        for doc_id in segment.doc_lengths:
            if doc_id in segment.tombstones:
                continue
            live_docs += 1
            live_tokens += segment.doc_lengths[doc_id]
            for term in segment.doc_terms[doc_id]:
                live_dfs[term] = live_dfs.get(term, 0) + 1
    for doc_id in segmented.memseg.doc_ids():
        if doc_id in owner:
            report._error(
                f"buffer: docID {doc_id} also held by {owner[doc_id]}"
            )
        if not stats.is_live(doc_id):
            report._error(f"buffer: docID {doc_id} dead in the statistics")
        live_docs += 1
        live_tokens += segmented.memseg.length_of(doc_id)
        for term in segmented.memseg.terms_of(doc_id):
            live_dfs[term] = live_dfs.get(term, 0) + 1

    if live_docs != stats.num_docs:
        report._error(
            f"global: live count {stats.num_docs} != sum over parts "
            f"{live_docs}"
        )
    if live_tokens != stats.total_tokens:
        report._error(
            f"global: live token total {stats.total_tokens} != sum over "
            f"parts {live_tokens}"
        )
    for term in set(live_dfs) | set(stats.terms):
        expected = live_dfs.get(term, 0)
        recorded = stats.df(term)
        if expected != recorded:
            report._error(
                f"global: term {term!r} df {recorded} != sum over parts "
                f"{expected}"
            )

    if manifest is not None or segment_dir is not None:
        _validate_durable_state(segmented, manifest, segment_dir, report)
    return report


def _validate_durable_state(segmented, manifest: Optional[dict],
                            segment_dir: Optional[Union[str, Path]],
                            report: ValidationReport) -> None:
    """Manifest <-> installed segments <-> segment files agreement."""
    installed = {s.segment_id: s for s in segmented.segments}
    entries = {}
    if manifest is not None:
        for entry in manifest.get("segments", []):
            entries[entry["id"]] = entry
        for segment_id, entry in entries.items():
            segment = installed.get(segment_id)
            if segment is None:
                report._error(
                    f"manifest: segment {segment_id} committed but not "
                    f"installed"
                )
                continue
            if entry["tier"] != segment.tier:
                report._error(
                    f"manifest: segment {segment_id} tier {entry['tier']} "
                    f"!= installed tier {segment.tier}"
                )
            if entry["nbytes"] != segment.nbytes:
                report._error(
                    f"manifest: segment {segment_id} nbytes "
                    f"{entry['nbytes']} != installed {segment.nbytes}"
                )
        for segment_id in installed:
            if segment_id not in entries:
                report._error(
                    f"manifest: segment {segment_id} installed but not "
                    f"committed"
                )
    if segment_dir is not None:
        from repro.live.segfile import segment_file_name

        segment_dir = Path(segment_dir)
        committed = (entries if manifest is not None else installed)
        for segment_id in committed:
            path = segment_dir / segment_file_name(segment_id)
            if not path.exists():
                report._error(
                    f"durable: segment {segment_id} committed but "
                    f"{path.name} is missing on disk"
                )
        expected_names = {segment_file_name(i) for i in committed}
        for stray in sorted(segment_dir.glob("seg-*.seg")):
            if stray.name not in expected_names:
                report._error(
                    f"durable: orphan segment file {stray.name} outside "
                    f"the committed set"
                )
