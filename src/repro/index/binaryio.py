"""Structured binary index format (pickle-free serialization).

`repro.index.io` snapshots indexes with pickle, which is convenient but
unsuitable for untrusted files. This module defines ``.bossx``, a
self-describing binary format that can be parsed without executing
anything:

======================== ===========================================
section                  contents
======================== ===========================================
header                   magic ``BOSSIDX1``, document count, avgdl,
                         total tokens, BM25 k1/b, term count
document table           varint-coded document lengths
term sections            per term: name, scheme, df, idf, max score,
                         region base/size, block records
block record             the 19-byte metadata fields + the two
                         compressed payloads, length-prefixed
======================== ===========================================

All integers are unsigned little-endian (fixed width) or LEB128-style
varints; floats are IEEE-754 doubles. Loading rebuilds a fully
functional :class:`InvertedIndex` whose query results are identical to
the original — asserted by tests.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from repro.errors import InvertedIndexError
from repro.index.blocks import Block, BlockMetadata
from repro.index.bm25 import BM25Parameters, BM25Scorer
from repro.index.index import (
    CompressedPostingList,
    DocumentStats,
    InvertedIndex,
)
from repro.index.storage import AddressSpaceLayout, Region

MAGIC = b"BOSSIDX1"


def _write_varint(out: BinaryIO, value: int) -> None:
    if value < 0:
        raise InvertedIndexError("varint cannot encode negatives")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: bytes, offset: int) -> tuple:
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise InvertedIndexError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def _write_bytes(out: BinaryIO, payload: bytes) -> None:
    _write_varint(out, len(payload))
    out.write(payload)


def _read_bytes(data: bytes, offset: int) -> tuple:
    length, offset = _read_varint(data, offset)
    if offset + length > len(data):
        raise InvertedIndexError("truncated byte field")
    return data[offset:offset + length], offset + length


# Public aliases: the WAL and segment-file formats (repro.live) reuse
# the exact same primitive encodings, so torn-record detection and the
# fuzz tests exercise one codec, not three.
write_varint = _write_varint
read_varint = _read_varint
write_bytes_field = _write_bytes
read_bytes_field = _read_bytes


def write_term_section(out: BinaryIO, posting_list) -> None:
    """Write one term's posting-list section (shared ``.bossx`` /
    segment-file encoding): name, scheme, df, scores, region, blocks."""
    term = posting_list.term
    _write_bytes(out, term.encode("utf-8"))
    _write_bytes(out, posting_list.scheme.encode("ascii"))
    _write_varint(out, posting_list.document_frequency)
    out.write(struct.pack("<dd", posting_list.idf,
                          posting_list.max_term_score))
    _write_varint(out, posting_list.region.base)
    _write_varint(out, posting_list.region.size)
    _write_varint(out, posting_list.num_blocks)
    for block in posting_list.blocks:
        meta = block.metadata
        _write_varint(out, meta.first_doc_id)
        _write_varint(out, meta.last_doc_id)
        out.write(struct.pack("<d", meta.max_term_score))
        _write_varint(out, meta.offset)
        _write_varint(out, meta.count)
        _write_varint(out, meta.bit_width)
        _write_varint(out, meta.exception_offset)
        _write_bytes(out, block.doc_payload)
        _write_bytes(out, block.tf_payload)


def read_term_section(data: bytes, offset: int,
                      layout: AddressSpaceLayout) -> tuple:
    """Read one term section; returns ``(posting_list, offset)``.

    Replays the recorded region size through ``layout`` so the
    allocator's internal bookkeeping stays consistent with the recorded
    addresses.

    ``data`` is any byte buffer: block payloads are sliced from it
    without conversion, so a ``memoryview`` input (the mmap storage
    path) yields zero-copy payload views while ``bytes`` input yields
    ordinary ``bytes`` payloads.
    """
    double = struct.Struct("<d")
    pair = struct.Struct("<dd")
    term_bytes, offset = _read_bytes(data, offset)
    term = bytes(term_bytes).decode("utf-8")
    scheme_bytes, offset = _read_bytes(data, offset)
    scheme = bytes(scheme_bytes).decode("ascii")
    df, offset = _read_varint(data, offset)
    if offset + pair.size > len(data):
        raise InvertedIndexError("truncated term record")
    idf, max_score = pair.unpack_from(data, offset)
    offset += pair.size
    region_base, offset = _read_varint(data, offset)
    region_size, offset = _read_varint(data, offset)
    num_blocks, offset = _read_varint(data, offset)
    blocks: List[Block] = []
    for _b in range(num_blocks):
        first, offset = _read_varint(data, offset)
        last, offset = _read_varint(data, offset)
        if offset + double.size > len(data):
            raise InvertedIndexError("truncated block record")
        (block_max,) = double.unpack_from(data, offset)
        offset += double.size
        block_offset, offset = _read_varint(data, offset)
        count, offset = _read_varint(data, offset)
        bit_width, offset = _read_varint(data, offset)
        exception_offset, offset = _read_varint(data, offset)
        doc_payload, offset = _read_bytes(data, offset)
        tf_payload, offset = _read_bytes(data, offset)
        blocks.append(Block(
            metadata=BlockMetadata(
                first_doc_id=first,
                last_doc_id=last,
                max_term_score=block_max,
                offset=block_offset,
                count=count,
                bit_width=bit_width,
                exception_offset=exception_offset,
            ),
            doc_payload=doc_payload,
            tf_payload=tf_payload,
        ))
    region = Region(base=region_base, size=region_size)
    layout.allocate(term, region_size)
    posting_list = CompressedPostingList(
        term=term,
        scheme=scheme,
        blocks=blocks,
        document_frequency=df,
        idf=idf,
        max_term_score=max_score,
        region=region,
    )
    return posting_list, offset


def save_index_binary(index: InvertedIndex,
                      path: Union[str, Path]) -> None:
    """Write ``index`` in the ``.bossx`` binary format."""
    scorer = index.scorer
    with open(path, "wb") as out:
        out.write(MAGIC)
        stats = index.stats
        out.write(struct.pack("<IdQdd", stats.num_docs, stats.avgdl,
                              stats.total_tokens, scorer.params.k1,
                              scorer.params.b))
        _write_varint(out, index.num_terms)
        for length in scorer._doc_lengths:
            _write_varint(out, length)
        for term in index.terms:
            write_term_section(out, index.posting_list(term))


def load_index_binary(path: Union[str, Path]) -> InvertedIndex:
    """Read a ``.bossx`` file back into an :class:`InvertedIndex`."""
    return parse_index_buffer(Path(path).read_bytes(), source=str(path))


def parse_index_buffer(data, source: str = "<buffer>") -> InvertedIndex:
    """Parse a complete ``.bossx`` image from any byte buffer.

    ``bytes`` input (the :func:`load_index_binary` path) produces
    ordinary ``bytes`` block payloads. A ``memoryview`` input — the
    :class:`repro.index.mmapio.MmapIndexStorage` path — produces
    payloads that are zero-copy views into the buffer, which the
    columnar decode kernels consume directly.
    """
    if data[:len(MAGIC)] != MAGIC:
        raise InvertedIndexError(f"{source} is not a BOSSIDX1 file")
    offset = len(MAGIC)
    header_struct = struct.Struct("<IdQdd")
    if offset + header_struct.size > len(data):
        raise InvertedIndexError("truncated header")
    num_docs, avgdl, total_tokens, k1, b = header_struct.unpack_from(
        data, offset
    )
    offset += header_struct.size
    num_terms, offset = _read_varint(data, offset)

    doc_lengths: List[int] = []
    for _ in range(num_docs):
        length, offset = _read_varint(data, offset)
        doc_lengths.append(length)
    scorer = BM25Scorer(doc_lengths, BM25Parameters(k1=k1, b=b))

    layout = AddressSpaceLayout()
    lists: Dict[str, CompressedPostingList] = {}
    for _ in range(num_terms):
        posting_list, offset = read_term_section(data, offset, layout)
        lists[posting_list.term] = posting_list
    if offset != len(data):
        raise InvertedIndexError(
            f"{len(data) - offset} trailing bytes after last term"
        )
    stats = DocumentStats(num_docs=num_docs, avgdl=avgdl,
                          total_tokens=total_tokens)
    return InvertedIndex(lists, scorer, layout, stats)
