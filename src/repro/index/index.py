"""The inverted index container used by BOSS, IIU and the Lucene model.

:class:`InvertedIndex` holds:

* per-document statistics (lengths, BM25 normalizers);
* one :class:`CompressedPostingList` per term — the block-compressed form
  with per-block metadata, the term's ``df``, its IDF, its whole-list
  maximum term-score (the WAND lookup-table input), and its byte address
  inside the SCM pool;
* the :class:`~repro.index.storage.AddressSpaceLayout` mapping lists to
  addresses so the memory model can classify access patterns.

The index is read-only once built (paper Section II-B: "Once created, the
inverted list is a (mostly) read-only data structure").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.compression.base import Codec, get_codec
from repro.errors import InvertedIndexError
from repro.index.blocks import BLOCK_METADATA_BYTES, Block
from repro.index.bm25 import BM25Scorer
from repro.index.postings import Posting
from repro.index.storage import AddressSpaceLayout, Region


@dataclass(frozen=True)
class DocumentStats:
    """Corpus-level document statistics."""

    num_docs: int
    avgdl: float
    total_tokens: int


class CompressedPostingList:
    """A term's block-compressed posting list plus its search metadata."""

    def __init__(self, term: str, scheme: str, blocks: Sequence[Block],
                 document_frequency: int, idf: float,
                 max_term_score: float, region: Region) -> None:
        if document_frequency != sum(b.metadata.count for b in blocks):
            raise InvertedIndexError(
                f"term {term!r}: df {document_frequency} does not match "
                f"block counts"
            )
        self.term = term
        #: Compression scheme name (the offloading API's ``compType``).
        self.scheme = scheme
        self.blocks = list(blocks)
        self.document_frequency = document_frequency
        self.idf = idf
        #: Whole-list score upper bound — the WAND module's lookup input.
        self.max_term_score = max_term_score
        #: Where the compressed payloads live in the SCM address space.
        self.region = region
        self._codec: Optional[Codec] = None

    @property
    def codec(self) -> Codec:
        """Codec instance for this list's scheme (lazily created)."""
        if self._codec is None:
            self._codec = get_codec(self.scheme)
        return self._codec

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def compressed_bytes(self) -> int:
        """Total payload bytes across blocks (excludes metadata)."""
        return sum(b.compressed_bytes for b in self.blocks)

    @property
    def metadata_bytes(self) -> int:
        """Size of the uncompressed per-block metadata array."""
        return BLOCK_METADATA_BYTES * len(self.blocks)

    def decode_block(self, index: int) -> List[Posting]:
        """Decompress block ``index``."""
        return self.blocks[index].decode(self.codec)

    def decode_block_arrays(self, index: int):
        """Fast-path decompress of block ``index``: ``(doc_ids, tfs)``.

        Returns two parallel ``array('I')`` buffers (see
        :meth:`repro.index.blocks.Block.decode_arrays`).
        """
        return self.blocks[index].decode_arrays(self.codec)

    def decode_all(self) -> List[Posting]:
        """Decompress the entire list (ground truth for tests)."""
        postings: List[Posting] = []
        for i in range(len(self.blocks)):
            postings.extend(self.decode_block(i))
        return postings

    def block_address(self, index: int) -> int:
        """Absolute SCM byte address of block ``index``'s payload."""
        return self.region.base + self.blocks[index].metadata.offset

    def __len__(self) -> int:
        return self.document_frequency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompressedPostingList term={self.term!r} scheme={self.scheme} "
            f"df={self.document_frequency} blocks={len(self.blocks)}>"
        )


class InvertedIndex:
    """Read-only, block-compressed inverted index over one shard.

    Construct via :class:`repro.index.builder.IndexBuilder`; direct
    construction is for tests and deserialization.
    """

    def __init__(self, lists: Dict[str, CompressedPostingList],
                 scorer: BM25Scorer, layout: AddressSpaceLayout,
                 stats: DocumentStats) -> None:
        self._lists = dict(lists)
        self._scorer = scorer
        self._layout = layout
        self._stats = stats

    @property
    def scorer(self) -> BM25Scorer:
        """The BM25 scorer bound to this corpus."""
        return self._scorer

    @property
    def layout(self) -> AddressSpaceLayout:
        return self._layout

    @property
    def stats(self) -> DocumentStats:
        return self._stats

    @property
    def num_terms(self) -> int:
        return len(self._lists)

    @property
    def terms(self) -> List[str]:
        """All indexed terms, sorted lexically (the paper's list order)."""
        return sorted(self._lists)

    @property
    def compressed_bytes(self) -> int:
        """Total compressed payload size across all lists."""
        return sum(pl.compressed_bytes for pl in self._lists.values())

    @property
    def uncompressed_bytes(self) -> int:
        """Raw size at 4 B per docID plus 4 B per tf."""
        return sum(8 * pl.document_frequency for pl in self._lists.values())

    def posting_list(self, term: str) -> CompressedPostingList:
        """Look up a term's compressed posting list."""
        try:
            return self._lists[term]
        except KeyError:
            raise InvertedIndexError(f"term {term!r} not in index") from None

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._lists))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<InvertedIndex terms={len(self._lists)} "
            f"docs={self._stats.num_docs} "
            f"compressed={self.compressed_bytes}B>"
        )
