"""Index construction: documents -> block-compressed inverted index.

The builder performs the paper's offline indexing pipeline:

1. accumulate ``(docID, tf)`` postings per term from tokenized documents;
2. compute BM25 document metadata (length normalizers) and per-term IDF;
3. choose the best compression scheme per posting list with the hybrid
   selector (paper Section V-A: "we find the best compression scheme
   among the five in advance and use the best for BOSS");
4. split each list into 128-posting blocks, compress d-gaps and term
   frequencies, and fill the 19-byte per-block metadata including the
   block's maximum term-score;
5. lay every list out in the SCM address space.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.compression.delta import deltas_from_doc_ids
from repro.compression.hybrid import HybridSelector
from repro.errors import InvertedIndexError
from repro.index.blocks import Block, build_block, split_into_blocks
from repro.index.bm25 import BM25Parameters, BM25Scorer
from repro.index.index import (
    CompressedPostingList,
    DocumentStats,
    InvertedIndex,
)
from repro.index.postings import PostingList
from repro.index.storage import AddressSpaceLayout


@dataclass(frozen=True)
class GlobalStatistics:
    """Corpus-wide statistics distributed to shard builders.

    In a sharded deployment (paper Figure 1(b)), each leaf holds a docID
    interval; computing IDF from the shard-local df would make the same
    query score differently per shard. Real systems distribute global
    dfs from the root at indexing time — this object carries them.
    """

    num_docs: int
    term_dfs: Dict[str, int] = field(default_factory=dict)

    def idf(self, term: str, local_df: int) -> float:
        """Corpus-level IDF for ``term`` (falls back to the local df)."""
        df = self.term_dfs.get(term, local_df)
        return math.log(
            (self.num_docs - df + 0.5) / (df + 0.5) + 1.0
        )


class IndexBuilder:
    """Accumulates documents and produces an :class:`InvertedIndex`.

    Documents must be added in increasing docID order (the builder
    assigns sequential docIDs itself via :meth:`add_document`).

    Parameters
    ----------
    params:
        BM25 free parameters.
    schemes:
        Candidate compression schemes for the hybrid selector; ``None``
        uses the paper's five-scheme set. Passing a single-element
        sequence pins every list to one scheme (useful for ablations).
    scorer:
        Optional pre-built scorer overriding the one derived from the
        declared document lengths. The live-index layer uses this to
        seal segments whose postings carry *global* docIDs while their
        BM25 statistics (N, avgdl, normalizers) reflect the live corpus
        rather than the segment's own contents.
    """

    def __init__(self, params: Optional[BM25Parameters] = None,
                 schemes: Optional[Sequence[str]] = None,
                 global_stats: Optional["GlobalStatistics"] = None,
                 scorer: Optional[BM25Scorer] = None) -> None:
        self._params = BM25Parameters() if params is None else params
        self._selector = HybridSelector(schemes)
        self._doc_lengths: List[int] = []
        self._postings: Dict[str, PostingList] = {}
        self._finished = False
        self._scorer = scorer
        #: Corpus-wide statistics for sharded deployments: when a shard
        #: holds only a docID interval, its local dfs would skew the IDF;
        #: the root node distributes the global numbers instead (the
        #: standard practice in distributed search).
        self._global_stats = global_stats

    @property
    def num_docs(self) -> int:
        return len(self._doc_lengths)

    def add_document(self, tokens: Iterable[str]) -> int:
        """Index one document; returns its assigned docID."""
        if self._finished:
            raise InvertedIndexError("builder already finished")
        token_list = list(tokens)
        if not token_list:
            raise InvertedIndexError("cannot index an empty document")
        doc_id = len(self._doc_lengths)
        self._doc_lengths.append(len(token_list))
        for term, tf in sorted(Counter(token_list).items()):
            posting_list = self._postings.get(term)
            if posting_list is None:
                posting_list = self._postings[term] = PostingList(term)
            posting_list.append(doc_id, tf)
        return doc_id

    def add_postings(self, term: str, postings: Sequence) -> None:
        """Low-level path: install a pre-built posting list for ``term``.

        ``postings`` is a sequence of ``(docID, tf)`` pairs with strictly
        increasing docIDs. Used by the synthetic corpus generators, which
        produce posting lists directly rather than token streams; the
        caller must also declare document lengths via
        :meth:`declare_documents`.
        """
        if self._finished:
            raise InvertedIndexError("builder already finished")
        if term in self._postings:
            raise InvertedIndexError(f"term {term!r} already has postings")
        posting_list = PostingList(term)
        for doc_id, tf in postings:
            posting_list.append(doc_id, tf)
        self._postings[term] = posting_list

    def declare_documents(self, doc_lengths: Sequence[int]) -> None:
        """Declare corpus document lengths for the posting-level path."""
        if self._doc_lengths:
            raise InvertedIndexError("documents already declared")
        self._doc_lengths = list(doc_lengths)

    def build(self) -> InvertedIndex:
        """Finalize: compress every list and lay it out in SCM space."""
        if self._finished:
            raise InvertedIndexError("builder already finished")
        if not self._doc_lengths and self._scorer is None:
            raise InvertedIndexError("no documents indexed")
        self._finished = True

        if self._scorer is not None:
            scorer = self._scorer
        else:
            scorer = BM25Scorer(self._doc_lengths, self._params)
        layout = AddressSpaceLayout()
        lists: Dict[str, CompressedPostingList] = {}

        # Lexical order: the paper's "inverted index is a sorted list of
        # posting lists in the lexical order of the indexed terms".
        for term in sorted(self._postings):
            posting_list = self._postings[term]
            max_doc = posting_list.doc_ids[-1]
            if max_doc >= scorer.id_space:
                raise InvertedIndexError(
                    f"term {term!r} references docID {max_doc} beyond corpus "
                    f"of {scorer.id_space} documents"
                )
            lists[term] = self._compress_list(term, posting_list, scorer,
                                              layout)

        if self._doc_lengths:
            total_tokens = sum(self._doc_lengths)
        else:
            total_tokens = int(round(scorer.avgdl * scorer.num_docs))
        stats = DocumentStats(
            num_docs=scorer.id_space,
            avgdl=scorer.avgdl,
            total_tokens=total_tokens,
        )
        return InvertedIndex(lists, scorer, layout, stats)

    def _compress_list(self, term: str, posting_list: PostingList,
                       scorer: BM25Scorer,
                       layout: AddressSpaceLayout) -> CompressedPostingList:
        """Pick a scheme, block-compress, and place one posting list."""
        df = posting_list.document_frequency
        if self._global_stats is not None:
            idf = self._global_stats.idf(term, df)
        else:
            idf = scorer.idf(df)

        # Hybrid selection is driven by the docID d-gap stream, the
        # dominant payload (paper Figure 3 measures d-gap streams).
        gaps = deltas_from_doc_ids(posting_list.doc_ids)
        scheme = self._selector.select(gaps).scheme

        from repro.compression.base import get_codec

        codec = get_codec(scheme)
        blocks: List[Block] = []
        offset = 0
        list_max_score = 0.0
        for _start, run in split_into_blocks(list(posting_list)):
            block_max = scorer.max_term_score(df, run, idf=idf)
            block = build_block(run, codec, block_max, offset)
            offset += block.compressed_bytes
            list_max_score = max(list_max_score, block_max)
            blocks.append(block)

        region = layout.allocate(term, offset)
        return CompressedPostingList(
            term=term,
            scheme=scheme,
            blocks=blocks,
            document_frequency=df,
            idf=idf,
            max_term_score=list_max_score,
            region=region,
        )
