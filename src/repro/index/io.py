"""Index file serialization.

The paper's ``init()`` call "loads the inverted index file (indexFile)
from disk to SCM memory pool". We persist indexes with pickle — the
index is built offline and is read-only afterwards (Section II-B), so a
straightforward binary snapshot is the appropriate tool. The format is
versioned to fail loudly rather than deserialize garbage.

**Trust boundary:** unpickling executes code chosen by whoever wrote
the file, so :func:`load_index` must only ever be pointed at snapshots
you (or your build pipeline) produced with :func:`save_index`. For
index files received from an untrusted source, use the structural
binary format in :mod:`repro.index.binaryio` instead — it parses plain
integers and bytes and cannot execute anything.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from repro.errors import InvertedIndexError
from repro.index.index import InvertedIndex

_MAGIC = "repro-boss-index"
_VERSION = 1


def save_index(index: InvertedIndex, path: Union[str, Path]) -> None:
    """Write an index snapshot to ``path``."""
    payload = {"magic": _MAGIC, "version": _VERSION, "index": index}
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_index(path: Union[str, Path]) -> InvertedIndex:
    """Read an index snapshot written by :func:`save_index`.

    Only load files from a trusted source: the snapshot is a pickle,
    and unpickling attacker-controlled bytes can execute arbitrary
    code. Untrusted index files belong to :mod:`repro.index.binaryio`,
    whose reader never evaluates its input.
    """
    with open(path, "rb") as handle:
        try:
            payload = pickle.load(handle)
        except Exception as exc:  # corrupt or foreign pickle
            raise InvertedIndexError(
                f"cannot read index file {path}: {exc}"
            ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise InvertedIndexError(f"{path} is not a BOSS index file")
    if payload.get("version") != _VERSION:
        raise InvertedIndexError(
            f"index file version {payload.get('version')} unsupported "
            f"(expected {_VERSION})"
        )
    index = payload["index"]
    if not isinstance(index, InvertedIndex):
        raise InvertedIndexError(f"{path} does not contain an index")
    return index
