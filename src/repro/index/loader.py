"""Front door for opening index files of either on-disk format.

Two formats exist side by side:

* ``.bossx`` (:mod:`repro.index.binaryio`) — structural binary, parsed
  without executing anything, and servable zero-copy through
  :class:`repro.index.mmapio.MmapIndexStorage`. This is the documented
  default for anything that leaves your machine.
* pickle snapshots (:mod:`repro.index.io`) — convenient, but loading
  one executes code chosen by whoever wrote the file. Only ever open
  pickles you produced yourself.

:func:`open_index` sniffs the leading magic and dispatches. Callers
that accept untrusted paths (the CLI) pass ``trust_pickle=False`` so a
pickle file is refused unless the user explicitly opts in with
``--trust-pickle``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import InvertedIndexError
from repro.index.binaryio import MAGIC, load_index_binary
from repro.index.index import InvertedIndex
from repro.index.io import load_index
from repro.index.mmapio import load_index_mmap

#: Accepted ``storage`` selectors for :func:`open_index`.
STORAGE_MODES = ("auto", "mmap", "binary", "pickle")


def sniff_format(path: Union[str, Path]) -> str:
    """``"bossx"`` if the file leads with the binary magic, else
    ``"pickle"`` (the pickle snapshot has no fixed leading bytes)."""
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    return "bossx" if head == MAGIC else "pickle"


def open_index(path: Union[str, Path], storage: str = "auto",
               trust_pickle: bool = True) -> InvertedIndex:
    """Load an index file, choosing the storage backend.

    ``storage`` is one of :data:`STORAGE_MODES`:

    * ``auto`` — sniff the magic; ``.bossx`` files are served via mmap
      (zero-copy), anything else is treated as a pickle snapshot.
    * ``mmap`` — require ``.bossx``, serve blocks as ``memoryview``
      slices of the mapping.
    * ``binary`` — require ``.bossx``, read fully into memory
      (payloads are independent ``bytes``; use when the file may be
      replaced or truncated while the index is live).
    * ``pickle`` — the :mod:`repro.index.io` snapshot format.

    ``trust_pickle=False`` refuses the pickle path outright — loading
    a pickle executes code chosen by the file's author, so callers in
    untrusted contexts must make the user opt in explicitly.
    """
    if storage not in STORAGE_MODES:
        raise InvertedIndexError(
            f"unknown storage {storage!r}; expected one of {STORAGE_MODES}"
        )
    if storage == "auto":
        storage = "mmap" if sniff_format(path) == "bossx" else "pickle"
    if storage == "pickle":
        if not trust_pickle:
            raise InvertedIndexError(
                f"{path} is a pickle snapshot; loading it can execute "
                f"arbitrary code. Pass --trust-pickle only for files "
                f"you built yourself, or rebuild with the binary "
                f"format (repro-boss build --format binary), which "
                f"needs no trust to open."
            )
        return load_index(path)
    if storage == "binary":
        return load_index_binary(path)
    return load_index_mmap(path)
