"""Posting and posting-list primitives.

A *posting* pairs a document identifier with the term's frequency in that
document; a *posting list* is the docID-sorted sequence of postings for
one term (paper Figure 1(a)). Posting lists here are the uncompressed,
in-memory form used during index construction and as the ground truth for
functional tests; the query-time representation is the block-compressed
:class:`repro.index.index.CompressedPostingList`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple, Sequence

from repro.errors import InvertedIndexError


class Posting(NamedTuple):
    """One ``(docID, term frequency)`` tuple."""

    doc_id: int
    tf: int


@dataclass
class PostingList:
    """DocID-sorted postings for a single term.

    Invariants (enforced on append):

    * docIDs strictly increase;
    * term frequencies are at least 1 (a posting exists only because the
      term occurs in the document).
    """

    term: str
    _postings: List[Posting] = field(default_factory=list)

    def append(self, doc_id: int, tf: int) -> None:
        """Add a posting; docIDs must arrive in increasing order."""
        if tf < 1:
            raise InvertedIndexError(
                f"term {self.term!r}: tf must be >= 1, got {tf}"
            )
        if self._postings and doc_id <= self._postings[-1].doc_id:
            raise InvertedIndexError(
                f"term {self.term!r}: docID {doc_id} out of order after "
                f"{self._postings[-1].doc_id}"
            )
        if doc_id < 0:
            raise InvertedIndexError(f"negative docID {doc_id}")
        self._postings.append(Posting(doc_id, tf))

    def extend(self, postings: Sequence[Posting]) -> None:
        """Append many postings, preserving the ordering invariant."""
        for posting in postings:
            self.append(posting.doc_id, posting.tf)

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term (``df``)."""
        return len(self._postings)

    @property
    def doc_ids(self) -> List[int]:
        """All docIDs, sorted ascending."""
        return [p.doc_id for p in self._postings]

    @property
    def tfs(self) -> List[int]:
        """Term frequencies aligned with :attr:`doc_ids`."""
        return [p.tf for p in self._postings]

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __getitem__(self, i: int) -> Posting:
        return self._postings[i]

    def __bool__(self) -> bool:
        return bool(self._postings)
