"""Offloading API: the paper's ``init()`` / ``search()`` interface.

Section IV-D defines two intrinsics a host application uses to drive
BOSS::

    void init(file indexFile, file configFile)
    val search(string qExpression, val compType[16], size_t nTerm,
               addr listAddr[16], addr resultAddr, val resultSize)

:class:`BossSession` is the Pythonic embodiment: ``init`` loads an index
file into the (simulated) SCM pool, installs the address mapping in the
MAI, and registers the decompression-module configuration programs;
``search`` parses the expression, resolves each term's compression
scheme and list address (the ``compType``/``listAddr`` arrays), bounds
the term count to the 16-term hardware limit, and executes on the
accelerator model.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.engine import BossAccelerator, BossConfig
from repro.core.mai import MemoryAccessInterface
from repro.core.query import parse_query
from repro.core.result import SearchResult
from repro.decompressor.configs import BUILTIN_PROGRAMS
from repro.decompressor.program import DecompressorProgram, parse_program
from repro.errors import ConfigurationError, QueryError
from repro.index.index import InvertedIndex
from repro.index.loader import open_index
from repro.observability.observer import NULL_OBSERVER, Observer

#: Hardware limit: four chained BOSS cores of 4-way mergers (Section IV-D).
MAX_QUERY_TERMS = 16


class BossSession:
    """A host <-> BOSS communication session over one memory node.

    ``faults`` optionally wraps the accelerator in a deterministic
    :class:`repro.faults.FaultyEngine` schedule (latency spikes,
    transient/permanent failures, corrupted payloads) — the single-node
    analogue of the cluster's fault studies. The zero-fault schedule is
    a guaranteed pass-through.
    """

    def __init__(self, config: Optional[BossConfig] = None,
                 observer: Observer = NULL_OBSERVER,
                 faults=None) -> None:
        self._config = BossConfig() if config is None else config
        self._observer = observer
        self._faults = faults
        self._index: Optional[InvertedIndex] = None
        self._accelerator: Optional[BossAccelerator] = None
        self._programs: Dict[str, DecompressorProgram] = {}
        self._mapped_bytes = 0
        self._vector_engine = None
        self._hybrid_cache: Dict[tuple, object] = {}
        self.mai = MemoryAccessInterface()

    @property
    def observer(self) -> Observer:
        """The observability hook threaded through this session."""
        return self._observer

    # ------------------------------------------------------------------
    # init()
    # ------------------------------------------------------------------

    def init(self, index: Union[InvertedIndex, str, Path],
             config_file: Union[str, Path, None] = None,
             storage: str = "auto",
             trust_pickle: bool = True) -> None:
        """Load the index into the pool and configure the device.

        ``index`` is an index file path (the paper's ``indexFile``) or an
        already-built :class:`InvertedIndex`. ``config_file`` optionally
        adds custom decompression programs (the paper's ``configFile``);
        the built-in programs for the five paper schemes are always
        registered.

        ``storage`` selects the on-disk backend for a path argument
        (see :func:`repro.index.loader.open_index`): ``auto`` serves
        ``.bossx`` files zero-copy via mmap and falls back to the
        pickle snapshot format otherwise. Pass ``trust_pickle=False``
        when the path may come from an untrusted source — unpickling
        executes code chosen by the file's author.
        """
        if isinstance(index, (str, Path)):
            index = open_index(index, storage=storage,
                               trust_pickle=trust_pickle)
        from repro.live.segments import SegmentedIndex

        self._index = index
        if isinstance(index, SegmentedIndex):
            # A live index is its own execution engine: it owns one
            # accelerator per sealed segment and merges their top-k.
            self._accelerator = index
        else:
            self._accelerator = BossAccelerator(index, self._config,
                                                observer=self._observer)
        if self._faults is not None and not self._faults.zero_fault:
            from repro.faults import FaultyEngine

            self._accelerator = FaultyEngine(self._accelerator,
                                             self._faults)
        # A new index invalidates any vector lane built over the old one.
        self._vector_engine = None
        self._hybrid_cache = {}
        self._programs = dict(BUILTIN_PROGRAMS)
        if config_file is not None:
            text = Path(config_file).read_text()
            program = parse_program(text, name=str(config_file))
            self._programs[program.name] = program
        # Install the physical mapping of the index region in the MAI:
        # identity-mapped huge pages over the allocated span.
        self._mapped_bytes = 0
        self._ensure_mapped()

    @property
    def initialized(self) -> bool:
        return self._accelerator is not None

    @property
    def index(self) -> InvertedIndex:
        self._require_init()
        return self._index

    @property
    def accelerator(self) -> BossAccelerator:
        self._require_init()
        return self._accelerator

    # ------------------------------------------------------------------
    # search()
    # ------------------------------------------------------------------

    def search(self, q_expression: str, k: Optional[int] = None,
               result_size: Optional[int] = None) -> SearchResult:
        """Offload one query.

        Mirrors the paper's argument checks: the expression is parsed,
        ``nTerm`` is bounded by the 16-term hardware limit, and each
        term's ``compType``/``listAddr`` is resolved from the index. A
        ``result_size`` smaller than the top-k output raises, modeling an
        undersized ``resultAddr`` buffer.
        """
        self._require_init()
        node = parse_query(q_expression)
        terms = node.terms()
        if len(terms) > MAX_QUERY_TERMS:
            return self._search_oversized(node, k, result_size)
        # Resolve compType/listAddr for every term — and verify the
        # device has a decompression program for each scheme.
        for comp_type in self.comp_types(terms):
            if comp_type not in self._programs:
                raise ConfigurationError(
                    f"no decompression program registered for {comp_type!r}"
                )
        effective_k = self._config.k if k is None else k
        if result_size is not None and result_size < 8 * effective_k:
            raise ConfigurationError(
                f"result buffer of {result_size} B cannot hold top-"
                f"{effective_k} (needs {8 * effective_k} B)"
            )
        return self._accelerator.search(node, k=k)

    def search_batch(self, q_expressions: List[str],
                     k: Optional[int] = None,
                     workers: Optional[int] = None):
        """Offload a batch of queries through the worker-pool driver.

        Each expression receives the same argument checks as
        :meth:`search` (term limit, registered decompression programs)
        *before* any query executes — a malformed batch fails fast.
        Returns a :class:`repro.batch.BatchResult` with per-query
        :class:`SearchResult` objects in input order plus wall-clock
        throughput statistics.
        """
        self._require_init()
        from repro.batch import run_query_batch

        for q_expression in q_expressions:
            node = parse_query(q_expression)
            terms = node.terms()
            if len(terms) <= MAX_QUERY_TERMS:
                for comp_type in self.comp_types(terms):
                    if comp_type not in self._programs:
                        raise ConfigurationError(
                            f"no decompression program registered for "
                            f"{comp_type!r}"
                        )
        return run_query_batch(self, q_expressions, k=k, workers=workers)

    # ------------------------------------------------------------------
    # Vector / hybrid lane
    # ------------------------------------------------------------------

    def init_vectors(self, embedding_spec=None,
                     num_clusters: Optional[int] = None,
                     codec: str = "fp32",
                     nprobe: Optional[int] = None,
                     kmeans_seed: int = 0,
                     device=None,
                     ivf_path=None):
        """Build (or load) the ANN lane over the initialized index.

        Embeds the corpus deterministically
        (:func:`repro.vector.embeddings.embed_index`), clusters it into
        an IVF layout, and attaches a
        :class:`~repro.vector.engine.VectorEngine` sharing this
        session's observer. ``ivf_path`` loads a pre-built ``.bossv``
        file instead of clustering (the embeddings are still derived
        from the index — they are a pure function of it).
        Returns the engine.
        """
        self._require_init()
        from repro.scm.device import OPTANE_NODE_4CH
        from repro.vector.embeddings import embed_index
        from repro.vector.engine import VectorEngine
        from repro.vector.ivf import build_ivf, load_ivf

        embeddings = embed_index(self._index, embedding_spec)
        if ivf_path is not None:
            ivf = load_ivf(ivf_path)
        else:
            ivf = build_ivf(embeddings, num_clusters=num_clusters,
                            codec=codec, seed=kmeans_seed)
        self._vector_engine = VectorEngine(
            ivf, embeddings,
            device=OPTANE_NODE_4CH if device is None else device,
            nprobe=nprobe, observer=self._observer,
        )
        self._hybrid_cache = {}
        return self._vector_engine

    @property
    def vector_engine(self):
        """The attached ANN lane (raises until :meth:`init_vectors`)."""
        if self._vector_engine is None:
            raise ConfigurationError(
                "vector lane not initialized; call init_vectors()"
            )
        return self._vector_engine

    def vector_search(self, q_expression, k: int = 10,
                      nprobe: Optional[int] = None):
        """ANN search over the attached vector lane."""
        return self.vector_engine.search(q_expression, k=k, nprobe=nprobe)

    def hybrid(self, mode: str = "rerank", first_stage_k: int = 100,
               nprobe: Optional[int] = None):
        """A (cached) :class:`~repro.vector.hybrid.HybridSearch` over
        this session's accelerator and vector lane — also the target to
        hand to :func:`repro.batch.run_query_batch` or the serving
        layer for batched/served hybrid traffic."""
        key = (mode, first_stage_k, nprobe)
        cached = self._hybrid_cache.get(key)
        if cached is None:
            from repro.vector.hybrid import HybridSearch

            cached = HybridSearch(
                self.accelerator, self.vector_engine, mode=mode,
                first_stage_k=first_stage_k, nprobe=nprobe,
                observer=self._observer,
            )
            self._hybrid_cache[key] = cached
        return cached

    def search_hybrid(self, q_expression, k: int = 10,
                      mode: str = "rerank", first_stage_k: int = 100,
                      nprobe: Optional[int] = None):
        """One hybrid query (BM25 -> vector rerank, or RRF fusion)."""
        return self.hybrid(
            mode=mode, first_stage_k=first_stage_k, nprobe=nprobe
        ).search(q_expression, k=k)

    def _search_oversized(self, node, k: Optional[int],
                          result_size: Optional[int]) -> SearchResult:
        """Host-split execution for queries beyond 16 terms.

        The paper's Section IV-D fallback: "The host first divides the
        query into several subqueries ... BOSS then processes each
        subquery without pruning or top-k selection, and stores all
        intermediate results in the host memory. Finally, the host
        processes gathered data to retrieve the final output."

        Pure unions and pure intersections of terms are supported — the
        shapes for which term-partitioned subqueries compose exactly:
        per-document scores simply add across disjoint term chunks.
        """
        from repro.core.query import AndNode, OrNode, TermNode
        from repro.core.topk import TopKQueue
        from repro.live.segments import SegmentedIndex

        if isinstance(self._index, SegmentedIndex):
            raise QueryError(
                "host-split execution beyond 16 terms requires a "
                "monolithic index, not a live segmented one"
            )
        if not isinstance(node, (AndNode, OrNode)) or not all(
            isinstance(c, TermNode) for c in node.children
        ):
            raise QueryError(
                "queries beyond 16 terms must be pure unions or pure "
                "intersections of terms for host-side splitting"
            )
        terms = node.terms()
        is_union = isinstance(node, OrNode)
        effective_k = self._config.k if k is None else k
        if result_size is not None and result_size < 8 * effective_k:
            raise ConfigurationError(
                f"result buffer of {result_size} B cannot hold top-"
                f"{effective_k} (needs {8 * effective_k} B)"
            )

        # Subqueries run without pruning or top-k: ET disabled, k large
        # enough to materialize every match.
        from dataclasses import replace

        exhaustive = BossAccelerator(
            self._index,
            replace(self._config, et_block=False, et_wand=False),
        )
        chunks = [
            terms[i:i + MAX_QUERY_TERMS]
            for i in range(0, len(terms), MAX_QUERY_TERMS)
        ]

        total_work = None
        total_traffic = None
        interconnect = 0
        scores: dict = {}
        membership: dict = {}
        for chunk in chunks:
            if len(chunk) == 1:
                sub = TermNode(chunk[0])
            elif is_union:
                sub = OrNode(tuple(TermNode(t) for t in chunk))
            else:
                # Chunk intersections: a document surviving every chunk
                # contains every query term, and its chunk scores add up
                # to the exact full-query score.
                sub = AndNode(tuple(TermNode(t) for t in chunk))
            bound = sum(
                self._index.posting_list(t).document_frequency
                for t in chunk
            )
            result = exhaustive.search(sub, k=max(1, bound))
            # Every intermediate entry crosses to host memory.
            interconnect += 8 * len(result.hits)
            for hit in result.hits:
                scores[hit.doc_id] = scores.get(hit.doc_id, 0.0) + hit.score
                membership[hit.doc_id] = membership.get(hit.doc_id, 0) + 1
            if total_work is None:
                total_work = result.work
                total_traffic = result.traffic
            else:
                total_work.merge(result.work)
                total_traffic.merge(result.traffic)

        topk = TopKQueue(effective_k)
        for doc_id in sorted(scores):
            if is_union or membership[doc_id] == len(chunks):
                topk.offer(doc_id, scores[doc_id])

        from repro.core.result import ScoredDocument

        hits = [ScoredDocument(d, s) for d, s in topk.results()]
        result = SearchResult(
            query=node,
            hits=hits,
            traffic=total_traffic,
            work=total_work,
            interconnect_bytes=interconnect,
        )
        if self._observer.enabled:
            # One trace for the whole host-split query; each subquery
            # occupies up to the full 4-core merger chain.
            import math

            cores = max(
                math.ceil(len(chunk) / 4) for chunk in chunks
            )
            self._observer.on_query_complete(result, engine="BOSS",
                                             cores_used=cores)
        return result

    def comp_types(self, terms: List[str]) -> List[str]:
        """The ``compType`` array for a term list.

        A live (segmented) index resolves each term against its newest
        sealed segment; terms living only in the write buffer are
        host-resident and uncompressed, so they contribute no entry.
        """
        self._require_init()
        if hasattr(self._index, "comp_types"):
            return self._index.comp_types(terms)
        return [self._index.posting_list(t).scheme for t in terms]

    def list_addresses(self, terms: List[str]) -> List[int]:
        """The ``listAddr`` array: each list's base address in the pool."""
        self._require_init()
        self._ensure_mapped()
        if hasattr(self._index, "list_address"):
            return [
                self.mai.translate(self._index.list_address(t))
                for t in terms
            ]
        return [
            self.mai.translate(self._index.posting_list(t).region.base)
            for t in terms
        ]

    def _ensure_mapped(self) -> None:
        """Grow the identity mapping to the current pool span.

        Monolithic indexes map once at ``init()``; a live index's pool
        grows with every seal, so the mapping is re-checked lazily.
        """
        span = self._index.layout.allocated_bytes
        if span <= self._mapped_bytes:
            return
        page = self.mai.page_size
        mapped = ((span + page - 1) // page) * page
        self.mai.map_range(0, 0, mapped)
        self._mapped_bytes = mapped

    def _require_init(self) -> None:
        if self._accelerator is None:
            raise ConfigurationError("session not initialized; call init()")
