"""Pipeline-stage breakdown: where a BOSS core's cycles go.

The paper's cycle-level simulator can see which module of Figure 4(b)'s
pipeline limits a query; this analyzer recovers the same visibility from
the work counters. For a fully pipelined core, each module's busy time
is independent and the query takes as long as the slowest one — so the
per-module busy times *are* the utilization profile, and the stage with
the largest share is the bottleneck.

Used by ``benchmarks/bench_pipeline_breakdown.py`` to show, e.g., that
union queries are decompression/memory bound while intersection queries
are dominated by the block-fetch/merge path — the balance the paper's
module provisioning (4 decompression + 4 scoring units per core)
reflects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.result import SearchResult
from repro.errors import ConfigurationError

#: Pseudo-stage for the SCM access time (the pipeline's memory side).
MEMORY_STAGE = "memory"


@dataclass(frozen=True)
class PipelineReport:
    """Busy seconds per pipeline stage for one query or batch."""

    engine: str
    stage_seconds: Dict[str, float]
    #: Query (or summed batch) critical-path seconds.
    critical_seconds: float

    @property
    def bottleneck(self) -> str:
        """Stage with the largest busy time."""
        return max(self.stage_seconds, key=self.stage_seconds.get)

    def utilization(self) -> Dict[str, float]:
        """Each stage's busy time as a fraction of the critical path.

        The bottleneck stage reads 1.0; idle stages read near 0 — the
        headroom the paper's module-count choices leave per query type.
        """
        if self.critical_seconds <= 0:
            raise ConfigurationError("empty pipeline report")
        return {
            stage: busy / self.critical_seconds
            for stage, busy in self.stage_seconds.items()
        }

    def merged_with(self, other: "PipelineReport") -> "PipelineReport":
        if other.engine != self.engine:
            raise ConfigurationError("cannot merge across engines")
        stages = dict(self.stage_seconds)
        for stage, busy in other.stage_seconds.items():
            stages[stage] = stages.get(stage, 0.0) + busy
        return PipelineReport(
            engine=self.engine,
            stage_seconds=stages,
            critical_seconds=self.critical_seconds
            + other.critical_seconds,
        )


def analyze_pipeline(model, result: SearchResult) -> PipelineReport:
    """Stage breakdown of one query under an accelerator timing model.

    ``model`` must expose ``module_names``, ``_module_cycles``,
    ``clock_hz`` and ``memory_seconds`` — both accelerator models do.
    """
    cycles = model._module_cycles(result)
    names = model.module_names
    if len(cycles) != len(names):
        raise ConfigurationError(
            "timing model stage labels out of sync with cycle vector"
        )
    stage_seconds = {
        name: c / model.clock_hz for name, c in zip(names, cycles)
    }
    stage_seconds[MEMORY_STAGE] = model.memory_seconds(result)
    critical = max(max(stage_seconds.values()), 1e-18)
    return PipelineReport(
        engine=model.name,
        stage_seconds=stage_seconds,
        critical_seconds=critical,
    )


def analyze_batch(model,
                  results: Sequence[SearchResult]) -> PipelineReport:
    """Summed stage breakdown over a batch (busy-time totals)."""
    if not results:
        raise ConfigurationError("no queries to analyze")
    reports: List[PipelineReport] = [
        analyze_pipeline(model, r) for r in results
    ]
    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merged_with(report)
    return merged
