"""Performance model: work metrics, timing, energy, and batch simulation.

The functional engines (BOSS, IIU, Lucene) annotate every query execution
with two measurements:

* a :class:`~repro.scm.traffic.TrafficCounter` of memory bytes moved, per
  access class and pattern;
* a :class:`~repro.sim.metrics.WorkCounters` of discrete work items per
  pipeline module (blocks fetched/skipped, postings decoded, documents
  evaluated, top-k inserts, ...).

The timing model (:mod:`repro.sim.timing`) converts both into seconds for
a given hardware configuration, applying the paper's bottleneck logic:
a fully pipelined core's query time is the maximum of its memory service
time and its slowest module's compute time; multi-core throughput is
limited by the shared device bandwidth.
"""

from repro.sim.metrics import WorkCounters
from repro.sim.timing import (
    BossTimingModel,
    IIUTimingModel,
    LuceneTimingModel,
    ThroughputReport,
    simulate_throughput,
)

__all__ = [
    "WorkCounters",
    "BossTimingModel",
    "IIUTimingModel",
    "LuceneTimingModel",
    "ThroughputReport",
    "simulate_throughput",
    # imported lazily by users; re-exported for discoverability
    "analyze_pipeline",
    "analyze_batch",
    "BossCoreSimulator",
]

from repro.sim.coresim import BossCoreSimulator  # noqa: E402
from repro.sim.pipeline import analyze_batch, analyze_pipeline  # noqa: E402
