"""Discrete-event simulation of one BOSS core's block pipeline.

The analytic timing model (:mod:`repro.sim.timing`) treats each pipeline
stage as independently busy and takes the max — exact for a perfectly
pipelined core with infinite inter-stage buffers. This module checks
that idealization with an event-driven model of Figure 4(b)'s pipeline
at *block* granularity:

    SCM channel -> per-term decompression lane -> merge -> score -> top-k

Each fetched block is an event-carrying task: it occupies the memory
channel for ``bytes / bandwidth``, then its term's decompression lane
for ``2 * postings / rate`` cycles, then feeds the shared downstream
stages. Finite lane buffers cause back-pressure: a lane stalls when the
merger falls behind, which is the effect the analytic model cannot see.

Inputs come from a real execution: the engine's ``fetch_log`` (block
sizes) plus the work counters (downstream op counts). Tests assert the
event-driven time is bounded below by the analytic bound and within a
small factor above it — evidence the max-of-stages model is a faithful
summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.result import SearchResult
from repro.errors import ConfigurationError
from repro.scm.device import MemoryDeviceModel, OPTANE_NODE_4CH

#: One fetched block: (term, block_index, payload_bytes). Records with
#: extra trailing fields (the engine's pattern-annotated fetch log) are
#: accepted; only the first three fields are read here.
FetchRecord = Tuple[str, int, int]


@dataclass(frozen=True)
class CoreSimReport:
    """Event-driven outcome for one query on one core."""

    #: Simulated wall-clock seconds for the query.
    total_seconds: float
    #: Busy seconds per resource.
    busy_seconds: Dict[str, float]
    #: Blocks processed.
    blocks: int
    #: The analytic lower bound (max of stage busy times).
    analytic_bound_seconds: float

    @property
    def pipeline_efficiency(self) -> float:
        """Analytic bound over simulated time (1.0 = perfectly pipelined)."""
        if self.total_seconds <= 0:
            return 1.0
        return min(1.0, self.analytic_bound_seconds / self.total_seconds)


class BossCoreSimulator:
    """Event-driven single-core pipeline model.

    Parameters
    ----------
    device:
        Memory device serving block fetches (sequential reads).
    clock_hz, decode_values_per_cycle:
        Match the analytic model's constants so the two are comparable.
    lane_buffer_blocks:
        Decoded blocks a lane may hold before stalling (the paper's
        on-chip buffers hold roughly one block per stream plus
        intermediates, Section IV-C "On-chip Buffers").
    """

    def __init__(self, device: MemoryDeviceModel = OPTANE_NODE_4CH,
                 clock_hz: float = 1.0e9,
                 decode_values_per_cycle: float = 0.8,
                 num_lanes: int = 4,
                 lane_buffer_blocks: int = 2) -> None:
        if num_lanes <= 0 or lane_buffer_blocks <= 0:
            raise ConfigurationError("lanes and buffers must be positive")
        self.device = device
        self.clock_hz = clock_hz
        self.decode_values_per_cycle = decode_values_per_cycle
        self.num_lanes = num_lanes
        self.lane_buffer_blocks = lane_buffer_blocks

    def simulate(self, result: SearchResult,
                 fetch_log: Sequence[FetchRecord]) -> CoreSimReport:
        """Replay one query's fetched blocks through the pipeline."""
        if not fetch_log:
            return CoreSimReport(
                total_seconds=0.0, busy_seconds={}, blocks=0,
                analytic_bound_seconds=0.0,
            )

        # Assign each query term a decompression lane (round-robin past
        # num_lanes, which only matters for >4-term queries).
        terms = list(dict.fromkeys(record[0] for record in fetch_log))
        lane_of = {
            term: i % self.num_lanes for i, term in enumerate(terms)
        }

        total_postings = max(1, result.work.postings_decoded)
        downstream_ops = (
            result.work.merge_ops
            + result.work.docs_evaluated
            + result.work.topk_inserts
        )
        # Downstream cost charged per posting so it distributes over the
        # block stream (merge + score + top-k behind the decoders).
        downstream_per_posting = downstream_ops / total_postings

        # Per-block service times.
        blocks: List[Tuple[int, float, float, float]] = []
        for record in fetch_log:
            term, _index, size = record[0], record[1], record[2]
            postings = size_to_postings(size, result)
            fetch_s = size / self.device.seq_read_bw
            decode_s = (
                2.0 * postings
                / (self.decode_values_per_cycle * self.clock_hz)
            )
            downstream_s = (
                postings * downstream_per_posting / self.clock_hz
            )
            blocks.append((lane_of[term], fetch_s, decode_s, downstream_s))

        # Event-driven replay: one memory channel, per-lane decoder with
        # a finite output buffer, one downstream (merge/score/topk) unit.
        channel_free = 0.0
        lane_free = [0.0] * self.num_lanes
        lane_busy = [0.0] * self.num_lanes
        # Completion times of decoded-but-unconsumed blocks per lane.
        lane_buffered: List[List[float]] = [[] for _ in range(self.num_lanes)]
        downstream_free = 0.0
        busy = {"memory": 0.0, "decode": 0.0, "downstream": 0.0}
        finish = 0.0

        for lane, fetch_s, decode_s, downstream_s in blocks:
            # Memory channel is a single sequential-stream server.
            fetch_done = channel_free + fetch_s
            channel_free = fetch_done
            busy["memory"] += fetch_s

            # Back-pressure: the lane cannot accept a new block while its
            # buffer is full of blocks the downstream has not drained.
            buffered = lane_buffered[lane]
            if len(buffered) >= self.lane_buffer_blocks:
                stall_until = buffered[0]
                buffered.pop(0)
            else:
                stall_until = 0.0
            decode_start = max(fetch_done, lane_free[lane], stall_until)
            decode_done = decode_start + decode_s
            lane_free[lane] = decode_done
            busy["decode"] += decode_s
            lane_busy[lane] += decode_s

            downstream_start = max(decode_done, downstream_free)
            downstream_done = downstream_start + downstream_s
            downstream_free = downstream_done
            busy["downstream"] += downstream_s
            buffered.append(downstream_done)
            finish = max(finish, downstream_done)

        # The analytic lower bound uses each *serial* resource's busy
        # time: the one memory channel, the busiest single decode lane,
        # and the shared downstream unit.
        analytic = max(busy["memory"], max(lane_busy), busy["downstream"])
        return CoreSimReport(
            total_seconds=finish,
            busy_seconds=busy,
            blocks=len(blocks),
            analytic_bound_seconds=analytic,
        )


def size_to_postings(size: int, result: SearchResult) -> int:
    """Estimate a block's posting count from its payload share.

    The fetch log records bytes; postings per block vary with the
    scheme. Distributing the query's total decoded postings by byte
    share keeps per-block work consistent with the counters.
    """
    from repro.scm.traffic import AccessClass

    list_bytes = max(1, result.traffic.bytes_for(AccessClass.LD_LIST))
    return max(1, round(result.work.postings_decoded * size / list_bytes))
