"""Discrete work counters shared by every engine.

Each counter corresponds to work performed by one pipeline module of the
paper's Figure 4(b) (or its software equivalent), so the timing model can
find the pipeline bottleneck, and the analysis figures (14, 15) can report
skip effectiveness.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class WorkCounters:
    """Work-item counts for one query execution."""

    #: Compressed blocks actually fetched and decompressed.
    blocks_fetched: int = 0
    #: Blocks skipped by the overlap check unit (intersection queries).
    blocks_skipped_overlap: int = 0
    #: Blocks skipped by the score-estimation unit (union ET).
    blocks_skipped_et: int = 0
    #: Block-metadata records inspected (19 B each, cheap sequential reads).
    metadata_inspected: int = 0
    #: Postings decompressed (docID + tf pairs through the decoder lanes).
    postings_decoded: int = 0
    #: Documents whose full BM25 query-score was computed — the paper's
    #: "evaluated documents" of Figure 14.
    docs_evaluated: int = 0
    #: Documents skipped by the union module's WAND pivoting.
    docs_skipped_wand: int = 0
    #: Documents that satisfied the query condition (set-operation output).
    docs_matched: int = 0
    #: Compare/advance steps in the union or intersection merger.
    merge_ops: int = 0
    #: Entries submitted to the top-k module.
    topk_inserts: int = 0
    #: Random-access probes issued by binary search (IIU's intersection).
    probe_reads: int = 0
    #: Iterative multi-term passes (IIU spills intermediates per pass).
    intermediate_passes: int = 0

    @property
    def blocks_skipped(self) -> int:
        """All skipped blocks regardless of mechanism."""
        return self.blocks_skipped_overlap + self.blocks_skipped_et

    @property
    def blocks_considered(self) -> int:
        """Fetched plus skipped — the block universe the query touched."""
        return self.blocks_fetched + self.blocks_skipped

    def merge(self, other: "WorkCounters") -> None:
        """Accumulate another execution's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "WorkCounters":
        out = WorkCounters()
        out.merge(self)
        return out
