"""Timing model: work + traffic -> seconds, and batch throughput.

The model follows the paper's bottleneck reasoning:

* a fully pipelined accelerator core finishes a query in
  ``max(memory service time, slowest module's compute time)``;
* a multi-core device shares its memory node's bandwidth, so batch time
  is ``max(compute-limited time, bandwidth-limited time,
  interconnect-limited time)`` — this is why IIU "hits the maximum
  performance with fewer cores than BOSS" (Section V-B) and why BOSS
  keeps scaling;
* the software baseline (Lucene) is a per-operation CPU cost model that
  is compute-dominated, reproducing its reported insensitivity to the
  memory device (<= 15% DRAM-vs-SCM delta, Figure 16).

All constants live here so calibration is one-file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.result import SearchResult
from repro.errors import ConfigurationError
from repro.scm.device import MemoryDeviceModel, OPTANE_NODE_4CH
from repro.scm.interconnect import CXL_LINK, InterconnectModel
from repro.sim.metrics import WorkCounters

NS = 1e-9


@dataclass(frozen=True)
class ThroughputReport:
    """Batch simulation outcome for one engine configuration."""

    engine: str
    num_queries: int
    num_cores: int
    #: Wall-clock seconds for the whole batch.
    batch_seconds: float
    #: Queries per second.
    throughput_qps: float
    #: Which resource bound the batch: "compute", "memory", "interconnect".
    bottleneck: str
    #: Seconds the batch would take if only this resource existed.
    compute_seconds: float
    memory_seconds: float
    interconnect_seconds: float
    #: Average device bandwidth demand over the batch (bytes/second).
    avg_bandwidth: float

    def speedup_over(self, baseline: "ThroughputReport") -> float:
        """Throughput ratio vs a baseline report."""
        return self.throughput_qps / baseline.throughput_qps


class _AcceleratorTimingModel:
    """Shared pipelined-accelerator math for BOSS and IIU."""

    name = "accelerator"
    clock_hz = 1.0e9
    #: Values each decompression module emits per cycle. Bit-serial
    #: extraction plus exception/delta stages sustain a bit under one
    #: value per cycle on average across the schemes.
    decode_values_per_cycle = 0.8
    #: Fixed per-query control overhead (command queue, scheduler, API).
    query_overhead = 2e-6

    def __init__(self, device: MemoryDeviceModel = OPTANE_NODE_4CH,
                 interconnect: InterconnectModel = CXL_LINK,
                 num_cores: int = 8) -> None:
        if num_cores <= 0:
            raise ConfigurationError("need at least one core")
        self.device = device
        self.interconnect = interconnect
        self.num_cores = num_cores

    # -- per query ------------------------------------------------------

    def compute_seconds(self, result: SearchResult) -> float:
        """Slowest pipeline module's busy time for one query."""
        cycles = self._module_cycles(result)
        return max(cycles) / self.clock_hz + self.query_overhead

    def memory_seconds(self, result: SearchResult) -> float:
        """Memory-node service time for one query's traffic."""
        return self.device.service_time(result.traffic)

    def query_seconds(self, result: SearchResult) -> float:
        """Latency of one query on an otherwise idle device."""
        return max(
            self.compute_seconds(result),
            self.memory_seconds(result),
            self.interconnect.transfer_time(result.interconnect_bytes),
        )

    def cores_used(self, result: SearchResult) -> int:
        return max(1, math.ceil(len(result.query.terms()) / 4))

    # -- batch ----------------------------------------------------------

    def batch(self, results: Sequence[SearchResult],
              num_cores: Optional[int] = None) -> ThroughputReport:
        """Throughput of a query batch on ``num_cores`` cores.

        Queries run concurrently across cores; the memory node and the
        host link are shared. Each bound is computed independently and
        the largest wins.
        """
        cores = self.num_cores if num_cores is None else num_cores
        if cores <= 0:
            raise ConfigurationError("need at least one core")
        compute_core_seconds = sum(
            self.compute_seconds(r) * self.cores_used(r) for r in results
        )
        compute_seconds = compute_core_seconds / cores
        memory_seconds = sum(self.memory_seconds(r) for r in results)
        interconnect_seconds = sum(
            self.interconnect.transfer_time(r.interconnect_bytes)
            for r in results
        )
        return _make_report(
            self.name, len(results), cores, compute_seconds,
            memory_seconds, interconnect_seconds,
            sum(r.traffic.total_bytes for r in results),
        )

    # -- internals ------------------------------------------------------

    def _module_cycles(self, result: SearchResult) -> List[float]:
        raise NotImplementedError


class BossTimingModel(_AcceleratorTimingModel):
    """BOSS core pipeline (Figure 4(b), Table I configuration).

    BOSS dedicates one decompression lane per posting-list stream, so a
    query with fewer terms than lanes cannot use the spare lanes
    (Section V-B: "BOSS only uses the same number of decompression and
    scoring units as the number of terms" — the lack of intra-query
    parallelism that lets IIU win Q1 against BOSS-exhaustive).
    """

    name = "BOSS"
    decompression_modules = 4
    scoring_modules = 4
    #: Pipeline stage labels, aligned with ``_module_cycles`` order.
    module_names = ("block-fetch", "decompression", "merger", "scoring",
                    "top-k")

    def _module_cycles(self, result: SearchResult) -> List[float]:
        work = result.work
        num_terms = len(result.query.terms())
        active_lanes = min(max(1, num_terms), self.decompression_modules)
        active_scorers = min(max(1, num_terms), self.scoring_modules)
        return [
            # Block fetch module: one metadata record per cycle.
            work.metadata_inspected,
            # Decompression: docID + tf values, one value/cycle/lane.
            2.0 * work.postings_decoded
            / (active_lanes * self.decode_values_per_cycle),
            # Set-operation mergers: one compare/advance per cycle.
            work.merge_ops,
            # Scoring: one document per cycle per active module.
            work.docs_evaluated / active_scorers,
            # Top-k shift-register: one insert per cycle.
            work.topk_inserts,
        ]


class IIUTimingModel(_AcceleratorTimingModel):
    """IIU model (Heo et al. [34]), same module budget as BOSS.

    IIU parallelizes a single stream across all its decompression and
    scoring units (intra-query parallelism), but pays for binary-search
    probes — each probe is a dependent random access charged at the
    device's read latency, partially overlapped four ways by the
    independent lanes.
    """

    name = "IIU"
    decompression_modules = 4
    scoring_modules = 4
    #: Pipeline stage labels, aligned with ``_module_cycles`` order.
    module_names = ("block-fetch", "decompression", "merger", "scoring",
                    "top-k")
    #: Binary-search probes of ONE membership test are dependent (depth
    #: ~log2 blocks), but tests for different candidates pipeline; the
    #: residual serialization is charged as a small per-probe stall on
    #: top of the random-read bandwidth already in the traffic counter.
    probe_stall_seconds = 12e-9

    def _module_cycles(self, result: SearchResult) -> List[float]:
        work = result.work
        return [
            work.metadata_inspected,
            2.0 * work.postings_decoded / self.decompression_modules,
            work.merge_ops,
            work.docs_evaluated / self.scoring_modules,
            # Top-k runs on the host and is ignored per the paper's
            # methodology ("For IIU, we ignore the top-k selection time").
            0.0,
        ]

    def compute_seconds(self, result: SearchResult) -> float:
        base = super().compute_seconds(result)
        return base + result.work.probe_reads * self.probe_stall_seconds


@dataclass(frozen=True)
class LuceneCostModel:
    """Per-operation CPU costs for the software baseline.

    Calibrated to land a production-grade engine's single-core posting
    throughput (tens of millions of postings/second) so that the
    BOSS-vs-Lucene speedup factors match the paper's shape.
    """

    decode_ns_per_posting: float = 12.0
    merge_ns_per_op: float = 8.0
    score_ns_per_doc: float = 35.0
    metadata_ns_per_block: float = 20.0
    topk_ns_per_insert: float = 25.0
    query_overhead_us: float = 12.0

    def compute_seconds(self, work: WorkCounters) -> float:
        """Single-thread CPU time for one query's work."""
        return (
            work.postings_decoded * self.decode_ns_per_posting * NS
            + work.merge_ops * self.merge_ns_per_op * NS
            + work.docs_evaluated * self.score_ns_per_doc * NS
            + work.metadata_inspected * self.metadata_ns_per_block * NS
            + work.topk_inserts * self.topk_ns_per_insert * NS
            + self.query_overhead_us * 1e-6
        )


class LuceneTimingModel:
    """Software search on host CPU cores reading the SCM pool.

    Each query runs on one thread; the batch spreads over ``num_cores``
    threads. All posting traffic crosses the shared interconnect (the
    host has no near-data placement), but the model is compute-dominated,
    matching the paper's observation that Lucene gains at most ~15% from
    DRAM.
    """

    name = "Lucene"

    def __init__(self, device: MemoryDeviceModel = OPTANE_NODE_4CH,
                 interconnect: InterconnectModel = CXL_LINK,
                 num_cores: int = 8,
                 costs: LuceneCostModel = LuceneCostModel()) -> None:
        if num_cores <= 0:
            raise ConfigurationError("need at least one core")
        self.device = device
        self.interconnect = interconnect
        self.num_cores = num_cores
        self.costs = costs

    def compute_seconds(self, result: SearchResult) -> float:
        return self.costs.compute_seconds(result.work)

    def memory_seconds(self, result: SearchResult) -> float:
        return self.device.service_time(result.traffic)

    def query_seconds(self, result: SearchResult) -> float:
        return max(
            self.compute_seconds(result),
            self.memory_seconds(result),
            self.interconnect.transfer_time(result.interconnect_bytes),
        )

    def cores_used(self, result: SearchResult) -> int:
        """A software query runs on one thread regardless of terms."""
        return 1

    def batch(self, results: Sequence[SearchResult],
              num_cores: Optional[int] = None) -> ThroughputReport:
        cores = self.num_cores if num_cores is None else num_cores
        if cores <= 0:
            raise ConfigurationError("need at least one core")
        compute_seconds = sum(
            self.compute_seconds(r) for r in results
        ) / cores
        memory_seconds = sum(self.memory_seconds(r) for r in results)
        interconnect_seconds = sum(
            self.interconnect.transfer_time(r.interconnect_bytes)
            for r in results
        )
        return _make_report(
            self.name, len(results), cores, compute_seconds,
            memory_seconds, interconnect_seconds,
            sum(r.traffic.total_bytes for r in results),
        )


def _make_report(name: str, num_queries: int, cores: int,
                 compute_seconds: float, memory_seconds: float,
                 interconnect_seconds: float,
                 total_bytes: int) -> ThroughputReport:
    batch_seconds = max(compute_seconds, memory_seconds,
                        interconnect_seconds)
    if batch_seconds <= 0:
        raise ConfigurationError("batch produced zero simulated time")
    bottleneck = "compute"
    if batch_seconds == memory_seconds:
        bottleneck = "memory"
    if batch_seconds == interconnect_seconds:
        bottleneck = "interconnect"
    return ThroughputReport(
        engine=name,
        num_queries=num_queries,
        num_cores=cores,
        batch_seconds=batch_seconds,
        throughput_qps=num_queries / batch_seconds,
        bottleneck=bottleneck,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        interconnect_seconds=interconnect_seconds,
        avg_bandwidth=total_bytes / batch_seconds,
    )


def simulate_throughput(model, results: Sequence[SearchResult],
                        num_cores: Optional[int] = None) -> ThroughputReport:
    """Convenience wrapper: ``model.batch(results, num_cores)``."""
    return model.batch(results, num_cores)
