"""IVF-style clustered ANN index with a packed on-device layout.

The layout mirrors how an inverted *lexical* index lives on the SCM
pool, because the access economics are the same (arXiv 2405.03267):

* **centroid table** — ``num_clusters x dim`` float32, small and hot,
  resident in DRAM like the per-block metadata arrays;
* **cluster regions** — for each cluster, the member entries packed
  back-to-back: ``doc_id`` (4 B) + the codec'd vector payload. Clusters
  are laid out contiguously in cluster-id order on the SCM pool, so a
  probe that scans cluster ``c`` reads one sequential run, and jumping
  from cluster ``a`` to a non-adjacent cluster ``b`` pays one random
  access — exactly the hop/scan split :class:`repro.vector.engine.
  VectorEngine` charges.

Two vector codecs:

* ``fp32`` — raw float32, ``4 * dim`` bytes per vector;
* ``int8`` — per-vector symmetric scalar quantization (scale =
  max(abs)/127, stored as one float32), ``dim + 4`` bytes per vector —
  the 3.6x layout shrink that trades bandwidth for recall.

Search *and* the brute-force oracle both score the **reconstructed**
(dequantized) vectors with one shared kernel, which is what makes the
``nprobe = num_clusters`` differential bit-exact for every codec.

Serialization (``.bossv``) reuses the varint/length-prefixed primitives
of the ``.bossx`` format (:mod:`repro.index.binaryio`) so the torn-file
fuzzing story stays one codec wide.
"""

from __future__ import annotations

from dataclasses import dataclass
from io import BytesIO
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, InvertedIndexError
from repro.index.binaryio import (
    read_bytes_field,
    read_varint,
    write_bytes_field,
    write_varint,
)
from repro.vector.embeddings import CorpusEmbeddings

MAGIC = b"BOSSVEC1"

#: Bytes of the packed doc_id field preceding each vector payload.
DOC_ID_BYTES = 4

VECTOR_CODECS = ("fp32", "int8")


def _payload_bytes_per_vector(codec: str, dim: int) -> int:
    if codec == "fp32":
        return 4 * dim
    if codec == "int8":
        return dim + 4  # int8 components + one float32 scale
    raise ConfigurationError(
        f"unknown vector codec {codec!r}; known: {', '.join(VECTOR_CODECS)}"
    )


@dataclass
class ClusterLayout:
    """One cluster's packed region on the device."""

    cluster_id: int
    #: Member docIDs, ascending (``[n]`` int64).
    doc_ids: np.ndarray
    #: Stored payload: float32 ``[n, dim]`` (fp32) or int8 ``[n, dim]``.
    codes: np.ndarray
    #: Per-vector dequantization scales (``[n]`` float32; all-ones for
    #: fp32, where reconstruction is the identity).
    scales: np.ndarray
    #: Byte offset of this cluster's region in the packed pool.
    base: int
    #: Packed size: ``n * (DOC_ID_BYTES + payload_bytes_per_vector)``.
    nbytes: int

    @property
    def num_vectors(self) -> int:
        return int(len(self.doc_ids))


class IVFIndex:
    """Centroid table + packed cluster regions + reconstruction cache."""

    def __init__(self, centroids: np.ndarray,
                 clusters: List[ClusterLayout], codec: str,
                 num_docs: int) -> None:
        if codec not in VECTOR_CODECS:
            raise ConfigurationError(f"unknown vector codec {codec!r}")
        self.centroids = centroids.astype(np.float32)
        self.clusters = clusters
        self.codec = codec
        self.num_docs = num_docs
        self._reconstructed: Dict[int, np.ndarray] = {}

    @property
    def dim(self) -> int:
        return int(self.centroids.shape[1])

    @property
    def num_clusters(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def centroid_bytes(self) -> int:
        """DRAM footprint of the centroid table (float32)."""
        return self.num_clusters * self.dim * 4

    @property
    def packed_bytes(self) -> int:
        """Total packed cluster bytes on the device pool."""
        return sum(c.nbytes for c in self.clusters)

    def reconstruct(self, cluster_id: int) -> np.ndarray:
        """The cluster's vectors as float32 ``[n, dim]``, dequantized.

        This is the single scoring substrate: :meth:`VectorEngine.search
        <repro.vector.engine.VectorEngine.search>` and the brute-force
        oracle both multiply against exactly this matrix, so quantization
        error cancels out of the differential and shows up only in
        recall@k against the raw-embedding ground truth.
        """
        cached = self._reconstructed.get(cluster_id)
        if cached is not None:
            return cached
        cluster = self.clusters[cluster_id]
        if self.codec == "fp32":
            matrix = cluster.codes.astype(np.float32, copy=False)
        else:
            matrix = (
                cluster.codes.astype(np.float32)
                * cluster.scales[:, None]
            )
        self._reconstructed[cluster_id] = matrix
        return matrix

    def validate(self) -> None:
        """Structural invariants: packing, ordering, docID coverage."""
        expected_base = 0
        seen = 0
        per_vector = DOC_ID_BYTES + _payload_bytes_per_vector(
            self.codec, self.dim
        )
        for cid, cluster in enumerate(self.clusters):
            if cluster.cluster_id != cid:
                raise InvertedIndexError("cluster ids out of order")
            if cluster.base != expected_base:
                raise InvertedIndexError(
                    f"cluster {cid} base {cluster.base} != packed offset "
                    f"{expected_base}"
                )
            if cluster.nbytes != cluster.num_vectors * per_vector:
                raise InvertedIndexError(
                    f"cluster {cid} nbytes disagrees with member count"
                )
            ids = cluster.doc_ids
            if len(ids) and np.any(np.diff(ids) <= 0):
                raise InvertedIndexError(
                    f"cluster {cid} docIDs not strictly ascending"
                )
            expected_base += cluster.nbytes
            seen += cluster.num_vectors
        if seen != self.num_docs:
            raise InvertedIndexError(
                f"clusters hold {seen} vectors for {self.num_docs} documents"
            )


# ---------------------------------------------------------------------------
# Build: seeded spherical k-means + codec packing
# ---------------------------------------------------------------------------


def _spherical_kmeans(vectors: np.ndarray, num_clusters: int,
                      iters: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic spherical k-means; returns (centroids, assignment).

    Initialization is evenly spaced docIDs (which, under the banded
    topic model, spreads seeds across topics); ties in the argmax
    assignment resolve to the lowest cluster id; an emptied cluster is
    reseeded on the document least served by its current centroid. No
    randomness beyond ``seed`` — the build is a pure function.
    """
    n = len(vectors)
    idx = np.linspace(0, n - 1, num_clusters).astype(np.int64)
    centroids = vectors[idx].copy()
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        sims = vectors @ centroids.T
        assignment = np.argmax(sims, axis=1)
        best = sims[np.arange(n), assignment]
        for cid in range(num_clusters):
            members = assignment == cid
            if not members.any():
                # Reseed on the globally worst-served document.
                worst = int(np.argmin(best))
                centroids[cid] = vectors[worst]
                assignment[worst] = cid
                best[worst] = 1.0
                continue
            mean = vectors[members].mean(axis=0)
            norm = float(np.linalg.norm(mean))
            centroids[cid] = (
                mean / norm if norm > 0 else centroids[cid]
            )
    centroids = centroids.astype(np.float32)
    sims = vectors @ centroids.T
    assignment = np.argmax(sims, axis=1)
    return centroids, assignment


def _quantize(vectors: np.ndarray, codec: str) -> Tuple[np.ndarray, np.ndarray]:
    """Codec-encode a float32 ``[n, dim]`` batch -> (codes, scales)."""
    if codec == "fp32":
        return (
            vectors.astype(np.float32),
            np.ones(len(vectors), dtype=np.float32),
        )
    peaks = np.abs(vectors).max(axis=1)
    scales = np.where(peaks > 0, peaks / 127.0, 1.0).astype(np.float32)
    codes = np.clip(
        np.round(vectors / scales[:, None]), -127, 127
    ).astype(np.int8)
    return codes, scales


def build_ivf(embeddings: CorpusEmbeddings,
              num_clusters: Optional[int] = None,
              codec: str = "fp32",
              kmeans_iters: int = 12,
              seed: int = 0) -> IVFIndex:
    """Cluster the document embeddings and pack the device layout.

    ``num_clusters`` defaults to ``round(sqrt(num_docs))``, the usual
    IVF sizing. The returned index passes :meth:`IVFIndex.validate`.
    """
    if codec not in VECTOR_CODECS:
        raise ConfigurationError(
            f"unknown vector codec {codec!r}; known: "
            f"{', '.join(VECTOR_CODECS)}"
        )
    if kmeans_iters < 1:
        raise ConfigurationError("kmeans_iters must be >= 1")
    vectors = embeddings.doc_vectors
    n = len(vectors)
    if num_clusters is None:
        num_clusters = max(1, int(round(n ** 0.5)))
    if not 1 <= num_clusters <= n:
        raise ConfigurationError(
            f"num_clusters must be in [1, {n}], got {num_clusters}"
        )
    centroids, assignment = _spherical_kmeans(
        vectors, num_clusters, kmeans_iters, seed
    )
    per_vector = DOC_ID_BYTES + _payload_bytes_per_vector(
        codec, int(vectors.shape[1])
    )
    clusters: List[ClusterLayout] = []
    base = 0
    for cid in range(num_clusters):
        doc_ids = np.flatnonzero(assignment == cid).astype(np.int64)
        codes, scales = _quantize(vectors[doc_ids], codec)
        nbytes = len(doc_ids) * per_vector
        clusters.append(ClusterLayout(
            cluster_id=cid, doc_ids=doc_ids, codes=codes,
            scales=scales, base=base, nbytes=nbytes,
        ))
        base += nbytes
    index = IVFIndex(centroids, clusters, codec, num_docs=n)
    index.validate()
    return index


# ---------------------------------------------------------------------------
# .bossv serialization
# ---------------------------------------------------------------------------


def save_ivf(index: IVFIndex, path: Union[str, Path]) -> int:
    """Write the index as a ``.bossv`` file; returns bytes written."""
    out = BytesIO()
    out.write(MAGIC)
    write_varint(out, index.dim)
    write_varint(out, index.num_docs)
    write_varint(out, index.num_clusters)
    write_bytes_field(out, index.codec.encode("ascii"))
    write_bytes_field(
        out, index.centroids.astype("<f4").tobytes()
    )
    for cluster in index.clusters:
        write_varint(out, cluster.num_vectors)
        prev = 0
        for doc_id in cluster.doc_ids:
            write_varint(out, int(doc_id) - prev)
            prev = int(doc_id)
        if index.codec == "fp32":
            write_bytes_field(out, cluster.codes.astype("<f4").tobytes())
            write_bytes_field(out, b"")
        else:
            write_bytes_field(out, cluster.codes.tobytes())
            write_bytes_field(out, cluster.scales.astype("<f4").tobytes())
    payload = out.getvalue()
    Path(path).write_bytes(payload)
    return len(payload)


def load_ivf(path: Union[str, Path]) -> IVFIndex:
    """Parse a ``.bossv`` file back into a bit-identical index."""
    data = Path(path).read_bytes()
    if data[:len(MAGIC)] != MAGIC:
        raise InvertedIndexError(
            f"{path}: not a .bossv file (bad magic)"
        )
    offset = len(MAGIC)
    dim, offset = read_varint(data, offset)
    num_docs, offset = read_varint(data, offset)
    num_clusters, offset = read_varint(data, offset)
    codec_raw, offset = read_bytes_field(data, offset)
    codec = codec_raw.decode("ascii")
    if codec not in VECTOR_CODECS:
        raise InvertedIndexError(f"{path}: unknown vector codec {codec!r}")
    centroid_raw, offset = read_bytes_field(data, offset)
    if len(centroid_raw) != num_clusters * dim * 4:
        raise InvertedIndexError(f"{path}: centroid table size mismatch")
    centroids = np.frombuffer(centroid_raw, dtype="<f4").reshape(
        num_clusters, dim
    ).astype(np.float32)
    per_vector = DOC_ID_BYTES + _payload_bytes_per_vector(codec, dim)
    clusters: List[ClusterLayout] = []
    base = 0
    for cid in range(num_clusters):
        count, offset = read_varint(data, offset)
        doc_ids = np.empty(count, dtype=np.int64)
        prev = 0
        for i in range(count):
            delta, offset = read_varint(data, offset)
            prev += delta
            doc_ids[i] = prev
        codes_raw, offset = read_bytes_field(data, offset)
        scales_raw, offset = read_bytes_field(data, offset)
        if codec == "fp32":
            if len(codes_raw) != count * dim * 4 or scales_raw:
                raise InvertedIndexError(
                    f"{path}: cluster {cid} payload size mismatch"
                )
            codes = np.frombuffer(codes_raw, dtype="<f4").reshape(
                count, dim
            ).astype(np.float32)
            scales = np.ones(count, dtype=np.float32)
        else:
            if len(codes_raw) != count * dim or len(scales_raw) != count * 4:
                raise InvertedIndexError(
                    f"{path}: cluster {cid} payload size mismatch"
                )
            codes = np.frombuffer(codes_raw, dtype=np.int8).reshape(
                count, dim
            ).copy()
            scales = np.frombuffer(scales_raw, dtype="<f4").astype(
                np.float32
            )
        nbytes = count * per_vector
        clusters.append(ClusterLayout(
            cluster_id=cid, doc_ids=doc_ids, codes=codes,
            scales=scales, base=base, nbytes=nbytes,
        ))
        base += nbytes
    index = IVFIndex(centroids, clusters, codec, num_docs=num_docs)
    index.validate()
    return index
