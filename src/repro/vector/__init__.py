"""Vector retrieval lane: ANN search on the SCM device model.

BOSS covers every query stage "up to the first top-k candidate
retrieval stage" and leaves re-ranking to software. This package opens
the second retrieval workload that second-tier memory papers argue for
(arXiv 2405.03267, NCAM): IVF-style clustered ANN search whose data
layout lives on the same :mod:`repro.scm` device model, metered through
the same bandwidth-class accounting — sequential cluster scans ride the
25.6 GB/s lane, the per-``nprobe`` cluster hops pay the 6.6 GB/s random
rate.

* :mod:`repro.vector.embeddings` — deterministic synthetic embeddings
  correlated with the corpus topic structure;
* :mod:`repro.vector.ivf` — seeded spherical k-means, fp32/int8 vector
  codecs, packed cluster layouts, ``.bossv`` serialization;
* :mod:`repro.vector.engine` — :class:`VectorEngine` with per-query
  traffic conservation and a brute-force differential oracle;
* :mod:`repro.vector.hybrid` — BM25 -> vector rerank and RRF fusion,
  plus the serving-layer target.
"""

from repro.vector.embeddings import (
    CorpusEmbeddings,
    EmbeddingSpec,
    embed_corpus,
    embed_index,
)
from repro.vector.engine import VectorEngine, VectorSearchResult
from repro.vector.hybrid import (
    HybridResult,
    HybridSearch,
    HybridServingTarget,
    VectorReranker,
    rrf_fuse,
)
from repro.vector.ivf import (
    IVFIndex,
    build_ivf,
    load_ivf,
    save_ivf,
)

__all__ = [
    "CorpusEmbeddings",
    "EmbeddingSpec",
    "HybridResult",
    "HybridSearch",
    "HybridServingTarget",
    "IVFIndex",
    "VectorEngine",
    "VectorReranker",
    "VectorSearchResult",
    "build_ivf",
    "embed_corpus",
    "embed_index",
    "load_ivf",
    "rrf_fuse",
    "save_ivf",
]
