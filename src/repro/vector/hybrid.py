"""Hybrid retrieval: lexical candidates + vector evidence, two ways.

**Rerank mode** is the paper's own division of labor taken one step
further: BOSS produces the first-stage BM25 top-k1 and the software
second stage (:class:`repro.rerank.TwoStageSearch`) rescores it — here
with :class:`VectorReranker`, cosine similarity between each
candidate's stored embedding and the query embedding. Candidate doc
vectors are random single-vector loads (``LD Score / random``), the
access shape the IVF engine's sequential cluster scans exist to avoid —
which is exactly the rerank-vs-scan bandwidth trade the hybrid lane is
built to expose.

**RRF mode** runs both retrievers independently and fuses their
*rankings* with Reciprocal Rank Fusion::

    score(d) = sum over rankings r of  1 / (C + rank_r(d))

(C = 60 by convention; rank is 1-based; ties break on doc_id). RRF is
scale-free — it never compares a BM25 score to a cosine — which is why
it is the standard baseline for hybrid fusion.

:class:`HybridServingTarget` adapts either mode to the serving layer's
``search(expression, k)`` + ``service_time`` contract, so hybrid
traffic rides the existing admission/SLO/planner timelines unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.result import ScoredDocument
from repro.errors import ConfigurationError, QueryError
from repro.observability.observer import NULL_OBSERVER, Observer
from repro.rerank import CandidateFeatures, Reranker, TwoStageSearch
from repro.scm.device import MemoryDeviceModel
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter
from repro.vector.engine import VectorEngine, VectorSearchResult

HYBRID_MODES = ("rerank", "rrf")

#: Conventional RRF dampening constant.
RRF_C = 60.0


class VectorReranker(Reranker):
    """Second-stage scorer: cosine(query embedding, doc embedding).

    Each scored candidate loads one stored doc vector from the pool —
    ``dim * 4`` bytes of ``LD Score / random`` traffic, accumulated in
    :attr:`last_traffic` per query (reset by :meth:`begin_query`).
    ``weight_lexical`` optionally blends the first-stage BM25 score
    back in (0 = pure vector rescoring).
    """

    #: Vector rescoring is heavier host work than the linear model.
    cost_per_candidate: float = 5e-6

    def __init__(self, embeddings, device: MemoryDeviceModel,
                 weight_lexical: float = 0.0) -> None:
        self._embeddings = embeddings
        self._device = device
        self.weight_lexical = weight_lexical
        self._query_vec: Optional[np.ndarray] = None
        self.last_traffic = TrafficCounter()

    def begin_query(self, query) -> None:
        self.last_traffic = TrafficCounter()
        try:
            self._query_vec = self._embeddings.query_vector(query.terms())
        except QueryError:
            # No query term is known to the embedding model: degrade to
            # the first-stage order rather than failing the query.
            self._query_vec = None

    def score(self, features: CandidateFeatures) -> float:
        lexical = self.weight_lexical * features.first_stage_score
        if self._query_vec is None:
            return lexical
        nbytes = self._embeddings.dim * 4
        self.last_traffic.record(AccessClass.LD_SCORE,
                                 AccessPattern.RANDOM, nbytes)
        doc_vec = self._embeddings.doc_vectors[features.doc_id]
        return lexical + float(doc_vec @ self._query_vec)

    @property
    def last_read_seconds(self) -> float:
        """Modeled device seconds for the query's doc-vector loads."""
        nbytes = self.last_traffic.bytes_for(AccessClass.LD_SCORE)
        return self._device.read_time(nbytes, AccessPattern.RANDOM)


def rrf_fuse(rankings: Sequence[Sequence[int]], k: int,
             c: float = RRF_C) -> List[ScoredDocument]:
    """Reciprocal Rank Fusion over docID rankings (deterministic)."""
    if k <= 0:
        raise ConfigurationError("k must be positive")
    if c <= 0:
        raise ConfigurationError("RRF constant must be positive")
    scores: dict = {}
    for ranking in rankings:
        for rank, doc_id in enumerate(ranking, start=1):
            scores[doc_id] = scores.get(doc_id, 0.0) + 1.0 / (c + rank)
    fused = sorted(
        (ScoredDocument(doc_id, score) for doc_id, score in scores.items()),
        key=lambda hit: (-hit.score, hit.doc_id),
    )
    return fused[:k]


@dataclass
class HybridResult:
    """Outcome of one hybrid query, with both retrievers' ledgers."""

    expression: str
    mode: str
    hits: List[ScoredDocument]
    #: First-stage / lexical-side result (engine ``SearchResult``).
    lexical: object
    #: The ANN side (RRF mode only; ``None`` in rerank mode, where the
    #: vector evidence arrives as per-candidate loads instead).
    vector: Optional[VectorSearchResult]
    #: Modeled host seconds in the second stage (rerank mode).
    rerank_seconds: float = 0.0
    #: Candidates rescored (rerank mode) or fused (RRF mode).
    candidates: int = 0
    #: End-to-end modeled seconds: lexical device time + vector device
    #: time + host rerank time.
    modeled_seconds: float = 0.0


class HybridSearch:
    """Lexical + vector retrieval, composed either way.

    Parameters
    ----------
    engine:
        The lexical first stage (anything with ``search(query, k)``).
    vector_engine:
        The ANN lane (:class:`~repro.vector.engine.VectorEngine`).
    mode:
        ``"rerank"`` (BM25 top-k1 -> vector rescoring) or ``"rrf"``
        (independent retrieval, rank fusion).
    first_stage_k:
        Candidate depth: first-stage k in rerank mode, per-retriever
        depth in RRF mode.
    nprobe:
        Override for the vector engine's probe width (RRF mode).
    """

    def __init__(self, engine, vector_engine: VectorEngine,
                 mode: str = "rerank", first_stage_k: int = 100,
                 nprobe: Optional[int] = None, rrf_c: float = RRF_C,
                 observer: Observer = NULL_OBSERVER) -> None:
        if mode not in HYBRID_MODES:
            raise ConfigurationError(
                f"unknown hybrid mode {mode!r}; known: "
                f"{', '.join(HYBRID_MODES)}"
            )
        if first_stage_k <= 0:
            raise ConfigurationError("first_stage_k must be positive")
        self.mode = mode
        self._engine = engine
        self._vector_engine = vector_engine
        self._first_stage_k = first_stage_k
        self._nprobe = nprobe
        self._rrf_c = rrf_c
        self._observer = observer
        self._device = vector_engine.device
        if mode == "rerank":
            self._reranker = VectorReranker(
                vector_engine.embeddings, device=vector_engine.device
            )
            self._two_stage = TwoStageSearch(
                engine, self._reranker, first_stage_k=first_stage_k,
                observer=observer,
            )

    def search(self, query, k: int = 10) -> HybridResult:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if self.mode == "rerank":
            result = self._rerank_search(query, k)
        else:
            result = self._rrf_search(query, k)
        if self._observer.enabled:
            self._observer.on_hybrid_complete(result)
        return result

    def _rerank_search(self, query, k: int) -> HybridResult:
        reranked = self._two_stage.search(query, k=k)
        lexical = reranked.first_stage
        modeled = (
            self._device.service_time(lexical.traffic)
            + reranked.rerank_seconds
            + self._reranker.last_read_seconds
        )
        return HybridResult(
            expression=str(reranked.query),
            mode="rerank",
            hits=reranked.hits,
            lexical=lexical,
            vector=None,
            rerank_seconds=reranked.rerank_seconds,
            candidates=reranked.candidates,
            modeled_seconds=modeled,
        )

    def _rrf_search(self, query, k: int) -> HybridResult:
        lexical = self._engine.search(query, k=self._first_stage_k)
        vector = self._vector_engine.search(
            query, k=self._first_stage_k, nprobe=self._nprobe
        )
        hits = rrf_fuse(
            [
                [hit.doc_id for hit in lexical.hits],
                [hit.doc_id for hit in vector.hits],
            ],
            k, c=self._rrf_c,
        )
        fused = len(
            {hit.doc_id for hit in lexical.hits}
            | {hit.doc_id for hit in vector.hits}
        )
        modeled = (
            self._device.service_time(lexical.traffic)
            + vector.modeled_seconds
        )
        return HybridResult(
            expression=str(lexical.query),
            mode="rrf",
            hits=hits,
            lexical=lexical,
            vector=vector,
            candidates=fused,
            modeled_seconds=modeled,
        )


class HybridServingTarget:
    """Serving-layer adapter: ``search(expression, k)`` + deterministic
    ``service_time`` so hybrid runs ride the virtual timeline."""

    def __init__(self, hybrid: HybridSearch) -> None:
        self._hybrid = hybrid

    @property
    def hybrid(self) -> HybridSearch:
        return self._hybrid

    def search(self, expression, k: int = 10) -> HybridResult:
        return self._hybrid.search(expression, k=k)

    def service_time(self, request, result) -> float:
        """Pass to :class:`repro.serving.server.QueryServer` as its
        ``service_time`` so runs are workload-pure."""
        return result.modeled_seconds
