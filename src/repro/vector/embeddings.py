"""Deterministic synthetic embeddings correlated with corpus topics.

The synthetic corpora (:mod:`repro.workloads.corpus`) have no text to
embed, but they do have *structure*: docID locality means nearby
documents are topically related (a crawl ordering clusters pages by
site/day). The embedding model makes that structure explicit:

* the docID space is divided into ``num_topics`` contiguous bands, each
  owning a random unit *topic vector*;
* a document's embedding is its band's topic vector plus seeded
  Gaussian noise, renormalized — documents in the same band are close,
  documents in different bands are near-orthogonal;
* a term's embedding is the normalized mean of its posting documents'
  embeddings — a term whose postings cluster in one docID band (the
  corpus's ``locality`` knob) gets a crisp topical direction, a uniform
  stopword-like term averages out to mush;
* a query embedding is the normalized sum of its known terms' vectors.

Everything is a pure function of ``(spec, index identity)``: the same
corpus spec and embedding seed reproduce the same float32 vectors
bit-for-bit, which is what lets the differential oracle and the recall
floors pin exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ConfigurationError, QueryError


@dataclass(frozen=True)
class EmbeddingSpec:
    """Parameters of the synthetic embedding model."""

    #: Embedding dimensionality (small by real-model standards; the
    #: bandwidth accounting scales linearly, so nothing qualitative
    #: depends on it).
    dim: int = 32
    #: Contiguous docID bands, each with its own topic direction.
    num_topics: int = 8
    #: Gaussian noise mixed into each document vector before
    #: renormalization; 0 collapses every band to a single point.
    noise: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise ConfigurationError("embedding dim must be >= 2")
        if self.num_topics < 1:
            raise ConfigurationError("need at least one topic")
        if self.noise < 0:
            raise ConfigurationError("noise must be >= 0")


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return (matrix / norms).astype(np.float32)


class CorpusEmbeddings:
    """Unit-norm float32 embeddings for one corpus: docs, terms, queries."""

    def __init__(self, spec: EmbeddingSpec, doc_vectors: np.ndarray,
                 doc_topics: np.ndarray,
                 term_vectors: Dict[str, np.ndarray]) -> None:
        self.spec = spec
        #: ``[num_docs, dim]`` float32, rows unit-norm; row i = doc i.
        self.doc_vectors = doc_vectors
        #: Topic band of each document (``[num_docs]`` int).
        self.doc_topics = doc_topics
        self.term_vectors = term_vectors

    @property
    def num_docs(self) -> int:
        return int(self.doc_vectors.shape[0])

    @property
    def dim(self) -> int:
        return int(self.doc_vectors.shape[1])

    def query_vector(self, terms: Iterable[str]) -> np.ndarray:
        """Normalized sum of the known terms' vectors.

        Unknown terms are skipped, mirroring lexical retrieval (a term
        missing from the index matches nothing); a query with *no*
        known terms has no direction and raises.
        """
        acc = np.zeros(self.dim, dtype=np.float64)
        known = 0
        for term in terms:
            vec = self.term_vectors.get(term)
            if vec is not None:
                acc += vec
                known += 1
        if not known:
            raise QueryError("query has no terms known to the embedding model")
        norm = float(np.linalg.norm(acc))
        if norm == 0:
            # Opposed term vectors cancelled exactly; keep determinism.
            acc[0] = 1.0
            norm = 1.0
        return (acc / norm).astype(np.float32)

    def exact_topk(self, query: np.ndarray, k: int) -> List[int]:
        """Ground-truth docIDs: cosine top-k over the *raw* float32
        embeddings (the recall@k reference, independent of any codec)."""
        scores = self.doc_vectors @ query.astype(np.float32)
        order = np.lexsort((np.arange(len(scores)), -scores))
        return [int(d) for d in order[:k]]


def embed_index(index, spec: Optional[EmbeddingSpec] = None) -> CorpusEmbeddings:
    """Build embeddings for any :class:`~repro.index.index.InvertedIndex`.

    Document vectors depend only on ``(num_docs, spec)``; term vectors
    are derived from the index's posting lists (decoded once, on the
    host — an offline build step, not query traffic).
    """
    spec = EmbeddingSpec() if spec is None else spec
    num_docs = index.stats.num_docs
    if num_docs < 1:
        raise ConfigurationError("cannot embed an empty index")
    rng = np.random.default_rng(spec.seed)
    topics = _normalize_rows(
        rng.standard_normal((spec.num_topics, spec.dim))
    )
    doc_topics = (
        np.arange(num_docs, dtype=np.int64) * spec.num_topics
    ) // num_docs
    noise = rng.standard_normal((num_docs, spec.dim)) * spec.noise
    doc_vectors = _normalize_rows(topics[doc_topics] + noise)

    term_vectors: Dict[str, np.ndarray] = {}
    for term in index.terms:
        doc_ids = [p.doc_id for p in index.posting_list(term).decode_all()]
        mean = doc_vectors[np.asarray(doc_ids, dtype=np.int64)].mean(axis=0)
        norm = float(np.linalg.norm(mean))
        if norm == 0:
            mean = topics[0].astype(np.float64)
            norm = 1.0
        term_vectors[term] = (mean / norm).astype(np.float32)
    return CorpusEmbeddings(spec, doc_vectors, doc_topics, term_vectors)


def embed_corpus(corpus, spec: Optional[EmbeddingSpec] = None) -> CorpusEmbeddings:
    """Embeddings for a :class:`~repro.workloads.corpus.SyntheticCorpus`.

    When no spec is given, the embedding seed is derived from the corpus
    seed so "same corpus spec" implies "same embeddings" — the
    reproducibility contract of the vector lane.
    """
    if spec is None:
        spec = EmbeddingSpec(seed=corpus.spec.seed * 6151 + 3)
    elif spec.seed == 0:
        spec = replace(spec, seed=corpus.spec.seed * 6151 + 3)
    return embed_index(corpus.index, spec)
