"""ANN query execution with bandwidth-class traffic accounting.

A probe of the IVF index is two memory phases, each charged in the same
:class:`~repro.scm.traffic.TrafficCounter` currency as the lexical
engines:

* **centroid scan** — the whole DRAM-resident centroid table is read
  once per query, charged ``LD Score / sequential`` and timed at the
  DRAM device (this is the per-document-metadata analogue);
* **cluster scans** — each probed cluster's packed region is read off
  the SCM pool. The first ``min(access_granule, region)`` bytes of a
  probe that *jumps* (the previous scanned region is not physically
  adjacent) are charged ``LD List / random`` — the hop the paper's
  Table I asymmetry punishes — and the remainder streams at ``LD List /
  sequential``. Probing clusters that happen to be neighbors in the
  packed layout coalesces into one run, hop-free.

Every query asserts the **bytes-conservation identity**::

    centroid_bytes + cluster_seq_bytes + cluster_hop_bytes == demand

where demand is computed independently from the layout (table size +
probed region sizes). A mismatch raises ``SimulationError`` — the
accounting cannot silently drift from the data actually touched.

The **differential oracle**: :meth:`VectorEngine.brute_force` scores
every cluster with the same reconstructed-matrix kernel ``search``
uses, so ``search(nprobe=num_clusters)`` is bit-identical to it for
every codec; recall@k is measured against the codec-independent raw
embedding ground truth (:meth:`CorpusEmbeddings.exact_topk`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.result import ScoredDocument
from repro.errors import ConfigurationError, SimulationError
from repro.observability.observer import NULL_OBSERVER, Observer
from repro.scm.device import DDR4_4CH, OPTANE_NODE_4CH, MemoryDeviceModel
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter
from repro.vector.embeddings import CorpusEmbeddings
from repro.vector.ivf import IVFIndex


@dataclass
class VectorSearchResult:
    """Outcome of one ANN query, with its full traffic ledger."""

    #: The query's term list (or ``<vector>`` for raw-vector queries).
    expression: str
    hits: List[ScoredDocument]
    traffic: TrafficCounter
    nprobe: int
    clusters_probed: int
    vectors_scanned: int
    #: Conservation identity components (bytes).
    centroid_bytes: int
    cluster_seq_bytes: int
    cluster_hop_bytes: int
    demand_bytes: int
    #: Modeled device seconds: centroid read at the DRAM device +
    #: cluster scan at the pool device.
    modeled_seconds: float = 0.0
    #: Clusters whose probe coalesced with the previous scanned region
    #: (physically adjacent in the packed layout — no random hop).
    coalesced_probes: int = 0


class VectorEngine:
    """IVF search over one device-resident vector index.

    Parameters
    ----------
    ivf:
        The clustered index (:func:`repro.vector.ivf.build_ivf`).
    embeddings:
        The embedding model; supplies query vectors and the recall
        ground truth.
    device:
        Pool device holding the packed cluster regions (default: the
        Table I 4-channel Optane node).
    centroid_device:
        Device holding the centroid table (default: DDR4 — centroids
        are DRAM-resident by design).
    nprobe:
        Default clusters probed per query (default: ``max(1,
        num_clusters // 4)``, which clears the pinned recall floor on
        the preset corpora).
    """

    def __init__(self, ivf: IVFIndex, embeddings: CorpusEmbeddings,
                 device: MemoryDeviceModel = OPTANE_NODE_4CH,
                 centroid_device: MemoryDeviceModel = DDR4_4CH,
                 nprobe: Optional[int] = None,
                 observer: Observer = NULL_OBSERVER) -> None:
        if ivf.num_docs != embeddings.num_docs:
            raise ConfigurationError(
                f"index holds {ivf.num_docs} vectors, embeddings "
                f"{embeddings.num_docs}"
            )
        if nprobe is None:
            nprobe = max(1, ivf.num_clusters // 4)
        if not 1 <= nprobe <= ivf.num_clusters:
            raise ConfigurationError(
                f"nprobe must be in [1, {ivf.num_clusters}], got {nprobe}"
            )
        self.ivf = ivf
        self.embeddings = embeddings
        self.device = device
        self.centroid_device = centroid_device
        self.nprobe = nprobe
        self._observer = observer

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def query_vector(self, query: Union[str, Sequence[str], np.ndarray]
                     ) -> np.ndarray:
        """Resolve a query (term list, expression string, or raw
        vector) to a unit float32 vector."""
        if isinstance(query, np.ndarray):
            vec = query.astype(np.float32)
            norm = float(np.linalg.norm(vec))
            if norm == 0:
                raise ConfigurationError("query vector has zero norm")
            return vec / norm
        terms = self._terms_of(query)
        return self.embeddings.query_vector(terms)

    def search(self, query: Union[str, Sequence[str], np.ndarray],
               k: int = 10,
               nprobe: Optional[int] = None) -> VectorSearchResult:
        """Probe the ``nprobe`` nearest clusters, return cosine top-k."""
        if k <= 0:
            raise ConfigurationError("k must be positive")
        nprobe = self.nprobe if nprobe is None else nprobe
        if not 1 <= nprobe <= self.ivf.num_clusters:
            raise ConfigurationError(
                f"nprobe must be in [1, {self.ivf.num_clusters}], "
                f"got {nprobe}"
            )
        q = self.query_vector(query)
        # Centroid scan: nearest-nprobe selection, ties to lower id.
        sims = self.ivf.centroids @ q
        order = np.lexsort((np.arange(len(sims)), -sims))
        probe_order = [int(c) for c in order[:nprobe]]
        return self._scan(self._expression_of(query), q, probe_order, k)

    def brute_force(self, query: Union[str, Sequence[str], np.ndarray],
                    k: int = 10) -> List[ScoredDocument]:
        """Differential oracle: every cluster, same kernel, no traffic.

        Scores are computed per cluster on the *reconstructed* vectors —
        identical arithmetic to :meth:`search` — so an all-clusters
        probe must reproduce this list bit-for-bit.
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        q = self.query_vector(query)
        candidates = self._score_clusters(q, range(self.ivf.num_clusters))
        return self._top_k(candidates, k)

    def recall_at_k(self, queries: Sequence, k: int = 10,
                    nprobe: Optional[int] = None) -> float:
        """Mean recall@k of IVF search vs the raw-embedding exact top-k."""
        if not queries:
            raise ConfigurationError("recall needs at least one query")
        total = 0.0
        for query in queries:
            q = self.query_vector(query)
            truth = set(self.embeddings.exact_topk(q, k))
            got = {
                hit.doc_id
                for hit in self.search(query, k=k, nprobe=nprobe).hits
            }
            total += len(truth & got) / float(k)
        return total / len(queries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _scan(self, expression: str, q: np.ndarray,
              probe_order: List[int], k: int) -> VectorSearchResult:
        ivf = self.ivf
        traffic = TrafficCounter()
        granule = self.device.access_granule

        # Phase 1: centroid table, sequential, DRAM-resident.
        centroid_bytes = ivf.centroid_bytes
        traffic.record(AccessClass.LD_SCORE, AccessPattern.SEQUENTIAL,
                       centroid_bytes, accesses=ivf.num_clusters)

        # Phase 2: probed cluster regions on the pool device.
        seq_bytes = 0
        hop_bytes = 0
        coalesced = 0
        vectors_scanned = 0
        demand = centroid_bytes
        prev_end: Optional[int] = None
        candidates: List[ScoredDocument] = []
        for cid in probe_order:
            cluster = ivf.clusters[cid]
            demand += cluster.nbytes
            if cluster.nbytes:
                if prev_end is not None and cluster.base == prev_end:
                    # Physically adjacent to the region just scanned:
                    # the stream continues, no seek.
                    traffic.record(AccessClass.LD_LIST,
                                   AccessPattern.SEQUENTIAL,
                                   cluster.nbytes)
                    seq_bytes += cluster.nbytes
                    coalesced += 1
                else:
                    hop = min(granule, cluster.nbytes)
                    traffic.record(AccessClass.LD_LIST,
                                   AccessPattern.RANDOM, hop)
                    hop_bytes += hop
                    rest = cluster.nbytes - hop
                    if rest:
                        traffic.record(AccessClass.LD_LIST,
                                       AccessPattern.SEQUENTIAL, rest)
                        seq_bytes += rest
                prev_end = cluster.base + cluster.nbytes
            vectors_scanned += cluster.num_vectors
            candidates.extend(self._score_clusters(q, (cid,)))

        self._check_conservation(centroid_bytes, seq_bytes, hop_bytes,
                                 demand)
        seconds = (
            self.centroid_device.read_time(centroid_bytes,
                                           AccessPattern.SEQUENTIAL)
            + self.device.read_time(seq_bytes, AccessPattern.SEQUENTIAL)
            + self.device.read_time(hop_bytes, AccessPattern.RANDOM)
        )
        result = VectorSearchResult(
            expression=expression,
            hits=self._top_k(candidates, k),
            traffic=traffic,
            nprobe=len(probe_order),
            clusters_probed=len(probe_order),
            vectors_scanned=vectors_scanned,
            centroid_bytes=centroid_bytes,
            cluster_seq_bytes=seq_bytes,
            cluster_hop_bytes=hop_bytes,
            demand_bytes=demand,
            modeled_seconds=seconds,
            coalesced_probes=coalesced,
        )
        if self._observer.enabled:
            self._observer.on_vector_query(result)
        return result

    def _score_clusters(self, q: np.ndarray,
                        cluster_ids) -> List[ScoredDocument]:
        """The shared scoring kernel: per-cluster reconstructed matrix
        times the query — used verbatim by search and the oracle."""
        out: List[ScoredDocument] = []
        for cid in cluster_ids:
            cluster = self.ivf.clusters[cid]
            if not cluster.num_vectors:
                continue
            scores = self.ivf.reconstruct(cid) @ q
            out.extend(
                ScoredDocument(int(doc_id), float(score))
                for doc_id, score in zip(cluster.doc_ids, scores)
            )
        return out

    @staticmethod
    def _top_k(candidates: List[ScoredDocument],
               k: int) -> List[ScoredDocument]:
        candidates.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return candidates[:k]

    @staticmethod
    def _check_conservation(centroid_bytes: int, seq_bytes: int,
                            hop_bytes: int, demand: int) -> None:
        """``centroid + cluster scans == demand`` — raise on drift."""
        moved = centroid_bytes + seq_bytes + hop_bytes
        if moved != demand:
            raise SimulationError(
                f"vector traffic conservation violated: centroid "
                f"{centroid_bytes} + seq {seq_bytes} + hop {hop_bytes} "
                f"= {moved} != demand {demand}"
            )

    @staticmethod
    def _terms_of(query: Union[str, Sequence[str]]) -> List[str]:
        if isinstance(query, str):
            from repro.core.query import parse_query

            return list(dict.fromkeys(parse_query(query).terms()))
        return list(dict.fromkeys(query))

    @staticmethod
    def _expression_of(query: Union[str, Sequence[str], np.ndarray]) -> str:
        if isinstance(query, np.ndarray):
            return "<vector>"
        if isinstance(query, str):
            return query
        return " ".join(query)
