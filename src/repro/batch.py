"""Batched parallel query driver (host-side throughput harness).

The paper evaluates BOSS on query *streams*, not single queries: the
throughput model charges each query's pipelined latency against a pool
of cores. This module is the host-side analogue for the simulator
itself — it executes a batch of query expressions concurrently on a
worker-thread pool and reports wall-clock throughput, while keeping
every functional and modeled output bit-identical to running the same
queries serially:

* **engines and sessions** (anything with ``search(expression, k)``)
  parallelize over whole queries — each ``search()`` call builds its own
  counters and cursors, so queries are independent;
* **clusters** (:class:`repro.cluster.root.SearchCluster`) parallelize
  over *(query, shard)* pairs: the root's plan step runs serially, leaf
  executions fan out to the pool, and the root merge runs in the main
  thread in query order over shard-ordered results — so the merged
  hits, traffic and work are independent of pool scheduling.

Determinism with observability: when the target (or any cluster leaf)
carries an enabled observer, the driver drops to one worker so traces
and registry counters are recorded in the exact serial order.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import List, Optional, Sequence, Union

from repro.core.query import QueryNode
from repro.core.topk import DEFAULT_K
from repro.errors import ConfigurationError

#: Upper bound on the default pool size; beyond this the GIL-bound
#: simulator gains nothing from more threads.
MAX_DEFAULT_WORKERS = 8


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    Empty samples yield 0.0 (same guard as ``queries_per_second``) so a
    report with no per-query measurements renders instead of raising.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    index = max(0, min(n - 1, int(q * n + 0.999999) - 1))
    return sorted_values[index]


class BatchReport:
    """Wall-clock statistics of one batch run.

    All times are *host* wall-clock seconds — deliberately distinct
    from the simulator's modeled seconds (see
    ``docs/performance-model.md``). ``per_query_seconds`` entries are
    per-query compute times (for clusters: slowest shard plus the root
    merge), so queue waiting inside the pool is excluded.
    """

    __slots__ = ("num_queries", "workers", "wall_seconds",
                 "per_query_seconds", "queries_degraded")

    def __init__(self, num_queries: int, workers: int,
                 wall_seconds: float,
                 per_query_seconds: List[float],
                 queries_degraded: int = 0) -> None:
        self.num_queries = num_queries
        self.workers = workers
        self.wall_seconds = wall_seconds
        self.per_query_seconds = per_query_seconds
        #: Cluster runs only: queries whose merge skipped a failed shard.
        self.queries_degraded = queries_degraded

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_queries / self.wall_seconds

    @property
    def p50_seconds(self) -> float:
        return _percentile(sorted(self.per_query_seconds), 0.50)

    @property
    def p95_seconds(self) -> float:
        return _percentile(sorted(self.per_query_seconds), 0.95)

    @property
    def p99_seconds(self) -> float:
        return _percentile(sorted(self.per_query_seconds), 0.99)

    @property
    def degraded_fraction(self) -> float:
        if self.num_queries <= 0:
            return 0.0
        return self.queries_degraded / self.num_queries

    def to_dict(self) -> dict:
        return {
            "num_queries": self.num_queries,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "queries_per_second": self.queries_per_second,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "p99_seconds": self.p99_seconds,
            "queries_degraded": self.queries_degraded,
            "degraded_fraction": self.degraded_fraction,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BatchReport queries={self.num_queries} "
            f"workers={self.workers} "
            f"qps={self.queries_per_second:.1f}>"
        )


class BatchResult:
    """Per-query results (in input order) plus the batch report."""

    __slots__ = ("results", "report")

    def __init__(self, results: list, report: BatchReport) -> None:
        self.results = results
        self.report = report

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]


def _default_workers() -> int:
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


def _observer_enabled(target) -> bool:
    observer = getattr(target, "observer", None)
    return bool(observer is not None and getattr(observer, "enabled", False))


def run_query_batch(target, expressions: Sequence[Union[str, QueryNode]],
                    k: Optional[int] = None,
                    workers: Optional[int] = None) -> BatchResult:
    """Execute a batch of queries on ``target`` with a worker pool.

    ``target`` is a per-shard engine / session (``search(expression,
    k)``) or a :class:`~repro.cluster.root.SearchCluster`. Results come
    back in input order and are bit-identical to serial execution.
    """
    expressions = list(expressions)
    if not expressions:
        raise ConfigurationError("query batch is empty")
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    from repro.cluster.root import SearchCluster

    if isinstance(target, SearchCluster):
        return _run_cluster_batch(target, expressions, k, workers)
    return _run_engine_batch(target, expressions, k, workers)


def _run_engine_batch(engine, expressions, k, workers) -> BatchResult:
    if workers is None:
        workers = _default_workers()
    if _observer_enabled(engine):
        workers = 1

    def _one(expression):
        start = perf_counter()
        result = engine.search(expression, k=k)
        return result, perf_counter() - start

    wall_start = perf_counter()
    if workers == 1:
        timed = [_one(expression) for expression in expressions]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_one, e) for e in expressions]
            try:
                timed = [f.result() for f in futures]
            except BaseException:
                # Don't abandon queued work on a mid-collection failure.
                for future in futures:
                    future.cancel()
                raise
    wall = perf_counter() - wall_start
    report = BatchReport(
        num_queries=len(expressions), workers=workers, wall_seconds=wall,
        per_query_seconds=[seconds for _, seconds in timed],
    )
    return BatchResult([result for result, _ in timed], report)


def _run_cluster_batch(cluster, expressions, k, workers) -> BatchResult:
    effective_k = DEFAULT_K if k is None else k
    if workers is None:
        workers = _default_workers()
    if _observer_enabled(cluster) or any(
        _observer_enabled(engine) for engine in cluster.engines
    ):
        workers = 1

    from repro.cluster.resilience import execute_leaf
    from repro.errors import LeafExecutionError

    # Root-side dissection is serial (and cheap): parse + per-shard
    # pruning for every query up front.
    plans = [cluster.plan(expression) for expression in expressions]

    def _leaf(shard_index, pruned, expression):
        # Resilient leaf execution: retries, per-attempt timeout and
        # replica failover happen inside the worker, so a shard's
        # recovery never blocks other (query, shard) pairs. Raises
        # LeafExecutionError (naming query and shard) only under a
        # no-degradation policy.
        return execute_leaf(
            cluster.shard_candidates(shard_index), pruned, effective_k,
            cluster.policy, shard_index, expression=expression,
            observer=cluster.observer, clock=cluster.clock,
        )

    wall_start = perf_counter()
    futures = {}
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for query_index, (_, per_shard) in enumerate(plans):
            for shard_index, pruned in enumerate(per_shard):
                if pruned is None:
                    continue
                futures[(query_index, shard_index)] = pool.submit(
                    _leaf, shard_index, pruned, expressions[query_index]
                )
        # Collect by (query, shard) index and merge in the main thread:
        # shard order is fixed per query and query order is input order,
        # so the merge is independent of pool scheduling.
        results = []
        per_query_seconds = []
        queries_degraded = 0
        try:
            for query_index, (node, per_shard) in enumerate(plans):
                leaf_results = []
                outcomes = []
                slowest_shard = 0.0
                for shard_index, pruned in enumerate(per_shard):
                    if pruned is None:
                        leaf_results.append(None)
                        outcomes.append(None)
                        continue
                    outcome = futures[(query_index, shard_index)].result()
                    leaf_results.append(outcome.result)
                    outcomes.append(outcome)
                    slowest_shard = max(slowest_shard,
                                        outcome.elapsed_seconds)
                merge_start = perf_counter()
                merged = cluster.merge(node, leaf_results, k=effective_k,
                                       outcomes=outcomes)
                merge_seconds = perf_counter() - merge_start
                if merged.degraded:
                    queries_degraded += 1
                results.append(merged)
                per_query_seconds.append(slowest_shard + merge_seconds)
        except BaseException as error:
            # A leaf failed under a no-degradation policy (or the merge
            # itself raised): cancel all pending (query, shard) work so
            # the pool drains promptly instead of grinding through a
            # batch whose result has already been abandoned.
            for future in futures.values():
                future.cancel()
            if isinstance(error, LeafExecutionError):
                raise
            raise LeafExecutionError(
                f"cluster batch aborted at query index {query_index} "
                f"({expressions[query_index]!r}): {error!r}",
                expression=expressions[query_index],
            ) from error
    wall = perf_counter() - wall_start
    report = BatchReport(
        num_queries=len(expressions), workers=workers, wall_seconds=wall,
        per_query_seconds=per_query_seconds,
        queries_degraded=queries_degraded,
    )
    return BatchResult(results, report)
