"""Online serving: open-loop load generation, admission control, SLOs.

The serving layer turns the closed, pre-collected batches of
:mod:`repro.batch` into continuous operation: queries *arrive* on a
seeded open-loop timeline (:mod:`repro.serving.loadgen`), wait in a
bounded admission queue, and execute on a worker pool with per-query
deadlines and shed/degraded accounting
(:mod:`repro.serving.server`). See ``docs/serving.md`` for the
architecture and the open- vs closed-loop methodology.
"""

from repro.serving.loadgen import (
    PoissonArrivals,
    Request,
    TraceArrivals,
    build_requests,
    splice_requests,
    zipf_workload,
)
from repro.serving.server import (
    ADMISSION_POLICIES,
    QueryServer,
    RequestOutcome,
    ServingConfig,
    ServingReport,
    ServingResult,
)

__all__ = [
    "ADMISSION_POLICIES",
    "PoissonArrivals",
    "QueryServer",
    "Request",
    "RequestOutcome",
    "ServingConfig",
    "ServingReport",
    "ServingResult",
    "TraceArrivals",
    "build_requests",
    "splice_requests",
    "zipf_workload",
]
