"""Open-loop load generation: seeded arrival processes over query logs.

A *closed-loop* driver (like :func:`repro.batch.run_query_batch`) only
issues the next query once a worker frees up, so it can never observe
queueing: the system sets its own pace. Serving systems are measured
*open loop* — queries arrive on their own schedule whether or not the
server has capacity, which is what exposes queue growth, shedding, and
the latency knee (see ``docs/serving.md``).

This module produces deterministic open-loop workloads: an arrival
process (:class:`PoissonArrivals` for memoryless traffic at a target
rate, :class:`TraceArrivals` to replay a recorded timeline) paired with
a query log (the Zipf-skewed Table II mix from
:class:`repro.workloads.QuerySampler`). Everything is a pure function
of its seed: the same seed replays the same expressions *and* the same
arrival instants, which is what lets tests pin admission and shedding
decisions exactly.

A useful property of :class:`PoissonArrivals`: two processes with the
same seed but different rates draw the same underlying exponential
variates, so their timelines are exact time-rescalings of each other.
The offered-load sweep in ``benchmarks/bench_serving.py`` leans on
this — every sweep point replays the *same* traffic shape, only
faster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.workloads.queries import QuerySampler


@dataclass(frozen=True)
class Request:
    """One request due to arrive at the server at a fixed instant.

    Plain requests are queries; a request carrying ``update`` is a
    mutation for a live (:mod:`repro.live`) target instead — the server
    dispatches it to ``target.apply_update`` rather than ``search``.
    """

    request_id: int
    #: Arrival instant on the serving timeline (seconds from epoch 0).
    arrival_seconds: float
    expression: str
    #: ``None`` for queries; ``(kind, payload)`` for mutations, e.g.
    #: ``("add", tokens)`` or ``("delete_oldest", None)``.
    update: Optional[tuple] = None
    #: Owning tenant, for the I/O planner's per-tenant byte quotas
    #: (:mod:`repro.ioplanner.fairness`); ignored by the plain server.
    tenant: str = "default"


class PoissonArrivals:
    """Memoryless arrivals at ``rate_qps``, seeded and deterministic."""

    def __init__(self, rate_qps: float, seed: int = 0) -> None:
        if rate_qps <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {rate_qps}"
            )
        self.rate_qps = rate_qps
        self.seed = seed

    def times(self, count: int) -> List[float]:
        """The first ``count`` arrival instants, ascending."""
        if count < 0:
            raise ConfigurationError("arrival count must be >= 0")
        rng = random.Random(f"poisson:{self.seed}")
        now = 0.0
        out = []
        for _ in range(count):
            now += rng.expovariate(self.rate_qps)
            out.append(now)
        return out


class TraceArrivals:
    """Replay of an explicit, non-decreasing arrival timeline."""

    def __init__(self, times: Sequence[float]) -> None:
        times = [float(t) for t in times]
        if any(t < 0 for t in times):
            raise ConfigurationError("trace arrivals must be >= 0")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ConfigurationError(
                "trace arrivals must be non-decreasing"
            )
        self._times = times

    def times(self, count: int) -> List[float]:
        if count > len(self._times):
            raise ConfigurationError(
                f"trace holds {len(self._times)} arrivals, "
                f"{count} requested"
            )
        return list(self._times[:count])


def splice_requests(base: Sequence[Request],
                    extras: Sequence[Request]) -> List[Request]:
    """Merge two request streams into one arrival-ordered workload.

    The serving loop admits requests in list order and keys outcomes by
    ``request_id``, so the merged stream is renumbered ``0..n-1`` (the
    sort is stable: a maintenance request spliced at an instant shared
    with a query keeps its relative order). This is how background
    maintenance — live-index mutations, cluster rebalance moves
    (:func:`repro.cluster.rebalance.rebalance_requests`) — rides the
    same open-loop timeline as foreground queries.
    """
    from dataclasses import replace

    merged = sorted([*base, *extras], key=lambda r: r.arrival_seconds)
    return [
        replace(request, request_id=i) for i, request in enumerate(merged)
    ]


def build_requests(expressions: Sequence[str], arrivals) -> List[Request]:
    """Pair a query log with an arrival process, in arrival order."""
    expressions = list(expressions)
    if not expressions:
        raise ConfigurationError("workload has no queries")
    times = arrivals.times(len(expressions))
    return [
        Request(request_id=i, arrival_seconds=t, expression=e)
        for i, (t, e) in enumerate(zip(times, expressions))
    ]


def zipf_workload(terms_by_df: Sequence[str], num_queries: int,
                  rate_qps: float, unique_queries: int = 32,
                  seed: int = 0,
                  arrivals=None,
                  update_mix: float = 0.0,
                  tenants: Optional[Sequence[str]] = None
                  ) -> List[Request]:
    """The standard serving workload: Zipf query log, Poisson arrivals.

    ``terms_by_df`` is the vocabulary in descending document-frequency
    order (what :meth:`repro.workloads.Corpus.terms_by_df` returns).
    ``arrivals`` overrides the arrival process (default: Poisson at
    ``rate_qps`` seeded alongside the query log). One ``seed`` governs
    both halves, so the whole workload replays from a single number.

    ``update_mix`` replaces that fraction of the log with mutations for
    a live target: three document adds per oldest-document delete
    (steady churn that still grows the corpus). The substitution, the
    synthesized documents, and the arrival timeline are all functions
    of ``seed``, so an update-mix workload replays exactly.

    ``tenants`` optionally tags requests with tenant names for the
    I/O planner's quota scheduler, assigned round-robin by request id
    (deterministic, and every tenant sees the same Zipf mix).
    """
    if not 0.0 <= update_mix <= 1.0:
        raise ConfigurationError(
            f"update mix must be in [0, 1], got {update_mix}"
        )
    sampler = QuerySampler(terms_by_df, seed=seed)
    unique = max(1, min(unique_queries, num_queries))
    expressions = [
        spec.expression
        for spec in sampler.sample_zipf_log(num_queries,
                                            unique_queries=unique)
    ]
    if arrivals is None:
        arrivals = PoissonArrivals(rate_qps, seed=seed)
    requests = build_requests(expressions, arrivals)
    if tenants:
        names = list(tenants)
        requests = [
            Request(request_id=r.request_id,
                    arrival_seconds=r.arrival_seconds,
                    expression=r.expression, update=r.update,
                    tenant=names[r.request_id % len(names)])
            for r in requests
        ]
    if update_mix == 0.0:
        return requests
    vocab = list(terms_by_df)
    rng = random.Random(f"updates:{seed}")
    mixed: List[Request] = []
    for request in requests:
        if rng.random() >= update_mix:
            mixed.append(request)
            continue
        if rng.random() < 0.25:
            update = ("delete_oldest", None)
            expression = "<update:delete_oldest>"
        else:
            length = rng.randint(4, 24)
            tokens = tuple(rng.choice(vocab) for _ in range(length))
            update = ("add", tokens)
            expression = "<update:add>"
        mixed.append(Request(
            request_id=request.request_id,
            arrival_seconds=request.arrival_seconds,
            expression=expression,
            update=update,
            tenant=request.tenant,
        ))
    return mixed
