"""Continuous query serving: admission control, load shedding, SLOs.

:class:`QueryServer` layers an online serving discipline over any
search target the library provides — a :class:`repro.api.BossSession`,
a bare engine, or a :class:`repro.cluster.root.SearchCluster` (whose
leaf execution then runs through the resilience path of
:mod:`repro.cluster.resilience`, fault injection and all). Requests
arrive on an open-loop timeline (:mod:`repro.serving.loadgen`), wait in
a bounded admission queue, and are dispatched to a pool of ``workers``
logical workers.

**Execution vs. timeline.** Queries execute for real (results are
bit-identical to :func:`repro.batch.run_query_batch` on the same
expressions — pinned by tests), but the *serving timeline* is an
event-driven simulation: each dispatch charges the worker with the
query's service time (measured wall-clock by default, or a caller
supplied deterministic model), and arrivals/completions interleave by
timestamp. This is the same modeled-vs-wall split the rest of the
simulator uses (``docs/performance-model.md``) and it is what makes
serving runs deterministic: given a seed and a service-time model, the
same admission, shedding, and SLO decisions replay exactly, with no
thread-scheduling noise and no real sleeping.

**Admission policies** (queue full at arrival):

* ``reject`` — the arriving query is shed (``queue_full``);
* ``shed-oldest`` — the oldest *queued* query is shed
  (``shed_oldest``) and the newcomer admitted: freshest-first under
  overload;
* ``deadline`` — queued queries whose deadline already passed are
  evicted first (``deadline``); if none had expired the newcomer is
  shed (``queue_full``). At dispatch time, a queued query past its
  deadline is dropped instead of executed — work that can no longer
  meet its SLO is not worth doing.

**SLO accounting**: with ``deadline_seconds`` set, every served query
is classified attained/violated on arrival-to-completion latency; shed
queries are counted separately, and queries served from a degraded
cluster merge (a failed shard skipped) are reported as
``served_degraded`` — answered, but not with full coverage.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.batch import _percentile
from repro.clock import WALL_CLOCK, Clock
from repro.errors import ConfigurationError
from repro.serving.loadgen import Request

#: Admission policies a :class:`ServingConfig` accepts.
ADMISSION_POLICIES = ("reject", "shed-oldest", "deadline")

#: Shed reasons appearing in outcomes, reports, and ``serving.shed``.
SHED_QUEUE_FULL = "queue_full"
SHED_OLDEST = "shed_oldest"
SHED_DEADLINE = "deadline"


@dataclass(frozen=True)
class ServingConfig:
    """How the server admits, queues, and paces query execution."""

    #: Logical workers draining the admission queue concurrently.
    workers: int = 4
    #: Bounded admission queue (0 = no queueing: busy server sheds).
    queue_capacity: int = 32
    #: One of :data:`ADMISSION_POLICIES`.
    admission: str = "reject"
    #: Per-query SLO deadline from arrival (None = no SLO accounting).
    deadline_seconds: Optional[float] = None
    #: Top-k passed to the target (None = the target's default).
    k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"need at least one worker, got {self.workers}"
            )
        if self.queue_capacity < 0:
            raise ConfigurationError(
                f"queue capacity must be >= 0, got {self.queue_capacity}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {self.admission!r} "
                f"(choose from {', '.join(ADMISSION_POLICIES)})"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError("deadline must be positive (or None)")
        if self.admission == "deadline" and self.deadline_seconds is None:
            raise ConfigurationError(
                "the deadline admission policy needs deadline_seconds"
            )


@dataclass
class RequestOutcome:
    """What happened to one request, on the serving timeline."""

    request_id: int
    expression: str
    arrival_seconds: float
    #: "served" or "shed".
    status: str = "served"
    #: Why a shed request was dropped (a ``SHED_*`` constant).
    shed_reason: Optional[str] = None
    #: Dispatch instant (None when shed before dispatch).
    start_seconds: Optional[float] = None
    completion_seconds: Optional[float] = None
    #: The search result (engine ``SearchResult`` or cluster merge).
    result: Optional[object] = None
    #: Served from a degraded cluster merge (failed shard skipped).
    degraded: bool = False
    #: Latency <= deadline (None: shed, or no deadline configured).
    slo_attained: Optional[bool] = None

    @property
    def served(self) -> bool:
        return self.status == "served"

    @property
    def queue_wait_seconds(self) -> float:
        if self.start_seconds is None:
            return 0.0
        return self.start_seconds - self.arrival_seconds

    @property
    def latency_seconds(self) -> Optional[float]:
        """Arrival-to-completion latency (None when shed)."""
        if self.completion_seconds is None:
            return None
        return self.completion_seconds - self.arrival_seconds


@dataclass
class ServingReport:
    """Aggregate accounting over one sustained-load run."""

    num_requests: int = 0
    served: int = 0
    shed: int = 0
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    served_degraded: int = 0
    slo_attained: int = 0
    slo_violated: int = 0
    deadline_seconds: Optional[float] = None
    #: Arrival span of the workload (first to last arrival).
    offered_seconds: float = 0.0
    #: First arrival to the last timeline event (completion *or*
    #: arrival — a run whose tail is all shed still has a span).
    makespan_seconds: float = 0.0
    p50_latency_seconds: float = 0.0
    p95_latency_seconds: float = 0.0
    p99_latency_seconds: float = 0.0
    mean_latency_seconds: float = 0.0
    mean_queue_wait_seconds: float = 0.0
    #: Queue depth sampled at every arrival and every completion —
    #: arrival-only sampling misses the drain side and under-reports
    #: sustained pressure on overload-heavy runs.
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0

    @property
    def offered_qps(self) -> float:
        """Empirical offered load (arrivals over the arrival span)."""
        if self.offered_seconds <= 0:
            return 0.0
        return self.num_requests / self.offered_seconds

    @property
    def achieved_qps(self) -> float:
        """Served throughput over the makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def shed_fraction(self) -> float:
        if self.num_requests <= 0:
            return 0.0
        return self.shed / self.num_requests

    @property
    def slo_violation_fraction(self) -> float:
        """Violations over *all* requests — a shed query is not a win."""
        if self.deadline_seconds is None or self.num_requests <= 0:
            return 0.0
        return (self.slo_violated + self.shed) / self.num_requests

    def to_dict(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "served": self.served,
            "shed": self.shed,
            "shed_by_reason": dict(self.shed_by_reason),
            "shed_fraction": self.shed_fraction,
            "served_degraded": self.served_degraded,
            "slo_attained": self.slo_attained,
            "slo_violated": self.slo_violated,
            "slo_violation_fraction": self.slo_violation_fraction,
            "deadline_seconds": self.deadline_seconds,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "makespan_seconds": self.makespan_seconds,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "mean_latency_seconds": self.mean_latency_seconds,
            "mean_queue_wait_seconds": self.mean_queue_wait_seconds,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
        }


class ServingResult:
    """Per-request outcomes (in arrival order) plus the run report."""

    __slots__ = ("outcomes", "report")

    def __init__(self, outcomes: List[RequestOutcome],
                 report: ServingReport) -> None:
        self.outcomes = outcomes
        self.report = report

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]

    def served_results(self) -> list:
        """Search results of served requests, in arrival order."""
        return [o.result for o in self.outcomes if o.served]


class QueryServer:
    """Admission-controlled serving over any search target.

    ``target`` is anything with ``search(expression, k)`` — a session,
    an engine, or a cluster root (clusters execute through the
    resilience layer, so retries/failover/degradation all apply).

    ``service_time`` optionally replaces measured execution time on the
    serving timeline: a callable ``(request, result) -> seconds``. With
    it (and no enabled observer reading wall time) a serving run is a
    pure function of the workload — the determinism tests pin exactly
    that. ``clock`` only measures service time (default: wall clock);
    the serving timeline itself never sleeps.

    ``observer`` (an enabled :class:`repro.observability.Observer`)
    receives admission/shed/completion callbacks and publishes the
    ``serving.*`` registry metrics.
    """

    def __init__(self, target, config: Optional[ServingConfig] = None,
                 observer=None,
                 service_time: Optional[Callable] = None,
                 clock: Optional[Clock] = None) -> None:
        self._target = target
        self._config = ServingConfig() if config is None else config
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )
        self._service_time = service_time
        self._clock = WALL_CLOCK if clock is None else clock

    @property
    def config(self) -> ServingConfig:
        return self._config

    @property
    def target(self):
        return self._target

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------

    def serve(self, requests: Sequence[Request]) -> ServingResult:
        """Run one open-loop workload to completion.

        Requests are processed in arrival order; the returned outcomes
        are in the same order. The loop is event-driven over the
        requests' arrival instants — it never sleeps, so a long
        simulated timeline costs only the queries' execution time.
        """
        requests = sorted(requests,
                          key=lambda r: (r.arrival_seconds, r.request_id))
        if not requests:
            raise ConfigurationError("serving workload is empty")
        cfg = self._config

        outcomes = {
            r.request_id: RequestOutcome(
                request_id=r.request_id, expression=r.expression,
                arrival_seconds=r.arrival_seconds,
            )
            for r in requests
        }
        pending = deque(requests)
        #: (completion_time, dispatch_seq, request_id) per busy worker.
        busy: list = []
        queue: deque = deque()
        dispatch_seq = 0
        depth_samples: List[int] = []
        max_depth = 0

        def shed(request: Request, reason: str) -> None:
            outcome = outcomes[request.request_id]
            outcome.status = "shed"
            outcome.shed_reason = reason
            if self._observer is not None:
                self._observer.on_request_shed(reason)

        def dispatch(request: Request, now: float) -> None:
            nonlocal dispatch_seq
            outcome = outcomes[request.request_id]
            outcome.start_seconds = now
            result, seconds = self._execute(request)
            outcome.result = result
            outcome.degraded = bool(getattr(result, "degraded", False))
            outcome.completion_seconds = now + seconds
            heapq.heappush(
                busy, (outcome.completion_seconds, dispatch_seq,
                       request.request_id)
            )
            dispatch_seq += 1

        def drain_queue(now: float) -> None:
            """Freed capacity pulls from the queue (deadline-aware)."""
            while queue and len(busy) < cfg.workers:
                request = queue.popleft()
                if (cfg.admission == "deadline"
                        and now - request.arrival_seconds
                        > cfg.deadline_seconds):
                    # Already hopeless: executing it cannot meet the
                    # SLO, so the slot goes to a query that still can.
                    shed(request, SHED_DEADLINE)
                    continue
                dispatch(request, now)

        def complete(now: float) -> None:
            _, _, request_id = heapq.heappop(busy)
            outcome = outcomes[request_id]
            if cfg.deadline_seconds is not None:
                outcome.slo_attained = (
                    outcome.latency_seconds <= cfg.deadline_seconds
                )
            if self._observer is not None:
                self._observer.on_request_served(outcome)
            drain_queue(now)
            depth_samples.append(len(queue))

        def admit(request: Request, now: float) -> None:
            if len(busy) < cfg.workers and not queue:
                if self._observer is not None:
                    self._observer.on_request_admitted(0)
                dispatch(request, now)
                return
            if len(queue) >= cfg.queue_capacity:
                if cfg.admission == "deadline":
                    # Evict queued queries whose deadline has passed.
                    expired = [
                        q for q in queue
                        if now - q.arrival_seconds > cfg.deadline_seconds
                    ]
                    for stale in expired:
                        queue.remove(stale)
                        shed(stale, SHED_DEADLINE)
                if len(queue) >= cfg.queue_capacity:
                    if cfg.admission == "shed-oldest" and queue:
                        shed(queue.popleft(), SHED_OLDEST)
                    else:
                        # Includes every policy at queue_capacity=0:
                        # with nothing queued there is nothing older
                        # to shed than the newcomer itself.
                        shed(request, SHED_QUEUE_FULL)
                        return
            queue.append(request)
            if self._observer is not None:
                self._observer.on_request_admitted(len(queue))

        while pending or busy:
            next_arrival = (
                pending[0].arrival_seconds if pending else float("inf")
            )
            next_completion = busy[0][0] if busy else float("inf")
            if busy and next_completion <= next_arrival:
                complete(next_completion)
                continue
            request = pending.popleft()
            admit(request, request.arrival_seconds)
            depth_samples.append(len(queue))
            max_depth = max(max_depth, len(queue))

        ordered = [outcomes[r.request_id] for r in requests]
        report = self._build_report(ordered, depth_samples, max_depth)
        if self._observer is not None:
            self._observer.on_serving_complete(report)
        return ServingResult(ordered, report)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _execute(self, request: Request):
        """Run the request for real; return (result, service_seconds).

        Requests carrying an ``update`` payload go to the target's
        ``apply_update`` (live-index targets only); plain requests are
        queries.
        """
        start = self._clock.now()
        if getattr(request, "update", None) is not None:
            result = self._target.apply_update(request)
        elif self._config.k is None:
            result = self._target.search(request.expression)
        else:
            result = self._target.search(request.expression,
                                         k=self._config.k)
        measured = self._clock.now() - start
        if self._service_time is not None:
            return result, float(self._service_time(request, result))
        return result, measured

    def _build_report(self, outcomes: List[RequestOutcome],
                      depth_samples: List[int],
                      max_depth: int) -> ServingReport:
        return build_serving_report(
            outcomes, depth_samples, max_depth,
            deadline_seconds=self._config.deadline_seconds,
        )


def build_serving_report(outcomes: List[RequestOutcome],
                         depth_samples: List[int],
                         max_depth: int,
                         deadline_seconds: Optional[float] = None,
                         ) -> ServingReport:
    """Aggregate per-request outcomes into a :class:`ServingReport`.

    Shared by :class:`QueryServer` and the planner's windowed server so
    the two report identical accounting. ``outcomes`` must be in
    arrival order.
    """
    report = ServingReport(deadline_seconds=deadline_seconds)
    report.num_requests = len(outcomes)
    latencies: List[float] = []
    waits: List[float] = []
    last_completion = 0.0
    for outcome in outcomes:
        if outcome.served:
            report.served += 1
            latencies.append(outcome.latency_seconds)
            waits.append(outcome.queue_wait_seconds)
            last_completion = max(last_completion,
                                  outcome.completion_seconds)
            if outcome.degraded:
                report.served_degraded += 1
            if outcome.slo_attained is True:
                report.slo_attained += 1
            elif outcome.slo_attained is False:
                report.slo_violated += 1
        else:
            report.shed += 1
            reason = outcome.shed_reason or "unknown"
            report.shed_by_reason[reason] = (
                report.shed_by_reason.get(reason, 0) + 1
            )
    first_arrival = outcomes[0].arrival_seconds
    last_arrival = outcomes[-1].arrival_seconds
    report.offered_seconds = last_arrival - first_arrival
    # The run spans first arrival to the *last timeline event* — on an
    # all-shed (overload) run that is the final arrival, not zero.
    report.makespan_seconds = (
        max(last_completion, last_arrival) - first_arrival
    )
    if latencies:
        ordered = sorted(latencies)
        report.p50_latency_seconds = _percentile(ordered, 0.50)
        report.p95_latency_seconds = _percentile(ordered, 0.95)
        report.p99_latency_seconds = _percentile(ordered, 0.99)
        report.mean_latency_seconds = sum(latencies) / len(latencies)
        report.mean_queue_wait_seconds = sum(waits) / len(waits)
    if depth_samples:
        report.mean_queue_depth = (
            sum(depth_samples) / len(depth_samples)
        )
    report.max_queue_depth = max_depth
    return report
