"""Accounting posting-list cursor: the block fetch module's data path.

A :class:`ListCursor` walks one compressed posting list exactly the way
the paper's block fetch module does:

* the per-block *metadata* array (19 B records) is always available and
  cheap to inspect — inspections are counted but cost only metadata
  bytes. Because the metadata stores each block's first docID
  *uncompressed*, the cursor can report its current docID (sID) at a
  block boundary without fetching the payload;
* a block's *payload* is fetched from SCM and decompressed only when the
  cursor needs a position strictly inside it, or a term frequency
  (``blocks_fetched``, ``LD List`` traffic, ``postings_decoded``);
* blocks passed over without decoding are counted as skipped, attributed
  to whichever unit decided the skip (the overlap check unit or the
  score-estimation/ET unit) via the cursor's ``skip_class``.

The invariant is: *an undecoded current block always has the cursor at
its first posting*, whose docID is the metadata's first-docID field.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.index.blocks import BLOCK_METADATA_BYTES
from repro.index.index import CompressedPostingList
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter
from repro.sim.metrics import WorkCounters

#: How a skipped block is attributed in the work counters.
SKIP_OVERLAP = "overlap"
SKIP_ET = "et"
SKIP_NONE = "none"


class ListCursor:
    """Lazy, accounting cursor over one compressed posting list."""

    __slots__ = ("_fetch_log", "_observer", "_list", "_work", "_traffic",
                 "_pattern", "_skip_class", "_block_index", "_position",
                 "_decoded_doc_ids", "_decoded_tfs", "_lasts", "_firsts",
                 "_metadata_read_upto", "_decoded_cache", "_fast_path",
                 "_last_fetched_block")

    def __init__(self, posting_list: CompressedPostingList,
                 work: WorkCounters, traffic: TrafficCounter,
                 pattern: AccessPattern = AccessPattern.SEQUENTIAL,
                 skip_class: str = SKIP_NONE,
                 fetch_log: Optional[list] = None,
                 observer=None,
                 decoded_cache=None,
                 fast_path: bool = True) -> None:
        if skip_class not in (SKIP_OVERLAP, SKIP_ET, SKIP_NONE):
            raise SimulationError(f"unknown skip class {skip_class!r}")
        #: Optional trace of payload fetches as (term, block_index,
        #: bytes, pattern) tuples — consumed by the DRAM block-cache
        #: simulator and the serving-layer I/O planner. ``pattern`` is
        #: the *observed* spatial pattern of this cursor's walk: a fetch
        #: that continues the previous fetched block is sequential, a
        #: fetch that lands after a metadata-guided skip (or starts the
        #: list anywhere but block 0) is random.
        self._fetch_log = fetch_log
        #: Observability hook; only consulted when ``observer.enabled``.
        self._observer = observer if observer is not None and observer.enabled else None
        self._list = posting_list
        self._work = work
        self._traffic = traffic
        self._pattern = pattern
        self._skip_class = skip_class
        self._block_index = 0
        self._position = 0
        self._decoded_doc_ids: Optional[Sequence[int]] = None
        self._decoded_tfs: Optional[Sequence[int]] = None
        #: Block last-docIDs, the skip search structure (metadata mirror).
        self._lasts = [b.metadata.last_doc_id for b in posting_list.blocks]
        self._firsts = [b.metadata.first_doc_id for b in posting_list.blocks]
        #: Highest block index whose metadata was charged so far.
        self._metadata_read_upto = -1
        #: Index of the last payload actually fetched (-1 = none yet;
        #: block 0 then counts as the sequential start of the stream).
        self._last_fetched_block = -1
        #: Host-side :class:`repro.cache.DecodedBlockCache` (or None).
        self._decoded_cache = decoded_cache
        #: Bulk ``decode_block`` vs per-value reference decode.
        self._fast_path = fast_path

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def posting_list(self) -> CompressedPostingList:
        return self._list

    @property
    def term(self) -> str:
        return self._list.term

    @property
    def exhausted(self) -> bool:
        return self._block_index >= self._list.num_blocks

    @property
    def list_max_score(self) -> float:
        """Whole-list score bound (the WAND lookup-table value)."""
        return self._list.max_term_score

    @property
    def idf(self) -> float:
        return self._list.idf

    def current_doc(self) -> Optional[int]:
        """DocID under the cursor.

        Free of payload traffic at block boundaries: the metadata's first
        docID *is* the block's first posting.
        """
        if self.exhausted:
            return None
        if self._decoded_doc_ids is not None:
            return self._decoded_doc_ids[self._position]
        self._charge_metadata(self._block_index)
        return self._firsts[self._block_index]

    def current_tf(self) -> int:
        """Term frequency under the cursor; forces the payload fetch."""
        if self.exhausted:
            raise SimulationError(f"cursor for {self.term!r} exhausted")
        self._ensure_decoded()
        return self._decoded_tfs[self._position]

    def current_block_last(self) -> Optional[int]:
        """Metadata view: last docID of the current block."""
        if self.exhausted:
            return None
        self._charge_metadata(self._block_index)
        return self._lasts[self._block_index]

    def current_block_max_score(self) -> float:
        """Metadata view: max term-score of the current block."""
        if self.exhausted:
            return 0.0
        self._charge_metadata(self._block_index)
        return self._list.blocks[self._block_index].metadata.max_term_score

    def peek_block_at(self, doc_id: int,
                      window: int = 1) -> Optional[Tuple[float, int]]:
        """Metadata-only lookup used by the score-estimation unit.

        Returns ``(max_term_score, last_doc_id)`` over the *interval* of
        ``window`` consecutive blocks starting at the block that would
        contain the first posting >= ``doc_id`` (searching forward from
        the current block), or None if the list ends before it. The
        cursor does not move.

        ``window > 1`` models the paper's longer pruning intervals
        ("BOSS uses longer intervals to minimize the delay between
        adjacent block load requests", Section VI): the bound gets
        looser (max over more blocks) but each successful skip jumps
        further and touches less metadata.
        """
        if self.exhausted:
            return None
        index = bisect_left(self._lasts, doc_id, self._block_index)
        if index >= len(self._lasts):
            return None
        end = min(len(self._lasts), index + max(1, window))
        self._charge_metadata(end - 1)
        bound = max(
            self._list.blocks[i].metadata.max_term_score
            for i in range(index, end)
        )
        return bound, self._lasts[end - 1]

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one posting within the stream."""
        if self.exhausted:
            raise SimulationError(f"cursor for {self.term!r} exhausted")
        self._ensure_decoded()
        self._position += 1
        if self._position >= len(self._decoded_doc_ids):
            self._enter_block(self._block_index + 1, skipped=False)

    def advance_to(self, target: int) -> Optional[int]:
        """Move to the first posting with docID >= ``target``.

        Blocks whose metadata proves they end before ``target`` are
        passed without fetching (counted as skips); if the landing
        block's first docID is already >= ``target``, the payload fetch
        is deferred too. Returns the docID the cursor lands on, or None
        when the list is exhausted.
        """
        # Fast path within an already-decoded block: galloping search.
        if self._decoded_doc_ids is not None:
            doc_ids = self._decoded_doc_ids
            lo = self._position
            if doc_ids[lo] >= target:
                return doc_ids[lo]
            if doc_ids[-1] >= target:
                # doc_ids[lo] < target: double the probe step until it
                # reaches target or the block end, then bisect the
                # bracket. Short skips (the common case under WAND)
                # finish in O(log skip) instead of O(log block).
                n = len(doc_ids)
                step = 1
                hi = lo + 1
                while hi < n and doc_ids[hi] < target:
                    lo = hi
                    step <<= 1
                    hi = lo + step
                self._position = bisect_left(
                    doc_ids, target, lo + 1, min(hi + 1, n)
                )
                return doc_ids[self._position]
            self._enter_block(self._block_index + 1, skipped=False)

        # Metadata-guided block skip.
        while not self.exhausted:
            self._charge_metadata(self._block_index)
            if self._lasts[self._block_index] >= target:
                break
            self._enter_block(self._block_index + 1, skipped=True)
        if self.exhausted:
            return None
        # Landing block: fetch only if the target is strictly inside it.
        if self._firsts[self._block_index] >= target:
            return self._firsts[self._block_index]
        self._ensure_decoded()
        self._position = bisect_left(self._decoded_doc_ids, target)
        return self._decoded_doc_ids[self._position]

    def shallow_advance_to(self, target: int) -> None:
        """Metadata-only block advance: position the block pointer at the
        first block whose last docID is >= ``target``.

        Never fetches a payload; used by early termination to jump over
        intervals that cannot contain top-k candidates.
        """
        if self._decoded_doc_ids is not None:
            if self._decoded_doc_ids[-1] >= target:
                return  # current (already paid-for) block still covers it
            self._enter_block(self._block_index + 1, skipped=False)
        while not self.exhausted:
            self._charge_metadata(self._block_index)
            if self._lasts[self._block_index] >= target:
                break
            self._enter_block(self._block_index + 1, skipped=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _enter_block(self, new_index: int, skipped: bool) -> None:
        if skipped:
            if self._skip_class == SKIP_OVERLAP:
                self._work.blocks_skipped_overlap += 1
            elif self._skip_class == SKIP_ET:
                self._work.blocks_skipped_et += 1
            if self._observer is not None:
                self._observer.on_block_skip(self._list.term,
                                             self._skip_class)
        self._block_index = new_index
        self._position = 0
        self._decoded_doc_ids = None
        self._decoded_tfs = None

    def _ensure_decoded(self) -> None:
        if self._decoded_doc_ids is not None:
            return
        if self.exhausted:
            raise SimulationError(f"cursor for {self.term!r} exhausted")
        self._charge_metadata(self._block_index)
        block = self._list.blocks[self._block_index]
        # Functional decode: decoded-block cache first, then either the
        # bulk fast path or the per-value reference decoder. How the
        # arrays are *obtained* is a host-side wall-clock concern only.
        decoded = None
        cache = self._decoded_cache
        if cache is not None:
            decoded = cache.get(
                self._list.term, self._block_index, self._list.scheme
            )
        if decoded is None:
            if self._fast_path:
                decoded = self._list.decode_block_arrays(self._block_index)
            else:
                postings = self._list.decode_block(self._block_index)
                decoded = ([p.doc_id for p in postings],
                           [p.tf for p in postings])
            if self._observer is not None:
                self._observer.on_decode_path(
                    self._list.scheme, self._fast_path
                )
            if cache is not None:
                cache.put(
                    self._list.term, self._block_index, self._list.scheme,
                    decoded,
                )
        self._decoded_doc_ids, self._decoded_tfs = decoded
        # Modeled accounting is unconditional — the simulated accelerator
        # fetches and decompresses this block regardless of what the
        # host-side decoded cache served, so every modeled metric is
        # bit-identical with the cache/fast path on or off.
        self._work.blocks_fetched += 1
        self._work.postings_decoded += block.metadata.count
        self._traffic.record(
            AccessClass.LD_LIST, self._pattern, block.compressed_bytes
        )
        # The observed pattern of *this* fetch: sequential only when it
        # continues the previous fetched block (block 0 counts as the
        # sequential start of the stream). The aggregate device model
        # above keeps the cursor's configured pattern — the accelerator's
        # block fetch module streams metadata-directed loads ahead of
        # demand — but the serving-layer cache/planner studies replay
        # per-block demand fetches, where a skip landing is a random read.
        fetched_pattern = (
            AccessPattern.SEQUENTIAL
            if self._block_index == self._last_fetched_block + 1
            else AccessPattern.RANDOM
        )
        self._last_fetched_block = self._block_index
        if self._fetch_log is not None:
            self._fetch_log.append(
                (self._list.term, self._block_index,
                 block.compressed_bytes, fetched_pattern)
            )
        if self._observer is not None:
            self._observer.on_block_fetch(
                self._list.term, self._block_index, block.compressed_bytes,
                pattern=fetched_pattern,
            )

    def _charge_metadata(self, block_index: int) -> None:
        """Charge 19-byte metadata reads, once per block, in order."""
        if block_index <= self._metadata_read_upto:
            return
        new_blocks = block_index - self._metadata_read_upto
        self._metadata_read_upto = block_index
        self._work.metadata_inspected += new_blocks
        # The metadata array is contiguous: sequential reads.
        self._traffic.record(
            AccessClass.LD_LIST,
            AccessPattern.SEQUENTIAL,
            BLOCK_METADATA_BYTES * new_blocks,
            accesses=new_blocks,
        )
