"""Execution result types shared by all engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple

from repro.core.query import QueryNode, classify_query
from repro.scm.traffic import TrafficCounter
from repro.sim.metrics import WorkCounters


class ScoredDocument(NamedTuple):
    """One ranked search hit."""

    doc_id: int
    score: float


@dataclass
class SearchResult:
    """Outcome of executing one query on one engine.

    Bundles the functional answer (the ranked ``hits``) with the
    performance-model measurements (``traffic`` and ``work``) plus the
    bytes that crossed the host interconnect for this query.
    """

    query: QueryNode
    hits: List[ScoredDocument]
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    work: WorkCounters = field(default_factory=WorkCounters)
    #: Bytes moved over the shared host link (results, and for host-side
    #: engines also all loaded data).
    interconnect_bytes: int = 0

    @property
    def query_type(self) -> str:
        """Table II classification (Q1–Q6 or "mixed")."""
        return classify_query(self.query)

    @property
    def doc_ids(self) -> List[int]:
        return [hit.doc_id for hit in self.hits]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SearchResult {self.query_type} hits={len(self.hits)} "
            f"bytes={self.traffic.total_bytes}>"
        )
