"""Columnar union executor: vectorized leader runs over decoded blocks.

:func:`run_union_columnar` is a third implementation of the union
algorithm of :func:`repro.core.union.run_union`, pinned bit-identical to
the reference and to :func:`repro.core.fastexec.run_union_fast` by the
equivalence suite — same rankings, same work counters, same per-bucket
traffic, same traces.

Where :mod:`repro.core.fastexec` removes *per-call* overhead (method and
property dispatch), this executor removes *per-iteration* overhead: the
profile of the fast path shows >90% of wall-clock inside the union loop
itself, dominated by iterations whose top-k offer is rejected. The key
observation is that between two **accepted** top-k inserts the loop's
decision state is frozen:

* the cutoff changes only when an insert is accepted;
* with a sole pivot ("leader") the WAND test reads one constant
  (the leader's list-max score) against that cutoff;
* the block-level bound is one constant per block;
* within a decoded block a ``step`` is a position bump with **no**
  modeled side effects (metadata charging is high-water idempotent).

So whenever the pivot set collapses to a single leader (the common case
on Zipf-distributed unions: one list is far denser than the rest), the
executor scores the leader's whole decoded block in one vectorized BM25
expression — the exact float op order of the scalar path, so scores are
bit-identical — and *bulk-counts* the run of rejected candidates up to
the first acceptance, the next list's docID, or the block end. Every
cursor movement with modeled side effects (block fetch, skip,
``advance_to``, block transition) still happens through the real cursor,
in the order the reference executor performs it.

Run mode requires the default ET configuration (``et_wand``,
``et_block``, ``interval_blocks == 1``); any other configuration simply
never enters run mode and executes the fast path's loop unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.fastexec import _ENTRY_KEY, _step_slow
from repro.core.topk import TopKQueue
from repro.core.union import ET_EPSILON
from repro.index.bm25 import BM25Scorer
from repro.sim.metrics import WorkCounters

#: Sentinel "no next list" bound; matches the fast path's ``min_boundary``
#: sentinel and sits far above any 32-bit docID.
_NO_LIMIT = 1 << 62


#: Entries kept in a shared block-score cache before it is reset; bounds
#: memory when the decoded-block cache churns (each re-decode allocates a
#: fresh arrays object, retiring the old cache key).
_SCORE_CACHE_LIMIT = 65536


def run_union_columnar(cursors, scorer: BM25Scorer, topk: TopKQueue,
                       work: WorkCounters, et_block: bool = True,
                       et_wand: bool = True, interval_blocks: int = 1,
                       score_cache: dict = None) -> None:
    """Columnar replica of :func:`repro.core.fastexec.run_union_fast`.

    ``score_cache`` maps ``id(decoded doc-id array) -> (array, scores)``
    and outlives single queries (the engine passes one per accelerator):
    a block's BM25 score vector depends only on the list's idf and the
    per-document normalizers, both fixed for an index snapshot, so
    repeated queries over the same hot lists skip the vector build. The
    cached array object is strongly referenced, which pins its ``id``.
    """
    if score_cache is None:
        score_cache = {}
    # Entry slots 0-6 mirror the fast path; 7-8 cache the leader run's
    # per-block score vector (decoded arrays object -> scores) so a run
    # re-entered after an interleaving iteration reuses it.
    alive: List[list] = []
    for cursor in cursors:
        if not cursor.exhausted:
            max_score = cursor.list_max_score
            blocks = cursor.posting_list.blocks
            alive.append([cursor.current_doc(), -max_score, max_score,
                          cursor.idf, cursor, cursor._lasts,
                          [b.metadata.max_term_score for b in blocks],
                          None, None])

    normalizers = scorer._normalizers
    normalizer_nd = scorer.normalizer_array
    k1_plus_1 = scorer.params.k1 + 1.0
    offer = topk.offer
    topk_entries = topk._entries
    topk_k = topk.k
    cutoff = topk_entries[0][0] if len(topk_entries) >= topk_k else 0.0
    run_capable = et_wand and et_block and interval_blocks == 1
    merge_ops = docs_evaluated = docs_matched = topk_inserts = 0
    try:
        while alive:
            alive.sort(key=_ENTRY_KEY)
            merge_ops += 1

            if et_wand:
                pivot_index = None
                upper_bound = 0.0
                for index, entry in enumerate(alive):
                    upper_bound += entry[2]
                    if upper_bound + ET_EPSILON > cutoff:
                        pivot_index = index
                        break
                if pivot_index is None:
                    return
            else:
                pivot_index = 0
            pivot_doc = alive[pivot_index][0]
            num_alive = len(alive)
            while (pivot_index + 1 < num_alive
                   and alive[pivot_index + 1][0] == pivot_doc):
                pivot_index += 1
            pivot_set = alive[: pivot_index + 1]

            if run_capable and pivot_index == 0:
                # ---- leader run ------------------------------------
                # Sole pivot: consume iterations without re-sorting
                # until the leader catches up with the next list, is
                # out-bid by the cutoff, or exhausts. The first
                # iteration's sort is already counted; later virtual
                # iterations count theirs after the exit checks (on
                # exit, the outer loop performs — and counts — the
                # next full iteration itself).
                entry = alive[0]
                cursor = entry[4]
                l0max = entry[2]
                idf = entry[3]
                lasts = entry[5]
                bmaxes = entry[6]
                limit_doc = alive[1][0] if num_alive > 1 else _NO_LIMIT
                counted = True
                while True:
                    doc = entry[0]
                    if doc is None or doc >= limit_doc:
                        break
                    if not (l0max + ET_EPSILON > cutoff):
                        break
                    if not counted:
                        merge_ops += 1
                    counted = False
                    # Block-level check, sole-pivot specialization: the
                    # leader's current doc is inside its current block,
                    # so the bisect lands on that block.
                    index = bisect_left(lasts, doc, cursor._block_index)
                    cursor._charge_metadata(index)
                    if bmaxes[index] + ET_EPSILON <= cutoff:
                        d = lasts[index] + 1
                        if limit_doc < d:
                            d = limit_doc
                        entry[0] = cursor.advance_to(d)
                        continue
                    # Evaluation: force the (modeled) payload fetch and
                    # materialize the block's scores once, vectorized
                    # with the scalar path's exact float op order.
                    ids = cursor._decoded_doc_ids
                    if ids is None:
                        cursor._ensure_decoded()
                        ids = cursor._decoded_doc_ids
                    if ids is not entry[7]:
                        entry[7] = ids
                        cached = score_cache.get(id(ids))
                        if cached is None:
                            ids_nd = np.frombuffer(ids, dtype=np.uint32)
                            tfs_f = np.frombuffer(
                                cursor._decoded_tfs, dtype=np.uint32
                            ).astype(np.float64)
                            scores_nd = 0.0 + (
                                idf * (tfs_f * k1_plus_1)
                                / (tfs_f + normalizer_nd[ids_nd])
                            )
                            if len(score_cache) >= _SCORE_CACHE_LIMIT:
                                score_cache.clear()
                            score_cache[id(ids)] = (ids, scores_nd)
                        else:
                            scores_nd = cached[1]
                        entry[8] = scores_nd
                    else:
                        scores_nd = entry[8]
                    pos = cursor._position
                    size = len(ids)
                    if cutoff == 0.0:
                        # Queue not yet full: every offer is accepted
                        # and may arm the cutoff — stay scalar (at most
                        # k docs per query take this branch).
                        docs_evaluated += 1
                        docs_matched += 1
                        topk_inserts += 1
                        offer(doc, float(scores_nd[pos]))
                        cutoff = (topk_entries[0][0]
                                  if len(topk_entries) >= topk_k else 0.0)
                        position = pos + 1
                        if position < size:
                            cursor._position = position
                            entry[0] = ids[position]
                        else:
                            entry[0] = _step_slow(cursor)
                        continue
                    end = (size if limit_doc >= _NO_LIMIT
                           else bisect_left(ids, limit_doc, pos))
                    above = scores_nd[pos:end] > cutoff
                    j_rel = above.argmax()
                    if not above[j_rel]:
                        # The whole run [pos, end) is rejected. Each of
                        # those iterations repeats the same invariant
                        # decisions, so their counter increments
                        # collapse into bulk additions; the queue
                        # counts the rejected offers without the calls.
                        n = end - pos
                        merge_ops += n - 1
                        docs_evaluated += n
                        docs_matched += n
                        topk_inserts += n
                        topk._inserts += n
                        if end < size:
                            cursor._position = end
                            entry[0] = ids[end]
                        else:
                            cursor._position = size - 1
                            entry[0] = _step_slow(cursor)
                        continue
                    j = pos + int(j_rel)
                    n_rejected = j - pos
                    merge_ops += n_rejected
                    docs_evaluated += n_rejected + 1
                    docs_matched += n_rejected + 1
                    topk_inserts += n_rejected + 1
                    topk._inserts += n_rejected
                    offer(ids[j], float(scores_nd[j]))
                    cutoff = (topk_entries[0][0]
                              if len(topk_entries) >= topk_k else 0.0)
                    position = j + 1
                    if position < size:
                        cursor._position = position
                        entry[0] = ids[position]
                    else:
                        cursor._position = j
                        entry[0] = _step_slow(cursor)
                alive = [e for e in alive if e[0] is not None]
                continue

            # ---- general iteration (verbatim fast-path body) -------
            if et_block:
                bound = 0.0
                min_boundary = 1 << 62
                if interval_blocks == 1:
                    for entry in pivot_set:
                        lasts = entry[5]
                        index = bisect_left(lasts, pivot_doc,
                                            entry[4]._block_index)
                        if index >= len(lasts):
                            continue
                        entry[4]._charge_metadata(index)
                        bound += entry[6][index]
                        block_last = lasts[index]
                        if block_last < min_boundary:
                            min_boundary = block_last
                else:
                    for entry in pivot_set:
                        peek = entry[4].peek_block_at(
                            pivot_doc, window=interval_blocks
                        )
                        if peek is None:
                            continue
                        max_score, block_last = peek
                        bound += max_score
                        if block_last < min_boundary:
                            min_boundary = block_last
                if bound + ET_EPSILON <= cutoff:
                    d = min_boundary + 1
                    if pivot_index + 1 < num_alive:
                        next_doc = alive[pivot_index + 1][0]
                        if next_doc < d:
                            d = next_doc
                    for entry in pivot_set:
                        entry[0] = entry[4].advance_to(d)
                    alive = [e for e in alive if e[0] is not None]
                    continue

            if alive[0][0] == pivot_doc:
                score = 0.0
                normalizer = normalizers[pivot_doc]
                for entry in pivot_set:
                    if entry[0] == pivot_doc:
                        cursor = entry[4]
                        tfs = cursor._decoded_tfs
                        tf = (tfs[cursor._position] if tfs is not None
                              else cursor.current_tf())
                        score += (entry[3] * (tf * k1_plus_1)
                                  / (tf + normalizer))
                docs_evaluated += 1
                docs_matched += 1
                topk_inserts += 1
                offer(pivot_doc, score)
                cutoff = (topk_entries[0][0]
                          if len(topk_entries) >= topk_k else 0.0)
                for entry in pivot_set:
                    if entry[0] == pivot_doc:
                        cursor = entry[4]
                        ids = cursor._decoded_doc_ids
                        position = cursor._position + 1
                        if ids is not None and position < len(ids):
                            cursor._position = position
                            entry[0] = ids[position]
                        else:
                            entry[0] = _step_slow(cursor)
            else:
                for entry in pivot_set:
                    if entry[0] < pivot_doc:
                        entry[0] = entry[4].advance_to(pivot_doc)
            alive = [e for e in alive if e[0] is not None]
    finally:
        work.merge_ops += merge_ops
        work.docs_evaluated += docs_evaluated
        work.docs_matched += docs_matched
        work.topk_inserts += topk_inserts


def score_matches_columnar(matches: Sequence[Tuple[int, Dict[str, int]]],
                           index, topk: TopKQueue,
                           work: WorkCounters) -> None:
    """Columnar replica of the engine's ``_score_matches``.

    When every match carries the same term tuple in the same order (AND
    over plain terms: the group order is df-sorted and every term is
    present at every match), per-doc scores are one vectorized BM25
    accumulation per term — the same left-to-right float summation order
    as the scalar loop. Mixed OR-group matches have per-doc term subsets,
    so they fall back to the scalar loop unchanged.
    """
    if not matches:
        return
    scorer = index.scorer
    term_order = tuple(matches[0][1])
    uniform = all(tuple(tfs) == term_order for _, tfs in matches)
    if not uniform:
        for doc, tfs in matches:
            score = 0.0
            for term, tf in tfs.items():
                score += scorer.term_score(
                    index.posting_list(term).idf, tf, doc
                )
            work.docs_evaluated += 1
            work.topk_inserts += 1
            topk.offer(doc, score)
        return
    docs = np.array([doc for doc, _ in matches], dtype=np.int64)
    totals = np.zeros(len(matches), dtype=np.float64)
    for term in term_order:
        idf = index.posting_list(term).idf
        tfs_nd = np.array([tfs[term] for _, tfs in matches],
                          dtype=np.float64)
        totals += scorer.score_array(idf, tfs_nd, docs)
    work.docs_evaluated += len(matches)
    work.topk_inserts += len(matches)
    offer = topk.offer
    for i, (doc, _) in enumerate(matches):
        offer(doc, float(totals[i]))
