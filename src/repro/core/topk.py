"""Hardware top-k selection module model.

The paper's top-k module (Section IV-C) is a shift-register priority
queue with ``k`` entries of (docID, query-score), sorted descending by
score. An arriving entry is broadcast to all positions; each position
locally decides to keep its value, shift, or latch the newcomer — an O(1)
insert per arriving document at one document per cycle.

:class:`TopKQueue` reproduces the *semantics* (including the tie rule:
an incoming entry that ties the resident score ranks below it, i.e.
earlier-arriving documents win ties) while counting inserts for the
timing model. The functional result is verified in tests against a
software heap.

The queue also exposes :attr:`cutoff` — the lowest score currently in the
top-k — which feeds the early-termination logic of the block fetch and
union modules ("current cutoff" in the paper).
"""

from __future__ import annotations

from bisect import insort
from typing import List, Tuple

from repro.errors import ConfigurationError

#: The paper's default k (Section IV-C: "By default, k is set to 1000").
DEFAULT_K = 1000


class TopKQueue:
    """Fixed-capacity descending-score priority queue.

    Entries are ``(score, doc_id)``. The queue keeps the ``k`` highest
    scores seen; ties are broken in favor of the earlier-arriving (and on
    simultaneous arrival, lower-docID) document, matching a shift-register
    implementation where an equal-score newcomer is inserted *after* the
    residents.
    """

    def __init__(self, k: int = DEFAULT_K) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self._k = k
        # Ascending list of (score, -arrival) so that index 0 is the
        # eviction candidate. We track arrival order to implement the
        # first-wins tie rule.
        self._entries: List[Tuple[float, int, int]] = []  # (score, -seq, doc)
        self._sequence = 0
        self._inserts = 0

    @property
    def k(self) -> int:
        return self._k

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def inserts(self) -> int:
        """Number of insert operations processed (timing model input)."""
        return self._inserts

    @property
    def cutoff(self) -> float:
        """Score of the lowest-ranked entry in the current top-k.

        Zero while the queue is not yet full — any positive score can
        still enter, so no early termination is possible (the hardware's
        cutoff register starts at 0).
        """
        if len(self._entries) < self._k:
            return 0.0
        return self._entries[0][0]

    def offer(self, doc_id: int, score: float) -> bool:
        """Submit a scored document; returns True if it entered the queue.

        An entry enters only if its score strictly exceeds the cutoff
        (ties lose to residents, as in the shift-register design).
        """
        self._inserts += 1
        if len(self._entries) < self._k:
            insort(self._entries, (score, -self._sequence, doc_id))
            self._sequence += 1
            return True
        if score <= self._entries[0][0]:
            return False
        self._entries.pop(0)
        insort(self._entries, (score, -self._sequence, doc_id))
        self._sequence += 1
        return True

    def results(self) -> List[Tuple[int, float]]:
        """Final ``(docID, score)`` list, best first.

        Ties are ordered by arrival (earlier first), matching the shift
        order of the hardware queue.
        """
        return [
            (doc_id, score)
            for score, _neg_seq, doc_id in sorted(
                self._entries, key=lambda e: (-e[0], -e[1])
            )
        ]

    @property
    def result_bytes(self) -> int:
        """Bytes shipped to the host: 4 B docID + 4 B score per entry."""
        return 8 * len(self._entries)
