"""Group cursor: a union-view over several posting-list cursors.

BOSS executes a mixed query such as ``A AND (B OR C OR D)`` (Table II's
Q6) in a single pipelined pass: the OR-group's three posting lists behave
like one merged stream that the intersection module consumes (the union
module's 4-way merger feeding the intersection unit). A
:class:`GroupCursor` provides exactly that view: its current docID is the
minimum of its members' docIDs, and advancing it advances every member —
so each underlying list is fetched at most once, with block skipping
intact per member.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cursor import ListCursor
from repro.errors import SimulationError
from repro.sim.metrics import WorkCounters


class GroupCursor:
    """Treats an OR-group of posting lists as one merged ascending stream."""

    __slots__ = ("_members", "_work")

    def __init__(self, members: Sequence[ListCursor],
                 work: WorkCounters) -> None:
        if not members:
            raise SimulationError("group cursor needs at least one member")
        self._members = list(members)
        self._work = work

    @property
    def members(self) -> List[ListCursor]:
        return self._members

    @property
    def document_frequency(self) -> int:
        """Upper-bound df of the merged stream (sum of member dfs).

        Used for SvS ordering; the true union cardinality is at most
        this, which is the right pessimistic estimate for scheduling.
        """
        return sum(
            m.posting_list.document_frequency for m in self._members
        )

    def current_doc(self) -> Optional[int]:
        """Smallest docID across members, or None when all are exhausted."""
        docs = [m.current_doc() for m in self._members if not m.exhausted]
        self._work.merge_ops += max(0, len(docs) - 1)
        return min(docs) if docs else None

    def current_tfs(self) -> Dict[str, int]:
        """Term -> tf for every member positioned at the current docID."""
        doc = self.current_doc()
        if doc is None:
            raise SimulationError("group cursor exhausted")
        return {
            m.term: m.current_tf()
            for m in self._members
            if not m.exhausted and m.current_doc() == doc
        }

    def advance_to(self, target: int) -> Optional[int]:
        """Advance every member to >= ``target``; return the new head."""
        heads: List[int] = []
        for member in self._members:
            if member.exhausted:
                continue
            doc = member.current_doc()
            if doc < target:
                doc = member.advance_to(target)
            if doc is not None:
                heads.append(doc)
        self._work.merge_ops += max(0, len(heads) - 1)
        return min(heads) if heads else None

    def step(self) -> None:
        """Advance past the current (minimum) docID."""
        doc = self.current_doc()
        if doc is None:
            raise SimulationError("group cursor exhausted")
        for member in self._members:
            if not member.exhausted and member.current_doc() == doc:
                member.step()
