"""Intersection module: pipelined SvS with block-level overlap skipping.

Implements the paper's intersection path (Sections III-B and IV-C):

* **Small-versus-Small (SvS)**: posting lists are intersected from the
  smallest pair up, so every later membership test runs against an
  already-shrunk candidate set;
* **overlap check unit**: a block is fetched only if its metadata docID
  range ``[first, last]`` can overlap the other side's candidates
  (Figure 5(a)(b)); non-overlapping blocks are skipped without touching
  their payload;
* **pipelined multi-term execution**: the intermediate docID/tf tuples of
  each pairwise intersection stay in the pipeline (on-chip buffers) and
  feed the block fetch module for the next term directly — no spill to
  SCM, no reload (this is the "LD Inter / ST Inter" traffic BOSS
  eliminates relative to IIU in Figure 15);
* **sequential access**: candidate blocks are fetched in ascending docID
  order, so the SCM device sees a sequential read stream (unlike IIU's
  binary-search probes).

The match set is exact; matched documents carry the per-term frequencies
needed for BM25 scoring downstream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.cursor import ListCursor
from repro.core.groups import GroupCursor
from repro.errors import SimulationError
from repro.sim.metrics import WorkCounters

#: A matched document: docID plus tf per contributing term.
Match = Tuple[int, Dict[str, int]]


def run_intersection(cursors: Sequence[ListCursor],
                     work: WorkCounters) -> List[Match]:
    """Intersect all ``cursors`` and return matches with per-term tfs.

    Cursors are processed in SvS order (ascending document frequency).
    The returned matches are sorted by docID.
    """
    if not cursors:
        raise SimulationError("intersection needs at least one term")
    ordered = sorted(cursors,
                     key=lambda c: c.posting_list.document_frequency)
    if len(ordered) == 1:
        matches = _drain_single(ordered[0], work)
        work.docs_matched += len(matches)
        return matches

    matches = _intersect_pair(ordered[0], ordered[1], work)
    for cursor in ordered[2:]:
        if not matches:
            break
        matches = _refine(matches, cursor, work)
    work.docs_matched += len(matches)
    return matches


def run_grouped_intersection(groups: Sequence[GroupCursor],
                             work: WorkCounters) -> List[Match]:
    """Intersect OR-groups: the mixed-query path (e.g. Q6).

    Each group behaves as one merged posting stream (see
    :class:`repro.core.groups.GroupCursor`); a document matches when
    every group contains it. Groups are visited in SvS order of their
    df upper bounds. Matches carry the tfs of *every* member list that
    contains the document, so BM25 scoring is exact.
    """
    if not groups:
        raise SimulationError("intersection needs at least one group")
    ordered = sorted(groups, key=lambda g: g.document_frequency)

    matches: List[Match] = []
    driver = ordered[0]
    others = ordered[1:]
    doc = driver.current_doc()
    while doc is not None:
        work.merge_ops += 1
        candidate = doc
        in_all = True
        for group in others:
            landed = group.advance_to(candidate)
            if landed is None:
                doc = None
                in_all = False
                break
            if landed != candidate:
                # The other group jumped past the candidate: re-anchor the
                # driver at the jump target.
                doc = driver.advance_to(landed)
                in_all = False
                break
        if doc is None:
            break
        if in_all:
            tfs: Dict[str, int] = {}
            tfs.update(driver.current_tfs())
            for group in others:
                tfs.update(group.current_tfs())
            matches.append((candidate, tfs))
            driver.step()
            doc = driver.current_doc()
    work.docs_matched += len(matches)
    return matches


def _drain_single(cursor: ListCursor, work: WorkCounters) -> List[Match]:
    """Degenerate 1-term case: every posting matches."""
    term = cursor.term
    matches: List[Match] = []
    while not cursor.exhausted:
        doc = cursor.current_doc()
        matches.append((doc, {term: cursor.current_tf()}))
        work.merge_ops += 1
        cursor.step()
    return matches


def _intersect_pair(small: ListCursor, large: ListCursor,
                    work: WorkCounters) -> List[Match]:
    """Two-way merge intersection with mutual block skipping.

    Both cursors move strictly forward; ``advance_to`` skips whole blocks
    via metadata whenever the other side's docID jumps past them, which
    is exactly the overlap check unit's effect.
    """
    matches: List[Match] = []
    doc_small = small.current_doc()
    doc_large = large.current_doc()
    while doc_small is not None and doc_large is not None:
        work.merge_ops += 1
        if doc_small == doc_large:
            matches.append((
                doc_small,
                {small.term: small.current_tf(), large.term: large.current_tf()},
            ))
            small.step()
            large.step()
            doc_small = small.current_doc()
            doc_large = large.current_doc()
        elif doc_small < doc_large:
            doc_small = small.advance_to(doc_large)
        else:
            doc_large = large.advance_to(doc_small)
    return matches


def _refine(matches: List[Match], cursor: ListCursor,
            work: WorkCounters) -> List[Match]:
    """Membership-test pipeline-resident matches against the next term.

    The intermediate docIDs are fed back to the block fetch module
    (Figure 5(b)): blocks of ``cursor`` whose range misses every
    intermediate docID are skipped without fetching.
    """
    term = cursor.term
    refined: List[Match] = []
    for doc, tfs in matches:
        work.merge_ops += 1
        landed = cursor.advance_to(doc)
        if landed is None:
            break
        if landed == doc:
            tfs[term] = cursor.current_tf()
            refined.append((doc, tfs))
    return refined
