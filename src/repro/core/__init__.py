"""BOSS core: the paper's primary contribution.

This package models the BOSS accelerator (Section IV): a near-data
processing device sitting in the memory controller of an SCM memory node,
with multiple BOSS cores, a command queue, a query scheduler, and a
memory access interface. Each BOSS core pipelines six modules:

block fetch -> decompression -> intersection/union -> scoring -> top-k

The implementation is *functionally exact* — it returns the true BM25
top-k for every query, with early termination proven safe by tests — and
*performance modeled*: every module reports the work it performed and the
SCM/interconnect traffic it generated, which the timing model converts
into cycles and throughput.
"""

from repro.core.query import (
    AndNode,
    OrNode,
    QueryNode,
    TermNode,
    classify_query,
    parse_query,
)
from repro.core.topk import TopKQueue
from repro.core.engine import BossAccelerator, BossConfig
from repro.core.result import SearchResult, ScoredDocument

__all__ = [
    "AndNode",
    "OrNode",
    "QueryNode",
    "TermNode",
    "classify_query",
    "parse_query",
    "TopKQueue",
    "BossAccelerator",
    "BossConfig",
    "SearchResult",
    "ScoredDocument",
]
