"""Union module: hardware WAND with block-level early termination.

Implements the paper's two-level early termination for union queries
(Sections III-B and IV-C):

* **document-level** (the union module proper): WAND pivoting over the
  whole-list maximum term-scores, pre-computed per term (the module's
  lookup table). Documents whose upper-bound query-score cannot beat the
  current top-k cutoff are popped without scoring.
* **block-level** (the block-fetch module's score-estimation unit):
  before a candidate's blocks are fetched, the sum of the *per-block*
  maximum term-scores of the blocks overlapping the candidate is compared
  against the cutoff; if it cannot win, the whole docID interval up to
  the nearest block boundary is skipped and those blocks are never
  loaded. This is the BlockMaxWAND / interval-based-pruning hybrid the
  paper cites.

Both levels are *safe*: the returned top-k is provably identical to
exhaustive evaluation (tested against brute force). Each level can be
disabled independently to reproduce the paper's ablations
(``BOSS-exhaustive`` in Figure 13, ``BOSS-block-only`` in Figure 14).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.cursor import ListCursor
from repro.core.topk import TopKQueue
from repro.index.bm25 import BM25Scorer
from repro.sim.metrics import WorkCounters

#: Upper bounds are inflated by this margin before comparing against the
#: cutoff so that floating-point summation order can never make a true
#: candidate look prunable (safety epsilon; bounds are mathematically >=
#: any achievable score, the epsilon only absorbs rounding).
ET_EPSILON = 1e-9


def run_union(cursors: Sequence[ListCursor], scorer: BM25Scorer,
              topk: TopKQueue, work: WorkCounters,
              et_block: bool = True, et_wand: bool = True,
              interval_blocks: int = 1) -> None:
    """Execute a union query over ``cursors``, feeding ``topk``.

    Parameters
    ----------
    cursors:
        One accounting cursor per query term (any number; the hardware
        chains 4-way mergers across cores for more than 4 terms).
    scorer:
        BM25 scorer bound to the corpus.
    topk:
        The hardware top-k queue; its ``cutoff`` drives both ET levels.
    work:
        Work counters to update.
    et_block / et_wand:
        Enable the block-level (score-estimation unit) and document-level
        (WAND pivoting) early termination respectively.
    interval_blocks:
        Pruning-interval length in blocks for the score-estimation unit
        (1 = per-block bounds; larger values are the paper's "longer
        intervals" — looser bounds, longer skips).
    """
    alive: List[ListCursor] = [c for c in cursors if not c.exhausted]

    while alive:
        # (1) The sorter orders posting-list queues by their sID (the
        # smallest unevaluated docID per term).
        alive.sort(key=_sort_key)
        alive = [c for c in alive if not c.exhausted]
        if not alive:
            break
        # The sorter is a parallel comparator network over at most four
        # queue heads: one scheduling decision per cycle.
        work.merge_ops += 1

        # (2)+(3) Score loader + pivot selector: find the first position
        # whose prefix list-max sum beats the cutoff.
        pivot_index = _select_pivot(alive, topk.cutoff, et_wand)
        if pivot_index is None:
            # No document can reach the top-k anymore: terminate early.
            return
        pivot_doc = alive[pivot_index].current_doc()
        # Absorb ties so every list at the pivot docID is in the pivot set.
        while (
            pivot_index + 1 < len(alive)
            and alive[pivot_index + 1].current_doc() == pivot_doc
        ):
            pivot_index += 1
        pivot_set = alive[: pivot_index + 1]

        # Block-level check (score-estimation unit in the block fetch
        # module): sum the max term-scores of the blocks that overlap the
        # pivot document.
        if et_block:
            block_bound, min_boundary = _block_upper_bound(
                pivot_set, pivot_doc, interval_blocks
            )
            if block_bound + ET_EPSILON <= topk.cutoff:
                _skip_interval(alive, pivot_index, pivot_doc, min_boundary)
                alive = [c for c in alive if not c.exhausted]
                continue

        # (4) Document scheduler: evaluate the pivot if every preceding
        # queue has reached it; otherwise pop the skippable docIDs.
        first_doc = alive[0].current_doc()
        if first_doc == pivot_doc:
            _evaluate_pivot(pivot_set, pivot_doc, scorer, topk, work)
        else:
            for cursor in pivot_set:
                if cursor.current_doc() < pivot_doc:
                    cursor.advance_to(pivot_doc)
        alive = [c for c in alive if not c.exhausted]


def _sort_key(cursor: ListCursor) -> Tuple[int, float]:
    doc = cursor.current_doc()
    return (doc if doc is not None else 1 << 62, -cursor.list_max_score)


def _select_pivot(alive: Sequence[ListCursor], cutoff: float,
                  et_wand: bool) -> Optional[int]:
    """Index of the pivot list, or None when ET proves nothing can win.

    With document-level ET disabled, every document is a candidate, so
    the pivot is always the first list (exhaustive evaluation order).
    """
    if not et_wand:
        return 0
    upper_bound = 0.0
    for index, cursor in enumerate(alive):
        upper_bound += cursor.list_max_score
        if upper_bound + ET_EPSILON > cutoff:
            return index
    return None


def _block_upper_bound(pivot_set: Sequence[ListCursor], pivot_doc: int,
                       interval_blocks: int) -> Tuple[float, int]:
    """Sum of per-interval max scores at the pivot across the pivot set.

    Returns ``(bound, min_boundary)`` where ``min_boundary`` is the
    smallest interval-end docID among the inspected intervals — the
    point up to which the bound stays valid.
    """
    bound = 0.0
    min_boundary = 1 << 62
    for cursor in pivot_set:
        peek = cursor.peek_block_at(pivot_doc, window=interval_blocks)
        if peek is None:
            continue
        max_score, block_last = peek
        bound += max_score
        min_boundary = min(min_boundary, block_last)
    return bound, min_boundary


def _skip_interval(alive: Sequence[ListCursor], pivot_index: int,
                   pivot_doc: int, min_boundary: int) -> None:
    """Skip the interval that the block check proved fruitless.

    Safe up to ``d = min(min_boundary + 1, sID of the list after the
    pivot set)``: beyond the first bound a new block (with a new maximum)
    begins; beyond the second a new list joins the candidate set.
    """
    d = min_boundary + 1
    if pivot_index + 1 < len(alive):
        next_doc = alive[pivot_index + 1].current_doc()
        if next_doc is not None:
            d = min(d, next_doc)
    # Progress guarantee: the pivot set's blocks all end at or after the
    # pivot, so d > pivot_doc >= every pivot-set sID. advance_to defers
    # the payload fetch whenever d lands on a block boundary.
    for cursor in alive[: pivot_index + 1]:
        cursor.advance_to(d)


def _evaluate_pivot(pivot_set: Sequence[ListCursor], pivot_doc: int,
                    scorer: BM25Scorer, topk: TopKQueue,
                    work: WorkCounters) -> None:
    """Full scoring of the pivot document (the scoring module path)."""
    score = 0.0
    for cursor in pivot_set:
        if cursor.current_doc() == pivot_doc:
            score += scorer.term_score(
                cursor.idf, cursor.current_tf(), pivot_doc
            )
    work.docs_evaluated += 1
    work.docs_matched += 1
    work.topk_inserts += 1
    topk.offer(pivot_doc, score)
    for cursor in pivot_set:
        if not cursor.exhausted and cursor.current_doc() == pivot_doc:
            cursor.step()
