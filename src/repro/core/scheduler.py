"""Command queue + query scheduler model (paper Figure 4(a)).

Queries arriving from the host are buffered in the device's command
queue; the query scheduler assigns each to free BOSS cores (one core for
up to 4 terms, chained cores beyond that, Section IV-D). This module
simulates that dispatch loop event-by-event to produce what the batch
throughput model cannot: per-query *latency* statistics (mean/p50/p99),
queue depths, and core utilization.

Service times come from the timing model (uncontended per-query time);
bandwidth contention is applied as a global slowdown when the batch's
aggregate memory demand exceeds the device's sequential bandwidth —
the same saturation condition the throughput model uses, so the two
models agree on aggregate behavior.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.result import SearchResult
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScheduledQuery:
    """Completion record for one query."""

    index: int
    arrival: float
    start: float
    finish: float
    cores: int

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queueing_delay(self) -> float:
        return self.start - self.arrival


@dataclass(frozen=True)
class ScheduleReport:
    """Aggregate outcome of one scheduler run."""

    completions: List[ScheduledQuery]
    makespan: float
    core_utilization: float
    max_queue_depth: int

    @property
    def latencies(self) -> List[float]:
        return sorted(q.latency for q in self.completions)

    def latency_percentile(self, percentile: float) -> float:
        """Latency at ``percentile`` in [0, 100]."""
        if not 0 <= percentile <= 100:
            raise ConfigurationError("percentile must be in [0, 100]")
        ordered = self.latencies
        if not ordered:
            raise ConfigurationError("no completed queries")
        index = min(len(ordered) - 1,
                    int(percentile / 100.0 * len(ordered)))
        return ordered[index]

    @property
    def mean_latency(self) -> float:
        ordered = self.latencies
        return sum(ordered) / len(ordered) if ordered else 0.0


class QueryScheduler:
    """FCFS dispatch of queries onto the device's BOSS cores."""

    def __init__(self, timing_model, num_cores: int = 8) -> None:
        if num_cores <= 0:
            raise ConfigurationError("need at least one core")
        self._timing = timing_model
        self._num_cores = num_cores

    def run(self, results: Sequence[SearchResult],
            arrival_rate: Optional[float] = None) -> ScheduleReport:
        """Simulate dispatching ``results``.

        ``arrival_rate`` (queries/second) spaces arrivals uniformly;
        ``None`` models a closed batch where everything arrives at t=0.
        """
        if not results:
            raise ConfigurationError("no queries to schedule")

        # Uncontended service times, then a global contention factor if
        # aggregate memory demand would oversubscribe the device.
        service = [self._timing.query_seconds(r) for r in results]
        cores_needed = [min(self._num_cores, self._timing.cores_used(r))
                        for r in results]
        contention = self._contention_factor(results, service)
        service = [s * contention for s in service]

        if arrival_rate is None:
            arrivals = [0.0] * len(results)
        else:
            if arrival_rate <= 0:
                raise ConfigurationError("arrival rate must be positive")
            arrivals = [i / arrival_rate for i in range(len(results))]

        free_cores = self._num_cores
        #: (finish_time, sequence, cores) for in-flight queries.
        in_flight: List = []
        pending: List[int] = []
        completions: List[ScheduledQuery] = []
        busy_core_seconds = 0.0
        now = 0.0
        next_arrival = 0
        max_queue_depth = 0

        while len(completions) < len(results):
            # Admit every query that has arrived by `now`.
            while (next_arrival < len(results)
                   and arrivals[next_arrival] <= now + 1e-15):
                pending.append(next_arrival)
                next_arrival += 1
            max_queue_depth = max(max_queue_depth, len(pending))

            # Dispatch FCFS while cores are free.
            dispatched = False
            while pending and free_cores >= cores_needed[pending[0]]:
                index = pending.pop(0)
                cores = cores_needed[index]
                free_cores -= cores
                finish = now + service[index]
                heapq.heappush(in_flight, (finish, index, cores))
                completions.append(ScheduledQuery(
                    index=index, arrival=arrivals[index], start=now,
                    finish=finish, cores=cores,
                ))
                busy_core_seconds += cores * service[index]
                dispatched = True
            if dispatched:
                continue

            # Advance time: next completion or next arrival.
            candidates = []
            if in_flight:
                candidates.append(in_flight[0][0])
            if next_arrival < len(results):
                candidates.append(arrivals[next_arrival])
            if not candidates:
                break
            now = min(candidates)
            while in_flight and in_flight[0][0] <= now + 1e-15:
                _finish, _index, cores = heapq.heappop(in_flight)
                free_cores += cores

        makespan = max(q.finish for q in completions)
        utilization = (
            busy_core_seconds / (makespan * self._num_cores)
            if makespan > 0 else 0.0
        )
        return ScheduleReport(
            completions=sorted(completions, key=lambda q: q.index),
            makespan=makespan,
            core_utilization=min(1.0, utilization),
            max_queue_depth=max_queue_depth,
        )

    def _contention_factor(self, results: Sequence[SearchResult],
                           service: Sequence[float]) -> float:
        """Global slowdown when memory demand exceeds device bandwidth."""
        total_memory = sum(
            self._timing.memory_seconds(r) for r in results
        )
        total_compute_span = sum(
            s * c for s, c in zip(
                service,
                (min(self._num_cores, self._timing.cores_used(r))
                 for r in results),
            )
        ) / self._num_cores
        if total_compute_span <= 0:
            return 1.0
        return max(1.0, total_memory / total_compute_span)
