"""The BOSS accelerator: query execution over one memory node's shard.

:class:`BossAccelerator` models the device of Figure 4: it accepts query
expressions through the offloading API, normalizes them, and executes
them on the BOSS core pipeline —

    block fetch -> decompression -> intersection/union -> scoring -> top-k

Execution is functionally exact (true BM25 top-k) and annotated with the
work and traffic measurements the performance model consumes.

Query routing (Section IV-B):

* **union** (term, or OR of terms): the union module's hardware WAND with
  the block fetch module's score-estimation ET;
* **intersection** (AND of terms): pipelined SvS with overlap-check block
  skipping;
* **mixed** (AND over terms and OR-groups, e.g. Q6): intersections first —
  the OR-groups run as merged streams feeding the intersection unit, so
  every posting list is fetched at most once and nothing spills to SCM;
* any other shape is rewritten to a union of intersections
  (``push_intersections_down``) and executed branch by branch.

Queries with more than 4 terms occupy multiple cores (the mergers chain,
Section IV-D); the per-query ``cores_used`` feeds the throughput model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.columnar import run_union_columnar, score_matches_columnar
from repro.core.cursor import SKIP_ET, SKIP_OVERLAP, ListCursor
from repro.core.fastexec import (
    run_grouped_intersection_fast,
    run_union_fast,
)
from repro.core.groups import GroupCursor
from repro.core.intersection import run_grouped_intersection
from repro.core.query import (
    AndNode,
    OrNode,
    QueryNode,
    TermNode,
    flatten,
    parse_query,
    push_intersections_down,
)
from repro.core.result import ScoredDocument, SearchResult
from repro.core.topk import DEFAULT_K, TopKQueue
from repro.core.union import run_union
from repro.cache import DecodedBlockCache
from repro.errors import QueryError
from repro.index.index import InvertedIndex
from repro.observability.observer import NULL_OBSERVER, Observer
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter
from repro.sim.metrics import WorkCounters

#: Bytes of per-document scoring metadata fetched per evaluated document
#: (4 B pre-computed BM25 normalizer + 4 B document descriptor).
SCORE_METADATA_BYTES = 8

#: Bytes per result entry shipped to the host (4 B docID + 4 B score).
RESULT_ENTRY_BYTES = 8

#: Terms a single BOSS core processes natively (Section IV-B).
TERMS_PER_CORE = 4

#: Executor implementations the engine can route queries through. All
#: three are pinned bit-identical by the equivalence suite; they differ
#: only in host-side wall clock.
EXECUTORS = ("reference", "fast", "columnar")


@dataclass(frozen=True)
class BossConfig:
    """Device configuration (Table I, "BOSS Configuration")."""

    num_cores: int = 8
    clock_hz: float = 1.0e9
    k: int = DEFAULT_K
    decompression_modules: int = 4
    scoring_modules: int = 4
    #: Block-level early termination (score-estimation unit).
    et_block: bool = True
    #: Document-level early termination (union module WAND).
    et_wand: bool = True
    #: Pruning-interval length in blocks for the score-estimation unit.
    #: 1 gives per-block bounds (tightest pruning); larger values model
    #: the paper's "longer intervals" latency trade-off (Section VI) at
    #: the cost of looser bounds — sweepable in the ablation bench.
    et_interval_blocks: int = 1

    def exhaustive(self) -> "BossConfig":
        """The BOSS-exhaustive ablation of Figure 13 (no ET at all)."""
        return replace(self, et_block=False, et_wand=False)

    def block_only(self) -> "BossConfig":
        """The BOSS-block-only ablation of Figure 14 (block ET only)."""
        return replace(self, et_block=True, et_wand=False)


class BossAccelerator:
    """Near-data search accelerator bound to one shard's inverted index."""

    def __init__(self, index: InvertedIndex,
                 config: Optional[BossConfig] = None,
                 observer: Observer = NULL_OBSERVER,
                 fast_path: bool = True,
                 decoded_cache=None,
                 executor: Optional[str] = None) -> None:
        self._index = index
        self._config = BossConfig() if config is None else config
        self._observer = observer
        #: When set (a list), every block payload fetch is appended as
        #: (term, block_index, bytes) — input to the cache simulator.
        self.fetch_log = None
        #: Which executor implementation runs queries. ``None`` derives
        #: it from ``fast_path`` (the pre-columnar API); an explicit
        #: name overrides ``fast_path`` entirely.
        if executor is None:
            executor = "fast" if fast_path else "reference"
        elif executor not in EXECUTORS:
            raise QueryError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self._executor = executor
        #: Bulk array decode vs the per-value reference decode path.
        #: ``fast_path=False`` reproduces the pre-fast-path engine
        #: exactly (reference decoders, no decoded-block cache) — the
        #: baseline side of the wall-clock benchmark and of the
        #: modeled-metrics equivalence tests. The columnar executor
        #: rides on the bulk decode path.
        fast_path = executor != "reference"
        self._fast_path = fast_path
        #: Cross-query block-score cache for the columnar executor
        #: (block scores depend only on the index snapshot).
        self._columnar_scores = {} if executor == "columnar" else None
        # Host-side decoded-block cache: None -> default-capacity cache
        # when the fast path is on; an int -> that capacity in blocks
        # (0 disables); a DecodedBlockCache -> shared instance (the
        # cluster hands one cache to all its leaf engines).
        if decoded_cache is None:
            self._decoded_cache = (
                DecodedBlockCache(observer=observer) if fast_path else None
            )
        elif isinstance(decoded_cache, int):
            self._decoded_cache = (
                DecodedBlockCache(decoded_cache, observer=observer)
                if decoded_cache else None
            )
        else:
            self._decoded_cache = decoded_cache

    @property
    def observer(self) -> Observer:
        return self._observer

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def config(self) -> BossConfig:
        return self._config

    @property
    def fast_path(self) -> bool:
        return self._fast_path

    @property
    def executor(self) -> str:
        """The executor implementation this engine routes queries to."""
        return self._executor

    @property
    def decoded_cache(self):
        """The engine's :class:`DecodedBlockCache` (or None)."""
        return self._decoded_cache

    def search(self, query: Union[str, QueryNode],
               k: int = None) -> SearchResult:
        """Execute a query and return the ranked top-k with measurements.

        ``query`` may be a paper-syntax expression string (terms quoted,
        ``AND``/``OR``, parentheses) or a pre-built AST node.
        """
        node = parse_query(query) if isinstance(query, str) else flatten(query)
        self._check_terms(node)
        k = self._config.k if k is None else k
        if self._observer.enabled:
            self._observer.on_query_start("BOSS", node, k)

        work = WorkCounters()
        traffic = TrafficCounter()
        topk = TopKQueue(k)

        if isinstance(node, TermNode) or (
            isinstance(node, OrNode)
            and all(isinstance(c, TermNode) for c in node.children)
        ):
            self._execute_union(node, topk, work, traffic)
        elif isinstance(node, AndNode) and all(
            self._is_term_or_term_union(c) for c in node.children
        ):
            self._execute_and_of_groups(node, topk, work, traffic)
        else:
            self._execute_general(node, topk, work, traffic)

        hits = [ScoredDocument(d, s) for d, s in topk.results()]
        work.topk_inserts = max(work.topk_inserts, topk.inserts)

        # Scoring metadata loads: one small random read per evaluated doc.
        traffic.record(
            AccessClass.LD_SCORE,
            AccessPattern.RANDOM,
            SCORE_METADATA_BYTES * work.docs_evaluated,
            accesses=work.docs_evaluated,
        )
        # Only the top-k leaves the device: a result store plus the host
        # transfer across the shared interconnect.
        result_bytes = RESULT_ENTRY_BYTES * len(hits)
        traffic.record(
            AccessClass.ST_RESULT,
            AccessPattern.SEQUENTIAL,
            result_bytes,
            accesses=1 if hits else 0,
        )

        result = SearchResult(
            query=node,
            hits=hits,
            traffic=traffic,
            work=work,
            interconnect_bytes=result_bytes,
        )
        if self._observer.enabled:
            self._observer.on_query_complete(
                result, engine="BOSS", cores_used=self.cores_used(node)
            )
        return result

    def cores_used(self, node: QueryNode) -> int:
        """BOSS cores a query occupies (4 terms per core, Section IV-D)."""
        return max(1, math.ceil(len(node.terms()) / TERMS_PER_CORE))

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------

    def _execute_union(self, node: QueryNode, topk: TopKQueue,
                       work: WorkCounters, traffic: TrafficCounter) -> None:
        terms = node.terms()
        cursors = [
            self._cursor(t, work, traffic, SKIP_ET) for t in terms
        ]
        if self._executor == "columnar":
            run_union_columnar(
                cursors,
                self._index.scorer,
                topk,
                work,
                et_block=self._config.et_block,
                et_wand=self._config.et_wand,
                interval_blocks=self._config.et_interval_blocks,
                score_cache=self._columnar_scores,
            )
            return
        runner = run_union_fast if self._fast_path else run_union
        runner(
            cursors,
            self._index.scorer,
            topk,
            work,
            et_block=self._config.et_block,
            et_wand=self._config.et_wand,
            interval_blocks=self._config.et_interval_blocks,
        )

    def _execute_and_of_groups(self, node: AndNode, topk: TopKQueue,
                               work: WorkCounters,
                               traffic: TrafficCounter) -> None:
        """Q2/Q4/Q6 path: AND over terms and OR-of-term groups."""
        groups: List[GroupCursor] = []
        for child in node.children:
            members = [
                self._cursor(t, work, traffic, SKIP_OVERLAP)
                for t in child.terms()
            ]
            groups.append(GroupCursor(members, work))
        matches = self._intersect(groups, work)
        self._score_matches(matches, topk, work)

    def _execute_general(self, node: QueryNode, topk: TopKQueue,
                         work: WorkCounters,
                         traffic: TrafficCounter) -> None:
        """Fallback: rewrite to a union of intersections and merge.

        Every conjunction runs as a pipelined intersection; the branch
        outputs merge in the pipeline (no spill) before scoring. Term
        scores cover every term witnessed by a matching branch — exact
        for all Table II query shapes.
        """
        dnf = push_intersections_down(node)
        branches = (
            list(dnf.children) if isinstance(dnf, OrNode) else [dnf]
        )
        merged: Dict[int, Dict[str, int]] = {}
        for branch in branches:
            groups = [
                GroupCursor(
                    [self._cursor(t, work, traffic, SKIP_OVERLAP)
                     for t in child.terms()],
                    work,
                )
                for child in (
                    branch.children
                    if isinstance(branch, AndNode)
                    else [branch]
                )
            ]
            for doc, tfs in self._intersect(groups, work):
                merged.setdefault(doc, {}).update(tfs)
        matches = sorted(merged.items())

        # BM25 scores every query term present in a matching document,
        # including terms the matching branch did not touch; probe the
        # remaining lists monotonically to complete the tf maps.
        all_terms = sorted(set(node.terms()))
        probes = {
            term: self._cursor(term, work, traffic, SKIP_OVERLAP)
            for term in all_terms
        }
        for doc, tfs in matches:
            for term in all_terms:
                if term in tfs:
                    continue
                landed = probes[term].advance_to(doc)
                work.merge_ops += 1
                if landed == doc:
                    tfs[term] = probes[term].current_tf()
        self._score_matches(matches, topk, work)

    def _score_matches(self, matches: Sequence[Tuple[int, Dict[str, int]]],
                       topk: TopKQueue, work: WorkCounters) -> None:
        """Scoring + top-k modules for set-operation outputs."""
        if self._executor == "columnar":
            score_matches_columnar(matches, self._index, topk, work)
            return
        scorer = self._index.scorer
        for doc, tfs in matches:
            score = 0.0
            for term, tf in tfs.items():
                score += scorer.term_score(
                    self._index.posting_list(term).idf, tf, doc
                )
            work.docs_evaluated += 1
            work.topk_inserts += 1
            topk.offer(doc, score)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _intersect(self, groups: List[GroupCursor], work: WorkCounters):
        if self._fast_path:
            return run_grouped_intersection_fast(groups, work)
        return run_grouped_intersection(groups, work)

    def _cursor(self, term: str, work: WorkCounters,
                traffic: TrafficCounter, skip_class: str) -> ListCursor:
        return ListCursor(
            self._index.posting_list(term),
            work,
            traffic,
            pattern=AccessPattern.SEQUENTIAL,
            skip_class=skip_class,
            fetch_log=self.fetch_log,
            observer=self._observer,
            decoded_cache=self._decoded_cache,
            fast_path=self._fast_path,
        )

    def _check_terms(self, node: QueryNode) -> None:
        missing = [t for t in node.terms() if t not in self._index]
        if missing:
            raise QueryError(f"terms not in index: {missing}")

    @staticmethod
    def _is_term_or_term_union(node: QueryNode) -> bool:
        return isinstance(node, TermNode) or (
            isinstance(node, OrNode)
            and all(isinstance(c, TermNode) for c in node.children)
        )
