"""Query expressions: AST, parser, and classification.

The offloading API (paper Section IV-D) expresses queries as strings in
which query terms are quoted and combined with ``AND`` / ``OR`` and round
brackets, e.g. ``"A" AND ("B" OR "C")``. This module provides:

* the AST node types (:class:`TermNode`, :class:`AndNode`,
  :class:`OrNode`);
* a recursive-descent parser for the string syntax (``AND`` binds
  tighter than ``OR``, matching the paper's "executes the query
  according to the priority of the set operation");
* normalization used by BOSS's mixed-query strategy: intersections are
  pushed below unions (``A AND (B OR C)`` -> ``(A AND B) OR (A AND C)``,
  the paper's Section IV-B example), so execution always runs
  intersections first;
* query-type classification into the paper's Table II types Q1–Q6.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.errors import QueryError


@dataclass(frozen=True)
class TermNode:
    """A single query term."""

    term: str

    def terms(self) -> List[str]:
        return [self.term]

    def __str__(self) -> str:
        return f'"{self.term}"'


@dataclass(frozen=True)
class AndNode:
    """Intersection of sub-expressions."""

    children: Tuple["QueryNode", ...]

    def terms(self) -> List[str]:
        return [t for child in self.children for t in child.terms()]

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class OrNode:
    """Union of sub-expressions."""

    children: Tuple["QueryNode", ...]

    def terms(self) -> List[str]:
        return [t for child in self.children for t in child.terms()]

    def __str__(self) -> str:
        return "(" + " OR ".join(str(c) for c in self.children) + ")"


QueryNode = Union[TermNode, AndNode, OrNode]

_TOKEN_RE = re.compile(
    r'\s*(?:(?P<term>"[^"]+")|(?P<op>AND|OR)|(?P<lparen>\()|(?P<rparen>\)))'
)


def _tokenize(expression: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            rest = expression[position:].strip()
            if not rest:
                break
            raise QueryError(
                f"cannot tokenize query at ...{expression[position:position+20]!r}"
            )
        position = match.end()
        if match.lastgroup == "term":
            tokens.append(("term", match.group("term")[1:-1]))
        elif match.lastgroup == "op":
            tokens.append(("op", match.group("op")))
        elif match.lastgroup == "lparen":
            tokens.append(("lparen", "("))
        else:
            tokens.append(("rparen", ")"))
    return tokens


class _Parser:
    """Recursive-descent parser: OR has lowest precedence."""

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._position = 0

    def parse(self) -> QueryNode:
        node = self._parse_or()
        if self._position != len(self._tokens):
            raise QueryError("trailing tokens after query expression")
        return node

    def _peek(self) -> Tuple[str, str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return ("eof", "")

    def _advance(self) -> Tuple[str, str]:
        token = self._peek()
        self._position += 1
        return token

    def _parse_or(self) -> QueryNode:
        children = [self._parse_and()]
        while self._peek() == ("op", "OR"):
            self._advance()
            children.append(self._parse_and())
        if len(children) == 1:
            return children[0]
        return OrNode(tuple(children))

    def _parse_and(self) -> QueryNode:
        children = [self._parse_atom()]
        while self._peek() == ("op", "AND"):
            self._advance()
            children.append(self._parse_atom())
        if len(children) == 1:
            return children[0]
        return AndNode(tuple(children))

    def _parse_atom(self) -> QueryNode:
        kind, value = self._advance()
        if kind == "term":
            return TermNode(value)
        if kind == "lparen":
            node = self._parse_or()
            if self._advance()[0] != "rparen":
                raise QueryError("unbalanced parentheses in query")
            return node
        raise QueryError(f"unexpected token {value!r} in query")


def parse_query(expression: str) -> QueryNode:
    """Parse a paper-syntax query expression into an AST.

    >>> parse_query('"a" AND ("b" OR "c")')
    AndNode(children=(TermNode(term='a'), OrNode(...)))
    """
    tokens = _tokenize(expression)
    if not tokens:
        raise QueryError("empty query expression")
    return _Parser(tokens).parse()


def flatten(node: QueryNode) -> QueryNode:
    """Merge nested same-type operators: ``(a AND b) AND c`` -> 3-way AND."""
    if isinstance(node, TermNode):
        return node
    flat_children: List[QueryNode] = []
    for child in node.children:
        child = flatten(child)
        if type(child) is type(node):
            flat_children.extend(child.children)  # type: ignore[union-attr]
        else:
            flat_children.append(child)
    if len(flat_children) == 1:
        return flat_children[0]
    return type(node)(tuple(flat_children))


def prune_query(node: QueryNode,
                present: Callable[[str], bool]) -> Optional[QueryNode]:
    """Restrict a query to terms one index partition actually holds.

    The algebra shared by the cluster root's per-shard dissection and
    the live index's per-segment execution: a missing term annihilates
    an AND (its intersection is empty there) and drops out of an OR.
    Returns ``None`` when nothing in the partition can match.
    """
    if isinstance(node, TermNode):
        return node if present(node.term) else None
    pruned = [prune_query(child, present) for child in node.children]
    if isinstance(node, AndNode):
        if any(child is None for child in pruned):
            return None
        return AndNode(tuple(pruned))
    kept = [child for child in pruned if child is not None]
    if not kept:
        return None
    if len(kept) == 1:
        return kept[0]
    return OrNode(tuple(kept))


def prune_query_scored(node: QueryNode,
                       present: Callable[[str], bool]
                       ) -> Optional[QueryNode]:
    """Match-preserving prune that keeps score parity with a monolith.

    :func:`prune_query` alone is exact for *matching* but not for
    *scoring*: the engine's general path scores every query term a
    matching document contains, including terms of branches the
    document does not satisfy. Annihilating an AND branch because one
    of its terms is absent from this partition would also drop the
    branch's *present* terms from that probe set, under-scoring
    documents matched through other branches. So when pruning discards
    present terms, re-attach them in a branch that cannot add matches —
    ``OR(pruned, AND(extras..., pruned))`` has exactly ``match(pruned)``
    but carries every present query term for the scoring probes.
    """
    pruned = prune_query(node, present)
    if pruned is None:
        return None
    kept = set(pruned.terms())
    extras = sorted({
        term for term in node.terms()
        if term not in kept and present(term)
    })
    if not extras:
        return pruned
    score_branch = AndNode(
        tuple(TermNode(term) for term in extras) + (pruned,)
    )
    return OrNode((pruned, score_branch))


def push_intersections_down(node: QueryNode) -> QueryNode:
    """Rewrite so intersections execute first (paper Section IV-B).

    BOSS processes mixed queries by distributing AND over OR:
    ``A AND (B OR C)`` becomes ``(A AND B) OR (A AND C)``. The result is a
    union of pure intersections (disjunctive normal form), which is
    bandwidth-friendly because intersections always shrink posting lists.
    """
    node = flatten(node)
    if isinstance(node, TermNode):
        return node
    if isinstance(node, OrNode):
        return flatten(OrNode(tuple(
            push_intersections_down(c) for c in node.children
        )))
    # AND node: distribute over any OR child (cartesian product of the
    # children's alternatives).
    normalized_children = [push_intersections_down(c) for c in node.children]
    combos: List[List[QueryNode]] = [[]]
    for child in normalized_children:
        alternatives = (
            list(child.children) if isinstance(child, OrNode) else [child]
        )
        combos = [prefix + [alt] for prefix in combos for alt in alternatives]
    conjunctions: List[QueryNode] = []
    for combo in combos:
        if len(combo) == 1:
            conjunctions.append(combo[0])
        else:
            conjunctions.append(flatten(AndNode(tuple(combo))))
    if len(conjunctions) == 1:
        return conjunctions[0]
    return flatten(OrNode(tuple(conjunctions)))


def classify_query(node: QueryNode) -> str:
    """Map an AST onto the paper's Table II query types Q1–Q6.

    ====  =====================  =======================
    type  number of terms        operation
    ====  =====================  =======================
    Q1    1                      A
    Q2    2                      A AND B
    Q3    2                      A OR B
    Q4    4                      A AND B AND C AND D
    Q5    4                      A OR B OR C OR D
    Q6    4                      A AND (B OR C OR D)
    ====  =====================  =======================

    Queries outside the table are classified as ``"mixed"`` (more terms)
    or by their top-level shape.
    """
    node = flatten(node)
    n_terms = len(node.terms())
    if isinstance(node, TermNode):
        return "Q1"
    if isinstance(node, AndNode):
        if all(isinstance(c, TermNode) for c in node.children):
            if n_terms == 2:
                return "Q2"
            if n_terms == 4:
                return "Q4"
        if (
            n_terms == 4
            and len(node.children) == 2
            and any(isinstance(c, TermNode) for c in node.children)
            and any(
                isinstance(c, OrNode)
                and all(isinstance(g, TermNode) for g in c.children)
                for c in node.children
            )
        ):
            return "Q6"
        return "mixed"
    if isinstance(node, OrNode):
        if all(isinstance(c, TermNode) for c in node.children):
            if n_terms == 2:
                return "Q3"
            if n_terms == 4:
                return "Q5"
        return "mixed"
    return "mixed"
