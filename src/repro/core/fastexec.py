"""Fast-path executors: the reference algorithms, engineered for speed.

:func:`run_union_fast` and :func:`run_grouped_intersection_fast` are
operation-for-operation replicas of :func:`repro.core.union.run_union`
and :func:`repro.core.intersection.run_grouped_intersection`. They
perform the *same* abstract algorithm — the same cursor movements in the
same order, the same counter increments, the same floating-point
summation order — but keep the hot per-iteration state (each cursor's
current docID, its list-max score, the top-k cutoff) in loop-local
variables instead of re-deriving it through method and property calls
on every iteration.

Why this is safe: all modeled side effects live inside
:class:`~repro.core.cursor.ListCursor`'s *movement* operations
(``advance_to``, ``step``, ``current_tf`` — block fetches, skips,
metadata charges, observer events), and those are still invoked exactly
as the reference executors invoke them. The polling operations the
replicas elide (``exhausted``, repeated ``current_doc``) are pure or
idempotent: a docID cannot change without a movement, and metadata
charging is high-water-mark based, so reading a cached docID is
indistinguishable from re-asking the cursor. The modeled-metrics
equivalence suite (``tests/test_fastpath_equivalence.py``) pins the two
implementations bit-identical — rankings, work counters, per-bucket
traffic, and full traces.

The engine selects these executors only when its fast path is enabled;
``fast_path=False`` runs the reference executors unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from operator import itemgetter
from typing import List, Optional, Sequence

from repro.core.groups import GroupCursor
from repro.core.topk import TopKQueue
from repro.core.union import ET_EPSILON
from repro.errors import SimulationError
from repro.index.bm25 import BM25Scorer
from repro.sim.metrics import WorkCounters

#: Sort key over alive entries ``[doc, -max_score, ...]`` — the same
#: ``(doc, -list_max_score)`` ordering as ``union._sort_key``, extracted
#: at C speed.
_ENTRY_KEY = itemgetter(0, 1)


def _step_slow(cursor) -> Optional[int]:
    """Block-transition half of a step: delegate to the cursor itself.

    Used when the next posting is *not* in the already-decoded block
    (boundary crossing or an undecoded block), so the cursor's own
    ``step`` performs the fetch/skip accounting.
    """
    cursor.step()
    ids = cursor._decoded_doc_ids
    if ids is not None:
        return ids[cursor._position]
    return cursor.current_doc()


def _step_inline(cursor) -> Optional[int]:
    """``cursor.step()`` + return the new docID (None when exhausted).

    The common case — the next posting lives in the already-decoded
    block — is a single index bump; everything else falls through to
    :func:`_step_slow`.
    """
    ids = cursor._decoded_doc_ids
    position = cursor._position + 1
    if ids is not None and position < len(ids):
        cursor._position = position
        return ids[position]
    return _step_slow(cursor)


def _tf_inline(cursor) -> int:
    """``cursor.current_tf()`` without the method call when decoded."""
    tfs = cursor._decoded_tfs
    if tfs is not None:
        return tfs[cursor._position]
    return cursor.current_tf()


def run_union_fast(cursors, scorer: BM25Scorer, topk: TopKQueue,
                   work: WorkCounters, et_block: bool = True,
                   et_wand: bool = True, interval_blocks: int = 1) -> None:
    """Fast replica of :func:`repro.core.union.run_union`.

    Alive cursors are tracked as mutable entries
    ``[doc, -max_score, max_score, idf, cursor, block_lasts,
    block_max_scores]`` whose docID slot is refreshed after every
    movement, so sorting, pivot selection, tie absorption and the
    block-level ET peek read plain ints/floats instead of calling back
    into the cursor. Work counters accumulate in locals and flush on
    exit (nothing observes them mid-query).
    """
    alive: List[list] = []
    for cursor in cursors:
        if not cursor.exhausted:
            max_score = cursor.list_max_score
            blocks = cursor.posting_list.blocks
            alive.append([cursor.current_doc(), -max_score, max_score,
                          cursor.idf, cursor, cursor._lasts,
                          [b.metadata.max_term_score for b in blocks]])

    # BM25 term-score arithmetic, inlined with the exact operation order
    # of ``BM25Scorer.term_score``:
    #   idf * (tf * (k1 + 1.0)) / (tf + normalizer)
    normalizers = scorer._normalizers
    k1_plus_1 = scorer.params.k1 + 1.0
    offer = topk.offer
    # ``TopKQueue.cutoff`` inlined: 0.0 until the queue is full, else
    # the lowest resident score (entries are sorted ascending).
    topk_entries = topk._entries
    topk_k = topk.k
    cutoff = topk_entries[0][0] if len(topk_entries) >= topk_k else 0.0
    merge_ops = docs_evaluated = docs_matched = topk_inserts = 0
    try:
        while alive:
            # (1) Sorter: order by (sID, -list max score), stable.
            alive.sort(key=_ENTRY_KEY)
            merge_ops += 1

            # (2)+(3) Score loader + pivot selector (WAND).
            if et_wand:
                pivot_index = None
                upper_bound = 0.0
                for index, entry in enumerate(alive):
                    upper_bound += entry[2]
                    if upper_bound + ET_EPSILON > cutoff:
                        pivot_index = index
                        break
                if pivot_index is None:
                    return
            else:
                pivot_index = 0
            pivot_doc = alive[pivot_index][0]
            num_alive = len(alive)
            while (pivot_index + 1 < num_alive
                   and alive[pivot_index + 1][0] == pivot_doc):
                pivot_index += 1
            pivot_set = alive[: pivot_index + 1]

            # Block-level check (score-estimation unit). For the default
            # one-block interval the peek is inlined: the pivot-set
            # cursors are live by construction (no exhausted check) and
            # the bound is one precomputed per-block maximum. Metadata
            # is still charged through the cursor, block by block.
            if et_block:
                bound = 0.0
                min_boundary = 1 << 62
                if interval_blocks == 1:
                    for entry in pivot_set:
                        lasts = entry[5]
                        index = bisect_left(lasts, pivot_doc,
                                            entry[4]._block_index)
                        if index >= len(lasts):
                            continue
                        entry[4]._charge_metadata(index)
                        bound += entry[6][index]
                        block_last = lasts[index]
                        if block_last < min_boundary:
                            min_boundary = block_last
                else:
                    for entry in pivot_set:
                        peek = entry[4].peek_block_at(
                            pivot_doc, window=interval_blocks
                        )
                        if peek is None:
                            continue
                        max_score, block_last = peek
                        bound += max_score
                        if block_last < min_boundary:
                            min_boundary = block_last
                if bound + ET_EPSILON <= cutoff:
                    d = min_boundary + 1
                    if pivot_index + 1 < num_alive:
                        next_doc = alive[pivot_index + 1][0]
                        if next_doc < d:
                            d = next_doc
                    for entry in pivot_set:
                        entry[0] = entry[4].advance_to(d)
                    alive = [e for e in alive if e[0] is not None]
                    continue

            # (4) Document scheduler.
            if alive[0][0] == pivot_doc:
                score = 0.0
                normalizer = normalizers[pivot_doc]
                for entry in pivot_set:
                    if entry[0] == pivot_doc:
                        cursor = entry[4]
                        tfs = cursor._decoded_tfs
                        tf = (tfs[cursor._position] if tfs is not None
                              else cursor.current_tf())
                        score += (entry[3] * (tf * k1_plus_1)
                                  / (tf + normalizer))
                docs_evaluated += 1
                docs_matched += 1
                topk_inserts += 1
                offer(pivot_doc, score)
                cutoff = (topk_entries[0][0]
                          if len(topk_entries) >= topk_k else 0.0)
                for entry in pivot_set:
                    if entry[0] == pivot_doc:
                        cursor = entry[4]
                        ids = cursor._decoded_doc_ids
                        position = cursor._position + 1
                        if ids is not None and position < len(ids):
                            cursor._position = position
                            entry[0] = ids[position]
                        else:
                            entry[0] = _step_slow(cursor)
            else:
                for entry in pivot_set:
                    if entry[0] < pivot_doc:
                        entry[0] = entry[4].advance_to(pivot_doc)
            alive = [e for e in alive if e[0] is not None]
    finally:
        work.merge_ops += merge_ops
        work.docs_evaluated += docs_evaluated
        work.docs_matched += docs_matched
        work.topk_inserts += topk_inserts


def run_grouped_intersection_fast(groups: Sequence[GroupCursor],
                                  work: WorkCounters):
    """Fast replica of ``intersection.run_grouped_intersection``.

    Each group's member cursors are tracked as ``[doc, cursor]`` entries
    (doc None = exhausted); the group-level min-docID, tf collection and
    step logic run over those cached ints, reproducing exactly the
    ``merge_ops`` contributions of every :class:`GroupCursor` method the
    reference path would have called (including the internal
    ``current_doc`` of ``current_tfs`` and ``step``).
    """
    if not groups:
        raise SimulationError("intersection needs at least one group")
    ordered = sorted(groups, key=lambda g: g.document_frequency)
    # Group state: [primed?, [[doc, cursor], ...]]. Members are primed
    # lazily at the group's first operation, exactly when the reference
    # path first asks each member for its docID.
    states = [[False, [[None, member] for member in group.members]]
              for group in ordered]
    merge_ops = 0

    def prime(state):
        if not state[0]:
            state[0] = True
            for entry in state[1]:
                entry[0] = entry[1].current_doc()

    def g_current_doc(state):
        nonlocal merge_ops
        prime(state)
        best = None
        live = 0
        for entry in state[1]:
            doc = entry[0]
            if doc is not None:
                live += 1
                if best is None or doc < best:
                    best = doc
        if live > 1:
            merge_ops += live - 1
        return best

    def g_advance_to(state, target):
        nonlocal merge_ops
        prime(state)
        best = None
        live = 0
        for entry in state[1]:
            doc = entry[0]
            if doc is None:
                continue
            if doc < target:
                doc = entry[1].advance_to(target)
                entry[0] = doc
                if doc is None:
                    continue
            live += 1
            if best is None or doc < best:
                best = doc
        if live > 1:
            merge_ops += live - 1
        return best

    def g_current_tfs(state):
        doc = g_current_doc(state)
        if doc is None:
            raise SimulationError("group cursor exhausted")
        tfs = {}
        for entry in state[1]:
            if entry[0] == doc:
                tfs[entry[1].term] = _tf_inline(entry[1])
        return tfs

    def g_step(state):
        doc = g_current_doc(state)
        if doc is None:
            raise SimulationError("group cursor exhausted")
        for entry in state[1]:
            if entry[0] == doc:
                entry[0] = _step_inline(entry[1])

    matches = []
    driver = states[0]
    others = states[1:]
    doc = g_current_doc(driver)
    while doc is not None:
        merge_ops += 1
        candidate = doc
        in_all = True
        for state in others:
            landed = g_advance_to(state, candidate)
            if landed is None:
                doc = None
                in_all = False
                break
            if landed != candidate:
                doc = g_advance_to(driver, landed)
                in_all = False
                break
        if doc is None:
            break
        if in_all:
            tfs = g_current_tfs(driver)
            for state in others:
                tfs.update(g_current_tfs(state))
            matches.append((candidate, tfs))
            g_step(driver)
            doc = g_current_doc(driver)
    work.merge_ops += merge_ops
    work.docs_matched += len(matches)
    return matches
