"""Memory Access Interface (MAI) with a local TLB (paper Section IV-D).

Every SCM request from a BOSS core goes through the MAI, which performs
virtual-to-physical translation with a local (duplicate) TLB. The paper
sizes it so misses never happen in steady state: with 2 GB huge pages, a
1 K-entry TLB covers the node's whole 2 TB physical space, "preventing a
TLB miss from generating additional memory access and/or host
intervention".

The model tracks translations and would surface misses if an index were
mapped with insufficient coverage — a behavior tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError, SimulationError

GB = 1 << 30

#: 2 GB huge pages (common practice for large-memory workloads [33]).
DEFAULT_PAGE_SIZE = 2 * GB

#: 1 K entries x 2 GB pages = 2 TB of coverage (Table I node capacity).
DEFAULT_TLB_ENTRIES = 1024


@dataclass
class TLBStats:
    """Translation counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


class MemoryAccessInterface:
    """Address translation front-end of the BOSS device."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 tlb_entries: int = DEFAULT_TLB_ENTRIES) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ConfigurationError("page size must be a power of two")
        if tlb_entries <= 0:
            raise ConfigurationError("TLB needs at least one entry")
        self._page_size = page_size
        self._tlb_entries = tlb_entries
        #: Full page table (virtual page number -> physical page number),
        #: installed by init(); the TLB caches a subset.
        self._page_table: Dict[int, int] = {}
        self._tlb: Dict[int, int] = {}
        self.stats = TLBStats()

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def coverage(self) -> int:
        """Bytes the TLB can map simultaneously."""
        return self._page_size * self._tlb_entries

    def map_range(self, virtual_base: int, physical_base: int,
                  size: int) -> None:
        """Install a contiguous mapping (what ``init()`` sends to the MAI)."""
        if size <= 0:
            raise ConfigurationError("mapping size must be positive")
        if virtual_base % self._page_size or physical_base % self._page_size:
            raise ConfigurationError("mapping must be page aligned")
        num_pages = (size + self._page_size - 1) // self._page_size
        first_vpn = virtual_base // self._page_size
        first_ppn = physical_base // self._page_size
        for i in range(num_pages):
            self._page_table[first_vpn + i] = first_ppn + i

    def translate(self, virtual_address: int) -> int:
        """Translate one address, updating TLB statistics."""
        if virtual_address < 0:
            raise SimulationError("negative virtual address")
        vpn, offset = divmod(virtual_address, self._page_size)
        ppn = self._tlb.get(vpn)
        if ppn is not None:
            self.stats.hits += 1
            return ppn * self._page_size + offset
        self.stats.misses += 1
        try:
            ppn = self._page_table[vpn]
        except KeyError:
            raise SimulationError(
                f"unmapped virtual address {virtual_address:#x}"
            ) from None
        if len(self._tlb) >= self._tlb_entries:
            # FIFO-ish eviction; irrelevant in the paper's sized regime.
            self._tlb.pop(next(iter(self._tlb)))
        self._tlb[vpn] = ppn
        return ppn * self._page_size + offset
