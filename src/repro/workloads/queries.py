"""TREC-like query sampling with the paper's Table II type mix.

The paper randomly selects 100 one-term, 100 two-term, and 100 four-term
queries from the TREC 2005/2006 Terabyte Track topics and randomly
assigns each a Table II type (Q1–Q6). We reproduce the procedure against
a synthetic corpus: terms are drawn stratified by document frequency
(real query terms mix common and rare words), then each query gets its
type's operator structure:

====  ===============================
Q1    ``"A"``
Q2    ``"A" AND "B"``
Q3    ``"A" OR "B"``
Q4    ``"A" AND "B" AND "C" AND "D"``
Q5    ``"A" OR "B" OR "C" OR "D"``
Q6    ``"A" AND ("B" OR "C" OR "D")``
====  ===============================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError

QUERY_TYPES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6")

#: Term count per type (Table II).
TYPE_TERMS = {"Q1": 1, "Q2": 2, "Q3": 2, "Q4": 4, "Q5": 4, "Q6": 4}


@dataclass(frozen=True)
class QuerySpec:
    """One generated query."""

    qtype: str
    terms: tuple

    @property
    def expression(self) -> str:
        """The offloading-API expression string for this query."""
        quoted = [f'"{t}"' for t in self.terms]
        if self.qtype == "Q1":
            return quoted[0]
        if self.qtype == "Q2":
            return f"{quoted[0]} AND {quoted[1]}"
        if self.qtype == "Q3":
            return f"{quoted[0]} OR {quoted[1]}"
        if self.qtype == "Q4":
            return " AND ".join(quoted)
        if self.qtype == "Q5":
            return " OR ".join(quoted)
        if self.qtype == "Q6":
            return f"{quoted[0]} AND ({' OR '.join(quoted[1:])})"
        raise ConfigurationError(f"unknown query type {self.qtype}")


@dataclass
class QuerySet:
    """A generated batch of queries grouped by type."""

    queries: List[QuerySpec] = field(default_factory=list)

    def by_type(self) -> Dict[str, List[QuerySpec]]:
        grouped: Dict[str, List[QuerySpec]] = {t: [] for t in QUERY_TYPES}
        for q in self.queries:
            grouped.setdefault(q.qtype, []).append(q)
        return grouped

    def of_type(self, qtype: str) -> List[QuerySpec]:
        return [q for q in self.queries if q.qtype == qtype]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


class QuerySampler:
    """Draws query terms stratified by document frequency.

    Terms are split into frequency strata (head / torso / tail by df
    rank); each query mixes strata the way TREC topic words do — at
    least one reasonably common word, the rest drawn across strata.
    """

    def __init__(self, terms_by_df: Sequence[str], seed: int = 0) -> None:
        if len(terms_by_df) < 8:
            raise ConfigurationError("need at least 8 terms to sample from")
        self._terms = list(terms_by_df)
        self._rng = random.Random(seed)
        n = len(self._terms)
        self._head = self._terms[: max(2, n // 10)]
        self._torso = self._terms[max(2, n // 10): max(4, n // 2)]
        self._tail = self._terms[max(4, n // 2):]

    def sample_terms(self, count: int) -> List[str]:
        """Distinct terms for one query: one head word, rest mixed."""
        chosen: List[str] = [self._rng.choice(self._head)]
        pools = [self._torso, self._torso, self._tail]
        while len(chosen) < count:
            pool = self._rng.choice(pools)
            term = self._rng.choice(pool)
            if term not in chosen:
                chosen.append(term)
        self._rng.shuffle(chosen)
        return chosen

    def sample(self, queries_per_term_count: int = 100) -> QuerySet:
        """The paper's batch: N one-term, N two-term, N four-term queries,
        each randomly assigned a compatible Table II type."""
        queries: List[QuerySpec] = []
        for num_terms, types in ((1, ("Q1",)), (2, ("Q2", "Q3")),
                                 (4, ("Q4", "Q5", "Q6"))):
            for _ in range(queries_per_term_count):
                qtype = self._rng.choice(types)
                terms = tuple(self.sample_terms(num_terms))
                queries.append(QuerySpec(qtype=qtype, terms=terms))
        return QuerySet(queries)

    def sample_of_type(self, qtype: str, count: int) -> QuerySet:
        """A batch of one specific Table II type."""
        if qtype not in TYPE_TERMS:
            raise ConfigurationError(f"unknown query type {qtype!r}")
        queries = [
            QuerySpec(qtype=qtype,
                      terms=tuple(self.sample_terms(TYPE_TERMS[qtype])))
            for _ in range(count)
        ]
        return QuerySet(queries)

    def sample_zipf_log(self, num_queries: int, unique_queries: int = 50,
                        exponent: float = 1.0) -> QuerySet:
        """A skewed query *log*: repeated queries with Zipf popularity.

        Production query logs repeat heavily (the head query can be a
        few percent of all traffic) — the property posting-list caches
        exploit. Draws ``unique_queries`` distinct Table II queries and
        samples ``num_queries`` of them with popularity proportional to
        ``1 / rank**exponent``.
        """
        if num_queries <= 0 or unique_queries <= 0:
            raise ConfigurationError("query counts must be positive")
        if exponent <= 0:
            raise ConfigurationError("zipf exponent must be positive")
        pool = list(self.sample(
            queries_per_term_count=(unique_queries + 2) // 3
        ))[:unique_queries]
        weights = [1.0 / (rank ** exponent)
                   for rank in range(1, len(pool) + 1)]
        drawn = self._rng.choices(pool, weights=weights, k=num_queries)
        return QuerySet(list(drawn))
