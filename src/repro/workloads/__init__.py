"""Workload generation: synthetic streams, corpora, and query sets.

Substitutes for the paper's proprietary/full-scale inputs (see DESIGN.md):

* :mod:`repro.workloads.synthetic` — the seven synthetic integer streams
  of Figure 3 (uniform sparse/dense, cluster, outlier 10%/30%, zipf);
* :mod:`repro.workloads.corpus` — synthetic web corpora with Zipfian
  term popularity and skewed term frequencies; presets shaped after
  ClueWeb12 and CC-News;
* :mod:`repro.workloads.queries` — a TREC-like query sampler producing
  the paper's Table II query mix (Q1–Q6).
"""

from repro.workloads.corpus import (
    CorpusSpec,
    SyntheticCorpus,
    make_corpus,
    synthetic_documents,
)
from repro.workloads.queries import QuerySampler, QuerySet
from repro.workloads.synthetic import (
    SYNTHETIC_STREAMS,
    cluster_stream,
    outlier_stream,
    uniform_stream,
    zipf_stream,
)

__all__ = [
    "CorpusSpec",
    "SyntheticCorpus",
    "make_corpus",
    "synthetic_documents",
    "QuerySampler",
    "QuerySet",
    "SYNTHETIC_STREAMS",
    "uniform_stream",
    "cluster_stream",
    "outlier_stream",
    "zipf_stream",
]
