"""Synthetic integer streams for the compression study (Figure 3).

The paper builds seven synthetic 10M-integer streams to show that the
best compression scheme depends on the d-gap distribution:

* ``uniform sparse`` — docIDs drawn uniformly from ``[0, 2^28)``;
* ``uniform dense`` — docIDs drawn uniformly from ``[0, 2^26)``;
* ``cluster`` — uniform picks inside randomly placed clusters;
* ``outlier 10%`` / ``outlier 30%`` — d-gaps from ``N(2^5, 20)`` with
  the given fraction of large outliers;
* ``zipf`` — d-gaps following Zipf's law.

Generators return *d-gap streams* (what the codecs actually compress);
stream length is a parameter because compression ratio is
length-invariant — benchmarks default to a laptop-friendly size.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import ConfigurationError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _gaps_from_sorted_unique(doc_ids: np.ndarray) -> List[int]:
    """d-gaps (``gap - 1`` convention) of a sorted unique docID array."""
    gaps = np.diff(doc_ids, prepend=-1) - 1
    return [int(g) for g in gaps]


def uniform_stream(count: int, id_bits: int, seed: int = 0) -> List[int]:
    """Uniformly picked docIDs over ``[0, 2**id_bits)``, as d-gaps.

    ``id_bits=28`` gives the paper's *sparse* stream; ``id_bits=26`` the
    *dense* one.
    """
    if count <= 0:
        raise ConfigurationError("stream count must be positive")
    space = 1 << id_bits
    if count > space:
        raise ConfigurationError(
            f"cannot draw {count} unique ids from {space}"
        )
    rng = _rng(seed)
    # Oversample then unique: cheap and exact for our densities.
    picks = rng.integers(0, space, size=int(count * 1.3) + 16)
    unique = np.unique(picks)
    while len(unique) < count:
        more = rng.integers(0, space, size=count)
        unique = np.unique(np.concatenate([unique, more]))
    chosen = np.sort(rng.choice(unique, size=count, replace=False))
    return _gaps_from_sorted_unique(chosen)


def cluster_stream(count: int, num_clusters: int = 1000,
                   cluster_span: int = 1 << 14, id_bits: int = 28,
                   seed: int = 0) -> List[int]:
    """Uniform picks from randomly chosen clusters, as d-gaps.

    Clusters make runs of tiny gaps separated by huge jumps — the regime
    where patched schemes (OptPFD) shine.
    """
    if num_clusters <= 0 or cluster_span <= 0:
        raise ConfigurationError("clusters and span must be positive")
    rng = _rng(seed)
    space = 1 << id_bits
    centers = rng.integers(0, max(1, space - cluster_span),
                           size=num_clusters)
    per_cluster = max(1, count // num_clusters)
    ids = []
    for center in centers:
        ids.append(center + rng.integers(0, cluster_span, size=per_cluster))
    all_ids = np.unique(np.concatenate(ids))
    if len(all_ids) > count:
        all_ids = np.sort(_rng(seed + 1).choice(all_ids, size=count,
                                                replace=False))
    return _gaps_from_sorted_unique(all_ids)


def outlier_stream(count: int, outlier_fraction: float,
                   mean: float = 32.0, std: float = 20.0,
                   outlier_bits: int = 20, seed: int = 0) -> List[int]:
    """d-gaps from ``N(mean, std)`` with a fraction of large outliers.

    Matches the paper's "normal distribution with a mean of 2^5 and a
    standard deviation of 20 but with 10% and 30% of outlier values".
    """
    if not 0.0 <= outlier_fraction <= 1.0:
        raise ConfigurationError("outlier fraction must be in [0, 1]")
    rng = _rng(seed)
    gaps = np.abs(rng.normal(mean, std, size=count)).astype(np.int64)
    outliers = rng.random(count) < outlier_fraction
    gaps[outliers] = rng.integers(1 << 12, 1 << outlier_bits,
                                  size=int(outliers.sum()))
    return [int(g) for g in gaps]


def zipf_stream(count: int, exponent: float = 1.5,
                seed: int = 0) -> List[int]:
    """d-gaps following Zipf's law (heavy-tailed small values)."""
    if exponent <= 1.0:
        raise ConfigurationError("zipf exponent must exceed 1")
    rng = _rng(seed)
    gaps = rng.zipf(exponent, size=count) - 1  # shift so 0 is possible
    return [int(min(g, (1 << 27) - 1)) for g in gaps]


#: The paper's seven Figure 3 streams, name -> generator(count, seed).
SYNTHETIC_STREAMS: Dict[str, Callable[[int, int], List[int]]] = {
    "uniform-sparse": lambda n, s=0: uniform_stream(n, id_bits=28, seed=s),
    "uniform-dense": lambda n, s=0: uniform_stream(n, id_bits=26, seed=s),
    "cluster": lambda n, s=0: cluster_stream(n, seed=s),
    "outlier-10": lambda n, s=0: outlier_stream(n, 0.10, seed=s),
    "outlier-30": lambda n, s=0: outlier_stream(n, 0.30, seed=s),
    "zipf": lambda n, s=0: zipf_stream(n, seed=s),
    "zipf-steep": lambda n, s=0: zipf_stream(n, exponent=2.0, seed=s),
}
