"""Synthetic web corpora shaped after the paper's datasets.

The paper evaluates on ClueWeb12 and CC-News. Both are far beyond
laptop scale, so we generate synthetic corpora that preserve the
properties every result depends on:

* **Zipfian term popularity** — document frequency falls as a power law
  of term rank, giving the TREC-like mix of huge and tiny posting lists;
* **skewed term frequencies** — geometric tf per posting, so per-block
  maximum term-scores vary and early termination has real skip
  opportunities;
* **docID locality** — a fraction of each term's postings is drawn from
  clustered docID ranges (topical locality in a crawl ordering), which
  is what makes block overlap checks and per-list scheme selection
  meaningful;
* **power-law document lengths** — the BM25 length normalizer varies.

Presets ``clueweb12-like`` (long web pages, flatter popularity) and
``ccnews-like`` (shorter news articles, steeper popularity, more
locality) mirror the relative character of the two datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.index.bm25 import BM25Parameters
from repro.index.builder import IndexBuilder
from repro.index.index import InvertedIndex


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of a synthetic corpus."""

    name: str
    num_docs: int = 50_000
    num_terms: int = 400
    #: Document frequency of the most popular term, as a corpus fraction.
    max_df_fraction: float = 0.25
    #: Zipf exponent of the term-popularity curve.
    popularity_exponent: float = 0.9
    #: Geometric tf parameter (smaller -> heavier tf tails).
    tf_p: float = 0.5
    #: Fraction of postings drawn from clustered docID ranges.
    locality: float = 0.3
    #: Mean document length in tokens (lognormal).
    mean_doc_length: float = 400.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_docs <= 0 or self.num_terms <= 0:
            raise ConfigurationError("corpus must have docs and terms")
        if not 0 < self.max_df_fraction <= 1:
            raise ConfigurationError("max_df_fraction must be in (0, 1]")
        if not 0 < self.tf_p <= 1:
            raise ConfigurationError("tf_p must be in (0, 1]")
        if not 0 <= self.locality <= 1:
            raise ConfigurationError("locality must be in [0, 1]")


#: Preset shaped after ClueWeb12: long web documents, flat popularity.
CLUEWEB12_LIKE = CorpusSpec(
    name="clueweb12-like",
    num_docs=60_000,
    num_terms=480,
    max_df_fraction=0.30,
    popularity_exponent=0.85,
    tf_p=0.45,
    locality=0.25,
    mean_doc_length=900.0,
    seed=12,
)

#: Preset shaped after CC-News: shorter articles, steeper popularity,
#: stronger topical docID locality (news crawls cluster by day/outlet).
CCNEWS_LIKE = CorpusSpec(
    name="ccnews-like",
    num_docs=50_000,
    num_terms=420,
    max_df_fraction=0.25,
    popularity_exponent=1.0,
    tf_p=0.55,
    locality=0.45,
    mean_doc_length=420.0,
    seed=21,
)

_PRESETS: Dict[str, CorpusSpec] = {
    "clueweb12-like": CLUEWEB12_LIKE,
    "ccnews-like": CCNEWS_LIKE,
}


class SyntheticCorpus:
    """A generated corpus: term statistics plus its built inverted index."""

    def __init__(self, spec: CorpusSpec,
                 schemes: Optional[Sequence[str]] = None,
                 params: Optional[BM25Parameters] = None) -> None:
        params = BM25Parameters() if params is None else params
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self.doc_lengths = self._draw_doc_lengths()
        self.term_dfs = self._draw_term_dfs()
        self.index = self._build_index(schemes, params)

    # ------------------------------------------------------------------

    @property
    def terms(self) -> List[str]:
        """Terms ordered by descending popularity (term0 most common)."""
        return [f"term{i:04d}" for i in range(self.spec.num_terms)]

    def terms_by_df(self) -> List[str]:
        """Terms sorted by descending document frequency."""
        return sorted(self.term_dfs, key=self.term_dfs.get, reverse=True)

    # ------------------------------------------------------------------

    def _draw_doc_lengths(self) -> List[int]:
        spec = self.spec
        sigma = 0.6
        mu = np.log(spec.mean_doc_length) - sigma ** 2 / 2
        lengths = self._rng.lognormal(mu, sigma, size=spec.num_docs)
        return [max(8, int(x)) for x in lengths]

    def _draw_term_dfs(self) -> Dict[str, int]:
        spec = self.spec
        top_df = max(2, int(spec.num_docs * spec.max_df_fraction))
        dfs: Dict[str, int] = {}
        for rank, term in enumerate(self.terms, start=1):
            df = max(1, int(top_df / rank ** spec.popularity_exponent))
            dfs[term] = min(df, spec.num_docs)
        return dfs

    def _draw_doc_ids(self, df: int, term_seed: int):
        """DocIDs for one term: a uniform part plus clustered runs.

        Returns ``(doc_ids, clustered_mask)``: the mask marks postings
        that came from topical clusters, where the term also occurs more
        often *within* each document (higher tf). This topical locality
        is what gives real per-block maximum term-scores their variance —
        the raw material of block-level early termination.
        """
        spec = self.spec
        rng = np.random.default_rng(term_seed)
        n_clustered = int(df * spec.locality)
        n_uniform = df - n_clustered

        parts = []
        if n_uniform:
            parts.append(rng.integers(0, spec.num_docs, size=n_uniform * 2))
        clustered_ids = []
        if n_clustered:
            # A few dense runs: consecutive docIDs around random anchors.
            remaining = n_clustered
            while remaining > 0:
                run = int(min(remaining, rng.integers(8, 64)))
                anchor = int(rng.integers(0, max(1, spec.num_docs - run)))
                clustered_ids.append(np.arange(anchor, anchor + run))
                remaining -= run
            parts.extend(clustered_ids)
        ids = np.unique(np.concatenate(parts))
        if len(ids) > df:
            ids = np.sort(rng.choice(ids, size=df, replace=False))
        if clustered_ids:
            cluster_set = np.unique(np.concatenate(clustered_ids))
            mask = np.isin(ids, cluster_set)
        else:
            mask = np.zeros(len(ids), dtype=bool)
        return ids, mask

    def _build_index(self, schemes: Optional[Sequence[str]],
                     params: BM25Parameters) -> InvertedIndex:
        spec = self.spec
        builder = IndexBuilder(params=params, schemes=schemes)
        builder.declare_documents(self.doc_lengths)
        for rank, term in enumerate(self.terms):
            df = self.term_dfs[term]
            doc_ids, clustered = self._draw_doc_ids(df, spec.seed * 7919 + rank)
            self.term_dfs[term] = len(doc_ids)
            # Per-term tf skew: popular terms repeat more inside a doc;
            # topically clustered postings repeat much more (the term is
            # central to those documents).
            p = min(1.0, max(0.05, spec.tf_p + 0.3 * (rank / spec.num_terms)))
            tf_rng = np.random.default_rng(spec.seed * 104729 + rank)
            tfs = tf_rng.geometric(p, size=len(doc_ids))
            boosted = tf_rng.geometric(max(0.05, p / 3.0), size=len(doc_ids))
            tfs = np.where(clustered, np.maximum(tfs, boosted), tfs)
            tfs = np.minimum(tfs, 64)
            builder.add_postings(
                term, list(zip((int(d) for d in doc_ids),
                               (int(t) for t in tfs)))
            )
        return builder.build()


def make_corpus(preset: str, scale: float = 1.0,
                schemes: Optional[Sequence[str]] = None,
                seed: Optional[int] = None) -> SyntheticCorpus:
    """Build a preset corpus, optionally re-scaled.

    ``scale`` multiplies document and term counts (0.1 gives a fast
    test-sized corpus; 1.0 the default benchmark size).
    """
    try:
        base = _PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise ConfigurationError(
            f"unknown corpus preset {preset!r}; known: {known}"
        ) from None
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    from dataclasses import replace

    spec = replace(
        base,
        num_docs=max(64, int(base.num_docs * scale)),
        num_terms=max(16, int(base.num_terms * scale)),
        seed=base.seed if seed is None else seed,
    )
    return SyntheticCorpus(spec, schemes=schemes)


def synthetic_documents(num_docs: int = 1000, vocab_size: int = 40,
                        seed: int = 0) -> List[List[str]]:
    """Seeded token-list documents with exponential term popularity.

    The *document-level* counterpart of :class:`SyntheticCorpus` (which
    synthesizes posting lists directly and therefore cannot be
    re-sharded): cluster workloads need actual documents so
    :func:`repro.cluster.sharding.shard_documents` can split them into
    docID intervals with corpus-global statistics. Vocabulary is
    ``t0 ... t{vocab_size-1}`` with ``t0`` most popular.
    """
    if num_docs < 1 or vocab_size < 8:
        raise ConfigurationError(
            "need at least 1 document and 8 vocabulary terms"
        )
    import random as _random

    rng = _random.Random(seed)
    words = [f"t{i}" for i in range(vocab_size)]
    return [
        [words[min(vocab_size - 1, int(rng.expovariate(0.12)))]
         for _ in range(rng.randrange(5, 40))]
        for _ in range(num_docs)
    ]
