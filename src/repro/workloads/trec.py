"""TREC topic-file parsing.

The paper samples queries "from TREC 2006 and 2005 Terabyte Track
dataset". Those topic files are freely distributed in the classic SGML-
ish TREC format::

    <top>
    <num> Number: 751
    <title> Scrabble Players
    <desc> Description:
    Give information on events and tournaments ...
    </top>

This parser extracts topic numbers and title terms (the field used for
short web-style queries), runs them through the analysis chain, and
emits :class:`~repro.workloads.queries.QuerySpec` objects with the
paper's Table II type assignment — so users holding the real TREC
topics can reproduce the query workload exactly instead of relying on
the synthetic sampler.
"""

from __future__ import annotations

import random
import re
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.text import Analyzer
from repro.workloads.queries import QuerySet, QuerySpec

_TOPIC_RE = re.compile(r"<top>(.*?)</top>", re.DOTALL | re.IGNORECASE)
_NUM_RE = re.compile(r"<num>[^0-9]*(\d+)", re.IGNORECASE)
_TITLE_RE = re.compile(
    r"<title>\s*(?:Topic:)?\s*(.*?)\s*(?=<|$)", re.DOTALL | re.IGNORECASE
)


def parse_topics(text: str,
                 analyzer: Optional[Analyzer] = None) -> List[dict]:
    """Parse TREC topics into ``{"number": int, "terms": [str]}`` dicts.

    Topics whose titles analyze to nothing are dropped (they cannot form
    queries).
    """
    analyzer = analyzer if analyzer is not None else Analyzer()
    topics: List[dict] = []
    for match in _TOPIC_RE.finditer(text):
        body = match.group(1)
        num_match = _NUM_RE.search(body)
        title_match = _TITLE_RE.search(body)
        if not num_match or not title_match:
            continue
        terms = analyzer.analyze(title_match.group(1))
        if terms:
            topics.append({
                "number": int(num_match.group(1)),
                "terms": terms,
            })
    return topics


def queries_from_topics(text: str, seed: int = 0,
                        analyzer: Optional[Analyzer] = None,
                        vocabulary: Optional[set] = None) -> QuerySet:
    """Turn TREC topics into the paper's typed query workload.

    Mirrors Section V-A: topics are bucketed by term count (1, 2, 4 —
    longer titles are truncated to their first four terms, shorter ones
    to 2 if they have at least 2), then each query is randomly assigned
    a compatible Table II type. ``vocabulary`` (e.g. the index's term
    set) filters out terms the corpus does not contain.
    """
    topics = parse_topics(text, analyzer)
    if not topics:
        raise ConfigurationError("no parseable topics in input")
    rng = random.Random(seed)
    queries: List[QuerySpec] = []
    for topic in topics:
        terms = topic["terms"]
        if vocabulary is not None:
            terms = [t for t in terms if t in vocabulary]
        terms = list(dict.fromkeys(terms))
        if not terms:
            continue
        if len(terms) >= 4:
            chosen, types = terms[:4], ("Q4", "Q5", "Q6")
        elif len(terms) >= 2:
            chosen, types = terms[:2], ("Q2", "Q3")
        else:
            chosen, types = terms[:1], ("Q1",)
        queries.append(QuerySpec(qtype=rng.choice(types),
                                 terms=tuple(chosen)))
    if not queries:
        raise ConfigurationError(
            "no topics survived vocabulary filtering"
        )
    return QuerySet(queries)
