"""Exception hierarchy for the BOSS reproduction library.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the failure domain (compression, query parsing, simulation
configuration, ...) when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CompressionError(ReproError):
    """A codec could not encode or decode a block of integers."""


class DecompressorProgramError(ReproError):
    """A decompression-module configuration program is malformed."""


class IndexError_(ReproError):
    """An inverted index is malformed or an operation on it is invalid.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as ``InvertedIndexError`` from the package root.
    """


class QueryError(ReproError):
    """A query expression could not be parsed or is unsupported."""


class ConfigurationError(ReproError):
    """A simulator or device configuration is inconsistent."""


class SimulationError(ReproError):
    """The performance model reached an inconsistent state."""


class FaultInjectionError(ReproError):
    """A deterministic injected leaf fault (transient or permanent).

    Raised only by :mod:`repro.faults` wrappers, never by real execution
    paths — catching it distinguishes injected failures from genuine
    bugs in fault-tolerance tests. ``kind`` is ``"transient"`` or
    ``"permanent"``.
    """

    def __init__(self, message: str, kind: str = "transient") -> None:
        super().__init__(message)
        self.kind = kind


class CrashError(ReproError):
    """A deterministic injected process death (durability testing).

    Raised only by :class:`repro.faults.CrashSchedule` at a named
    kill-point — never by real execution paths. The writer that raised
    it must be abandoned: its in-memory state is "lost", and the test
    recovers a fresh writer from the on-disk WAL + manifest. ``kill_point``
    names the boundary (see :data:`repro.faults.KILL_POINTS`) and
    ``occurrence`` is which hit of that boundary fired.
    """

    def __init__(self, message: str, kill_point: str = "",
                 occurrence: int = 0) -> None:
        super().__init__(message)
        self.kill_point = kill_point
        self.occurrence = occurrence


class LeafExecutionError(ReproError):
    """A cluster leaf failed (or exhausted its retry/failover budget).

    Names the failing ``(query, shard)`` so a batch abort is actionable;
    the original leaf exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, shard_index: int = -1,
                 expression: str = "") -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.expression = expression


class RebalanceError(ReproError):
    """A shard rebalance move could not be planned, validated, or
    published (invalid plan, conservation-identity violation, or a
    bootstrap replica failing parity with its primary). A move that
    raises this never published: the old shard map keeps serving.
    """


# Public alias: the name users should import.
InvertedIndexError = IndexError_
