"""Exception hierarchy for the BOSS reproduction library.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the failure domain (compression, query parsing, simulation
configuration, ...) when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CompressionError(ReproError):
    """A codec could not encode or decode a block of integers."""


class DecompressorProgramError(ReproError):
    """A decompression-module configuration program is malformed."""


class IndexError_(ReproError):
    """An inverted index is malformed or an operation on it is invalid.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as ``InvertedIndexError`` from the package root.
    """


class QueryError(ReproError):
    """A query expression could not be parsed or is unsupported."""


class ConfigurationError(ReproError):
    """A simulator or device configuration is inconsistent."""


class SimulationError(ReproError):
    """The performance model reached an inconsistent state."""


# Public alias: the name users should import.
InvertedIndexError = IndexError_
