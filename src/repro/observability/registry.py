"""Metrics registry: counters, gauges, and explicit-bucket histograms.

The registry is the sink every instrumented component publishes into —
the accelerator, the decompression modules, the SCM pool/interconnect
models, the cluster root, and the DRAM block cache. Unlike typical
metrics libraries there is **no wall-clock dependence anywhere**: every
time-valued observation is the simulator's *modeled* time, so metric
values are deterministic for a given workload and the test suite can
assert on them exactly.

Metrics are named with dotted paths (``scm.bytes_total``) and may carry
labels (``cls="LD List"``, ``pattern="sequential"``). A metric name maps
to exactly one metric type; re-requesting an existing name returns the
same instrument (and raises if the type or bucket layout disagrees).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: A label set in canonical form: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing sum, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        """Value for one label set (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Gauge:
    """Point-in-time value that may move in either direction."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Histogram:
    """Cumulative histogram over explicit, finite bucket bounds.

    ``buckets`` are the inclusive upper bounds of the finite buckets; an
    implicit ``+inf`` bucket catches everything above the last bound.
    Observations are modeled-time quantities (e.g. microseconds of
    simulated latency), never wall-clock readings.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 help: str = "") -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs buckets")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram {name} buckets must be strictly increasing"
            )
        if any(math.isinf(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name}: +inf bucket is implicit"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def bucket_counts(self, **labels: str) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is +inf."""
        key = _label_key(labels)
        return list(self._counts.get(key, [0] * (len(self.buckets) + 1)))

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        total = self.count(**labels)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for i, count in enumerate(self.bucket_counts(**labels)):
            seen += count
            if seen >= rank and count:
                if i < len(self.buckets):
                    return self.buckets[i]
                return math.inf
        return math.inf

    def samples(self) -> List[Tuple[LabelKey, List[int]]]:
        return sorted((k, list(v)) for k, v in self._counts.items())


class MetricsRegistry:
    """Name-keyed collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, buckets: Sequence[float],
                  help: str = "") -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if existing.buckets != tuple(float(b) for b in buckets):
                raise ConfigurationError(
                    f"histogram {name!r} re-registered with other buckets"
                )
            return existing
        metric = Histogram(name, buckets, help)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterable[object]:
        return iter(self._metrics[n] for n in self.names())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe dump of every metric's current samples."""
        out: Dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: dict = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["samples"] = [
                    {
                        "labels": dict(key),
                        "counts": counts,
                        "count": metric.count(**dict(key)),
                        "sum": metric.sum(**dict(key)),
                    }
                    for key, counts in metric.samples()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in metric.samples()
                ]
            out[name] = entry
        return out

    def render(self) -> str:
        """Human-readable text dump (one line per sample)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            lines.append(f"# {name} ({metric.kind})"
                         + (f" — {metric.help}" if metric.help else ""))
            if isinstance(metric, Histogram):
                for key, _counts in metric.samples():
                    labels = _format_labels(key)
                    lines.append(
                        f"{name}{labels} count={metric.count(**dict(key))} "
                        f"sum={metric.sum(**dict(key)):.6g} "
                        f"p50<={metric.quantile(0.5, **dict(key)):.6g} "
                        f"p99<={metric.quantile(0.99, **dict(key)):.6g}"
                    )
            else:
                for key, value in metric.samples():
                    lines.append(f"{name}{_format_labels(key)} {value:.6g}")
        return "\n".join(lines)


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in key) + "}"
