"""Observer: the single object threaded through the execution stack.

One :class:`Observer` instance travels ``BossSession -> BossAccelerator
-> cursors / decompression modules / cluster root / block cache`` and
receives callbacks at every instrumentation point. The default,
:data:`NULL_OBSERVER`, is a do-nothing singleton with ``enabled =
False`` — hot paths guard their callbacks behind that flag, so an
un-observed run performs no extra work and changes no benchmark number.

:class:`RecordingObserver` is the real implementation: it materializes a
:class:`~repro.observability.trace.QueryTrace` per completed query and
publishes aggregate counters/histograms into a
:class:`~repro.observability.registry.MetricsRegistry`. All recorded
times are the simulator's modeled times.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.observability.registry import MetricsRegistry
from repro.observability.trace import QueryTrace

#: Explicit modeled-latency histogram buckets, in microseconds.
LATENCY_BUCKETS_US = (1, 2, 5, 10, 20, 50, 100, 200, 500,
                      1000, 2000, 5000, 10000, 50000)


class Observer:
    """No-op observer base class; also the null-object implementation.

    Components call these hooks only when :attr:`enabled` is true (or
    unconditionally on cold paths), so the base class doubles as a
    zero-cost default. Subclasses override whichever hooks they need.
    """

    #: Hot paths skip their callbacks entirely when this is False.
    enabled = False

    def on_query_start(self, engine: str, node, k: int) -> None:
        """A query entered an engine's ``search()``."""

    def on_query_complete(self, result, engine: str = "BOSS",
                          cores_used: int = 1) -> Optional[QueryTrace]:
        """A query finished; ``result`` is the full SearchResult."""

    def on_block_fetch(self, term: str, block_index: int,
                       nbytes: int, pattern=None) -> None:
        """The block fetch module pulled one compressed payload.

        ``pattern`` is the observed :class:`~repro.scm.traffic.
        AccessPattern` of the fetch — sequential when it continues the
        previous fetched block of the same list, random after a skip.
        """

    def on_block_skip(self, term: str, mechanism: str) -> None:
        """A block was skipped (``mechanism``: "et" or "overlap")."""

    def on_decode(self, scheme: str, num_values: int) -> None:
        """A decompression module emitted ``num_values`` values."""

    def on_cache_access(self, hit: bool, nbytes: int) -> None:
        """The DRAM block cache served (hit) or missed one block."""

    def on_decoded_block(self, hit: bool) -> None:
        """The host-side decoded-block cache was consulted."""

    def on_decode_path(self, scheme: str, fast: bool) -> None:
        """A block was decompressed via the fast or reference path."""

    def on_cluster_complete(self, cluster_result) -> None:
        """The root merged one fanned-out query."""

    def on_resilience_event(self, event: str, shard_index: int) -> None:
        """Resilient leaf execution took a recovery step.

        ``event`` is one of ``"retry"``, ``"timeout"``, ``"failover"``,
        ``"shard_failed"`` (see :mod:`repro.cluster.resilience`).
        """

    def on_request_admitted(self, queue_depth: int) -> None:
        """The serving layer admitted a request (``queue_depth`` is the
        occupancy after enqueueing; 0 = dispatched immediately)."""

    def on_request_shed(self, reason: str) -> None:
        """The serving layer dropped a request (a ``SHED_*`` reason
        from :mod:`repro.serving.server`)."""

    def on_request_served(self, outcome) -> None:
        """A served request completed; ``outcome`` is the full
        :class:`repro.serving.server.RequestOutcome`."""

    def on_serving_complete(self, report) -> None:
        """A sustained-load run finished; ``report`` is the
        :class:`repro.serving.server.ServingReport`."""

    def on_plan_complete(self, plan, prefetch_blocks: int = 0,
                         prefetch_bytes: int = 0) -> None:
        """The I/O planner closed one planning window; ``plan`` is the
        :class:`repro.ioplanner.plan.FetchPlan` with its traffic
        routing, plus the window's speculative prefetch volume."""

    def on_live_seal(self, segment_id: int, num_docs: int,
                     nbytes: int) -> None:
        """The live index sealed its write buffer into a segment."""

    def on_live_merge(self, segment_id: Optional[int], tier: int,
                      bytes_read: int, bytes_written: int,
                      seconds: float) -> None:
        """A background merge finished (``segment_id`` is ``None`` when
        every input document was tombstoned and nothing was written)."""

    def on_live_state(self, buffered_docs: int, buffered_bytes: int,
                      num_segments: int,
                      write_amplification: float) -> None:
        """Live-index occupancy snapshot after a mutation."""

    def on_wal_append(self, kind: str, nbytes: int) -> None:
        """One WAL frame was durably appended (or re-charged during
        recovery replay); ``kind`` is the record kind
        (add/delete/seal/merge)."""

    def on_manifest_write(self, nbytes: int, num_segments: int) -> None:
        """The segment manifest was atomically replaced (or its write
        re-charged during recovery replay)."""

    def on_recovery_complete(self, report) -> None:
        """A crash recovery finished; ``report`` is the
        :class:`repro.live.durable.RecoveryReport`."""

    def on_rebalance_step(self, kind: str, shard: int,
                          state: str) -> None:
        """A rebalance move reached a protocol state (``state`` is one
        of :data:`repro.cluster.rebalance.MOVE_STATES`)."""

    def on_rebalance_complete(self, report) -> None:
        """A rebalance move finished (published or aborted); ``report``
        is the :class:`repro.cluster.rebalance.MoveReport`."""

    def on_rerank_complete(self, result) -> None:
        """The software second stage rescored one query; ``result`` is
        the :class:`repro.rerank.RerankedResult`."""

    def on_vector_query(self, result) -> None:
        """The ANN lane answered one query; ``result`` is the
        :class:`repro.vector.engine.VectorSearchResult` (its traffic
        components satisfy the bytes-conservation identity — the
        engine raises before this hook otherwise)."""

    def on_hybrid_complete(self, result) -> None:
        """A hybrid (lexical + vector) query finished; ``result`` is
        the :class:`repro.vector.hybrid.HybridResult`."""


#: Shared do-nothing observer; the default everywhere.
NULL_OBSERVER = Observer()


class RecordingObserver(Observer):
    """Collects per-query traces and publishes registry metrics."""

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 models: Optional[Dict[str, object]] = None,
                 keep_traces: int = 0) -> None:
        """``models`` maps engine names to timing models (defaults to
        the BOSS and IIU models). ``keep_traces`` bounds the retained
        trace list (0 = unbounded), for long-running sessions."""
        self.registry = registry if registry is not None else MetricsRegistry()
        self._models = models
        self.traces: List[QueryTrace] = []
        self._keep_traces = keep_traces
        self._next_query_id = 0

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        return self.registry

    @property
    def last_trace(self) -> Optional[QueryTrace]:
        return self.traces[-1] if self.traces else None

    def model_for(self, engine: str):
        if self._models is None:
            from repro.sim.timing import BossTimingModel, IIUTimingModel

            self._models = {
                "BOSS": BossTimingModel(),
                "IIU": IIUTimingModel(),
            }
        try:
            return self._models[engine]
        except KeyError:
            from repro.errors import ConfigurationError

            known = ", ".join(sorted(self._models))
            raise ConfigurationError(
                f"no timing model registered for engine {engine!r} "
                f"(known: {known})"
            ) from None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def on_query_start(self, engine: str, node, k: int) -> None:
        self.registry.counter(
            "queries.started", "queries entering search()"
        ).inc(engine=engine)

    def on_query_complete(self, result, engine: str = "BOSS",
                          cores_used: int = 1) -> QueryTrace:
        from repro.observability.profiler import build_trace

        trace = build_trace(
            self.model_for(engine), result,
            query_id=self._next_query_id, engine=engine,
            cores_used=cores_used,
        )
        self._next_query_id += 1
        self.traces.append(trace)
        if self._keep_traces and len(self.traces) > self._keep_traces:
            del self.traces[0]
        self._publish(trace)
        return trace

    def on_block_fetch(self, term: str, block_index: int,
                       nbytes: int, pattern=None) -> None:
        self.registry.counter(
            "fetch.blocks", "compressed payload fetches"
        ).inc()
        self.registry.counter(
            "fetch.bytes", "compressed payload bytes fetched"
        ).inc(nbytes)
        if pattern is not None:
            self.registry.counter(
                "fetch.pattern_bytes",
                "payload bytes by observed spatial pattern",
            ).inc(nbytes, pattern=pattern.value)

    def on_block_skip(self, term: str, mechanism: str) -> None:
        self.registry.counter(
            "fetch.blocks_skipped", "blocks skipped without decoding"
        ).inc(mechanism=mechanism)

    def on_decode(self, scheme: str, num_values: int) -> None:
        self.registry.counter(
            "decompressor.calls", "decompression module invocations"
        ).inc(scheme=scheme)
        self.registry.counter(
            "decompressor.values", "values emitted by the module"
        ).inc(num_values, scheme=scheme)

    def on_cache_access(self, hit: bool, nbytes: int) -> None:
        outcome = "hit" if hit else "miss"
        self.registry.counter(
            "cache.accesses", "DRAM block-cache lookups"
        ).inc(outcome=outcome)
        self.registry.counter(
            "cache.bytes", "bytes served per tier"
        ).inc(nbytes, tier="dram" if hit else "scm")

    def on_decoded_block(self, hit: bool) -> None:
        self.registry.counter(
            "decoded_cache.accesses", "decoded-block cache lookups"
        ).inc(outcome="hit" if hit else "miss")

    def on_decode_path(self, scheme: str, fast: bool) -> None:
        self.registry.counter(
            "decode.invocations", "block decodes by execution path"
        ).inc(path="fast" if fast else "reference", scheme=scheme)

    def on_cluster_complete(self, cluster_result) -> None:
        self.registry.counter(
            "cluster.queries", "queries merged at the root"
        ).inc()
        self.registry.counter(
            "cluster.shards_touched", "leaf shards that executed"
        ).inc(cluster_result.shards_touched)
        self.registry.counter(
            "cluster.merge_ops", "root-side merge comparisons"
        ).inc(cluster_result.merge_ops)
        self.registry.counter(
            "cluster.interconnect_bytes", "leaf->root result bytes"
        ).inc(cluster_result.interconnect_bytes)
        if getattr(cluster_result, "degraded", False):
            self.registry.counter(
                "cluster.degraded_queries",
                "merges that completed without a failed shard",
            ).inc()
            self.registry.counter(
                "cluster.shards_failed",
                "shards skipped after exhausting retry + failover",
            ).inc(len(cluster_result.shards_failed))

    def on_resilience_event(self, event: str, shard_index: int) -> None:
        self.registry.counter(
            "cluster.resilience_events",
            "leaf recovery steps (retry/timeout/failover/shard_failed)",
        ).inc(event=event, shard=str(shard_index))

    def on_request_admitted(self, queue_depth: int) -> None:
        self.registry.counter(
            "serving.admitted", "requests accepted by the serving layer"
        ).inc()
        depth = self.registry.gauge(
            "serving.queue_depth_max", "deepest admission queue seen"
        )
        if queue_depth > depth.value():
            depth.set(queue_depth)

    def on_request_shed(self, reason: str) -> None:
        self.registry.counter(
            "serving.shed", "requests dropped by admission control"
        ).inc(reason=reason)

    def on_request_served(self, outcome) -> None:
        if outcome.slo_attained is None:
            slo = "none"
        else:
            slo = "attained" if outcome.slo_attained else "violated"
        self.registry.counter(
            "serving.served", "requests answered, by SLO outcome"
        ).inc(slo=slo, degraded=str(outcome.degraded).lower())
        self.registry.histogram(
            "serving.latency_us", LATENCY_BUCKETS_US,
            "arrival-to-completion serving latency (us)",
        ).observe(outcome.latency_seconds * 1e6)
        self.registry.histogram(
            "serving.queue_wait_us", LATENCY_BUCKETS_US,
            "admission-queue wait before dispatch (us)",
        ).observe(outcome.queue_wait_seconds * 1e6)

    def on_serving_complete(self, report) -> None:
        self.registry.counter(
            "serving.runs", "sustained-load runs completed"
        ).inc()
        self.registry.gauge(
            "serving.last_achieved_qps", "served throughput of last run"
        ).set(report.achieved_qps)
        self.registry.gauge(
            "serving.last_shed_fraction", "shed fraction of last run"
        ).set(report.shed_fraction)

    def on_plan_complete(self, plan, prefetch_blocks: int = 0,
                         prefetch_bytes: int = 0) -> None:
        registry = self.registry
        registry.counter(
            "planner.windows", "planning windows closed with demand"
        ).inc()
        registry.counter(
            "planner.demand_bytes", "block bytes demanded by queries"
        ).inc(plan.demand_bytes)
        routed = registry.counter(
            "planner.bytes", "demand bytes by routed source"
        )
        routed.inc(plan.dram_hit_bytes, source="dram")
        routed.inc(plan.dedup_bytes, source="dedup")
        routed.inc(plan.scm_seq_bytes, source="scm_seq")
        routed.inc(plan.scm_rand_bytes, source="scm_rand")
        registry.counter(
            "planner.gap_bytes", "sequential gap-fill overhead bytes"
        ).inc(plan.gap_bytes)
        if prefetch_blocks or prefetch_bytes:
            registry.counter(
                "planner.prefetch_blocks", "blocks staged speculatively"
            ).inc(prefetch_blocks)
            registry.counter(
                "planner.prefetch_bytes", "bytes staged speculatively"
            ).inc(prefetch_bytes)
        runs = registry.counter(
            "planner.runs", "SCM transfers issued, by shape"
        )
        coalesced = plan.num_sequential_runs
        if coalesced:
            runs.inc(coalesced, shape="coalesced")
        singletons = len(plan.runs) - coalesced
        if singletons:
            runs.inc(singletons, shape="singleton")
        registry.gauge(
            "planner.last_sequential_share",
            "last window's sequential share of SCM miss bytes",
        ).set(plan.sequential_share)
        tenant_bytes = registry.counter(
            "planner.tenant_bytes", "demand bytes charged per tenant"
        )
        for tenant, nbytes in plan.tenant_bytes.items():
            tenant_bytes.inc(nbytes, tenant=tenant)

    def on_live_seal(self, segment_id: int, num_docs: int,
                     nbytes: int) -> None:
        self.registry.counter(
            "live.seals", "write-buffer seals into tier-0 segments"
        ).inc()
        self.registry.counter(
            "live.seal_bytes", "sequential ST Index bytes from seals"
        ).inc(nbytes)
        self.registry.counter(
            "live.sealed_docs", "documents moved buffer -> segment"
        ).inc(num_docs)

    def on_live_merge(self, segment_id: Optional[int], tier: int,
                      bytes_read: int, bytes_written: int,
                      seconds: float) -> None:
        self.registry.counter(
            "live.merges", "background compactions, by output tier"
        ).inc(tier=str(tier))
        self.registry.counter(
            "live.merge_read_bytes", "merge input bytes (LD List)"
        ).inc(bytes_read)
        self.registry.counter(
            "live.merge_write_bytes",
            "merge output bytes (ST Index), by output tier",
        ).inc(bytes_written, tier=str(tier))
        self.registry.counter(
            "live.maintenance_seconds", "modeled device seconds in merges"
        ).inc(seconds)

    def on_live_state(self, buffered_docs: int, buffered_bytes: int,
                      num_segments: int,
                      write_amplification: float) -> None:
        self.registry.gauge(
            "live.buffer_docs", "documents in the write buffer"
        ).set(buffered_docs)
        self.registry.gauge(
            "live.buffer_bytes", "modeled write-buffer footprint"
        ).set(buffered_bytes)
        self.registry.gauge(
            "live.segments", "sealed segments currently live"
        ).set(num_segments)
        self.registry.gauge(
            "live.write_amplification",
            "total ST Index bytes over tier-0 seal bytes",
        ).set(write_amplification)

    def on_wal_append(self, kind: str, nbytes: int) -> None:
        self.registry.counter(
            "live.wal.records", "WAL frames appended, by record kind"
        ).inc(kind=kind)
        self.registry.counter(
            "live.wal.bytes", "sequential ST Index bytes from WAL frames"
        ).inc(nbytes)

    def on_manifest_write(self, nbytes: int, num_segments: int) -> None:
        self.registry.counter(
            "live.manifest.writes", "atomic manifest replacements"
        ).inc()
        self.registry.counter(
            "live.manifest.bytes",
            "sequential ST Index bytes from manifest writes",
        ).inc(nbytes)

    def on_recovery_complete(self, report) -> None:
        self.registry.counter(
            "live.recovery.runs", "crash recoveries completed"
        ).inc(torn="none" if report.torn is None else report.torn)
        self.registry.counter(
            "live.recovery.records_replayed", "WAL records replayed"
        ).inc(report.records_replayed)
        self.registry.counter(
            "live.recovery.segments", "segment dispositions during replay"
        ).inc(report.segments_loaded, disposition="loaded")
        self.registry.counter(
            "live.recovery.segments", "segment dispositions during replay"
        ).inc(report.segments_rebuilt, disposition="rebuilt")
        self.registry.counter(
            "live.recovery.torn_bytes", "WAL tail bytes truncated"
        ).inc(report.torn_bytes)
        self.registry.counter(
            "live.recovery.orphans_removed",
            "uncommitted segment files swept",
        ).inc(report.orphans_removed)
        self.registry.gauge(
            "live.recovery.last_modeled_seconds",
            "modeled device seconds of the last recovery's own I/O",
        ).set(report.modeled_seconds)

    def on_rebalance_step(self, kind: str, shard: int,
                          state: str) -> None:
        self.registry.counter(
            "rebalance.steps", "move protocol state transitions"
        ).inc(kind=kind, state=state)

    def on_rebalance_complete(self, report) -> None:
        registry = self.registry
        registry.counter(
            "rebalance.moves", "topology moves, by kind and outcome"
        ).inc(kind=report.kind,
              outcome="aborted" if report.aborted else "published")
        registry.counter(
            "rebalance.read_bytes",
            "sequential LD List bytes streamed out of move sources",
        ).inc(report.read_bytes)
        registry.counter(
            "rebalance.write_bytes",
            "sequential ST Index bytes written into move destinations",
        ).inc(report.write_bytes)
        # The conservation identity, exported: out == in for every
        # published move (Rebalancer raises before publish otherwise).
        moved = registry.counter(
            "rebalance.postings_moved",
            "postings streamed during moves, by direction",
        )
        moved.inc(report.postings_out, direction="out")
        moved.inc(report.postings_in, direction="in")
        registry.counter(
            "rebalance.maintenance_seconds",
            "modeled device seconds spent on move traffic",
        ).inc(report.modeled_seconds)
        if not report.aborted:
            registry.gauge(
                "rebalance.map_version", "current shard-map generation"
            ).set(report.map_version)

    def on_rerank_complete(self, result) -> None:
        self.registry.counter(
            "rerank.queries", "queries through the software second stage"
        ).inc()
        self.registry.counter(
            "rerank.candidates", "candidates rescored by the second stage"
        ).inc(result.candidates)
        self.registry.counter(
            "rerank.seconds", "modeled host seconds in the second stage"
        ).inc(result.rerank_seconds)
        # The stage the per-query traces were blind to: surface it in
        # the same pipeline ledger the device stages publish into.
        self.registry.counter(
            "pipeline.stage_seconds", "summed modeled stage time"
        ).inc(result.rerank_seconds, stage="rerank", engine="host")

    def on_vector_query(self, result) -> None:
        registry = self.registry
        registry.counter(
            "vector.queries", "ANN queries answered"
        ).inc()
        registry.counter(
            "vector.demand_bytes", "layout bytes demanded by probes"
        ).inc(result.demand_bytes)
        moved = registry.counter(
            "vector.bytes", "probe bytes by layout component"
        )
        moved.inc(result.centroid_bytes, component="centroid")
        moved.inc(result.cluster_seq_bytes, component="cluster_seq")
        moved.inc(result.cluster_hop_bytes, component="cluster_hop")
        registry.counter(
            "vector.clusters_probed", "clusters scanned across queries"
        ).inc(result.clusters_probed)
        registry.counter(
            "vector.vectors_scanned", "vectors scored across queries"
        ).inc(result.vectors_scanned)
        registry.histogram(
            "vector.latency_us", LATENCY_BUCKETS_US,
            "modeled ANN query latency (us)",
        ).observe(result.modeled_seconds * 1e6)

    def on_hybrid_complete(self, result) -> None:
        self.registry.counter(
            "hybrid.queries", "hybrid queries, by fusion mode"
        ).inc(mode=result.mode)
        self.registry.counter(
            "hybrid.candidates", "candidates rescored or fused"
        ).inc(result.candidates, mode=result.mode)
        self.registry.histogram(
            "hybrid.latency_us", LATENCY_BUCKETS_US,
            "modeled end-to-end hybrid latency (us)",
        ).observe(result.modeled_seconds * 1e6, mode=result.mode)

    # ------------------------------------------------------------------
    # Registry publication
    # ------------------------------------------------------------------

    def _publish(self, trace: QueryTrace) -> None:
        registry = self.registry
        registry.counter("queries.completed", "finished queries").inc(
            engine=trace.engine, qtype=trace.query_type
        )
        registry.histogram(
            "query.latency_us", LATENCY_BUCKETS_US,
            "modeled serialized query latency (us)",
        ).observe(trace.latency_seconds * 1e6, engine=trace.engine)
        registry.histogram(
            "query.pipelined_us", LATENCY_BUCKETS_US,
            "modeled pipelined query latency (us)",
        ).observe(trace.pipelined_seconds * 1e6, engine=trace.engine)
        for entry in trace.traffic:
            registry.counter(
                "scm.bytes", "device bytes by class/pattern/tier"
            ).inc(entry.bytes, cls=entry.access_class,
                  pattern=entry.pattern, tier=entry.tier)
            registry.counter(
                "scm.accesses", "device accesses by class"
            ).inc(entry.accesses, cls=entry.access_class)
        for span in trace.spans:
            registry.counter(
                "pipeline.stage_seconds", "summed modeled stage time"
            ).inc(span.seconds, stage=span.name, engine=trace.engine)
        registry.counter(
            "interconnect.bytes", "host-link bytes"
        ).inc(trace.interconnect_bytes)
        work = trace.work
        for name in ("blocks_fetched", "blocks_skipped_et",
                     "blocks_skipped_overlap", "postings_decoded",
                     "docs_evaluated", "topk_inserts"):
            if name in work:
                registry.counter(
                    f"work.{name}", f"summed {name} over queries"
                ).inc(work[name], engine=trace.engine)
        registry.counter("engine.cores_used", "core-occupancy sum").inc(
            trace.cores_used, engine=trace.engine
        )
