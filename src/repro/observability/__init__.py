"""Query-level observability: metrics registry, traces, and profiling.

This package answers "where do the time and the bytes go, per query" —
the accounting the paper's evaluation figures are built on, surfaced as
a first-class API instead of ad-hoc prints:

* :mod:`repro.observability.registry` — counters, gauges and
  explicit-bucket histograms, fed exclusively by the simulator's
  *modeled* time (no wall clock anywhere);
* :mod:`repro.observability.trace` — structured
  :class:`~repro.observability.trace.QueryTrace` records: one span per
  pipeline stage with modeled start/end times, per-stage byte
  attribution across access class x pattern x tier, skip counts, cores;
* :mod:`repro.observability.observer` — the
  :class:`~repro.observability.observer.Observer` object threaded
  through ``BossSession -> BossAccelerator -> pipeline/pool/cluster``
  (default :data:`~repro.observability.observer.NULL_OBSERVER`, a
  zero-cost no-op) and the recording implementation;
* :mod:`repro.observability.profiler` — trace construction from results
  plus the report renderers behind ``repro-boss trace`` / ``metrics``.

Two invariants tie the layer to the performance model (pinned by
``tests/observability``): per-stage bytes sum to the traffic counter's
totals, and per-stage modeled times sum to the trace's latency.
"""

from repro.observability.observer import (
    LATENCY_BUCKETS_US,
    NULL_OBSERVER,
    Observer,
    RecordingObserver,
)
from repro.observability.profiler import (
    aggregate_stage_bytes,
    aggregate_stage_seconds,
    batch_bottleneck,
    build_trace,
    render_batch,
    render_metrics,
    render_trace,
)
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import (
    ALL_STAGES,
    CLASS_TO_STAGE,
    PIPELINE_STAGES,
    STAGE_MEMORY,
    QueryTrace,
    Span,
    TrafficEntry,
    stage_byte_totals,
    traffic_entries,
)

__all__ = [
    # observer
    "Observer",
    "RecordingObserver",
    "NULL_OBSERVER",
    "LATENCY_BUCKETS_US",
    # registry
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    # trace
    "QueryTrace",
    "Span",
    "TrafficEntry",
    "PIPELINE_STAGES",
    "ALL_STAGES",
    "STAGE_MEMORY",
    "CLASS_TO_STAGE",
    "traffic_entries",
    "stage_byte_totals",
    # profiler
    "build_trace",
    "render_trace",
    "render_batch",
    "render_metrics",
    "aggregate_stage_seconds",
    "aggregate_stage_bytes",
    "batch_bottleneck",
]
