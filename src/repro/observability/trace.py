"""Structured per-query traces: spans, traffic attribution, work.

A :class:`QueryTrace` is the record one ``search()`` leaves behind when a
recording observer is attached: one :class:`Span` per pipeline stage of
the paper's Figure 4(b) core —

    block fetch -> decompression -> merger -> scoring -> top-k

plus a ``memory`` transport span for the SCM service time. Span times
are **modeled** seconds from the timing model (never wall clock), laid
out back to back, so the trace satisfies two invariants the test suite
pins:

* **additivity** — span durations sum to ``latency_seconds``;
* **traffic conservation** — span ``bytes_moved`` sum to the query's
  ``TrafficCounter`` total (every access class is attributed to exactly
  one functional stage; the memory span carries no bytes of its own
  because it *is* the transport for the functional stages' bytes).

``pipelined_seconds`` separately records the latency under the paper's
fully-pipelined model (``max`` over stages plus dispatch overhead) —
that is the number the throughput model uses; the serialized layout
exists so "where did the time go" questions have an additive answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter

#: Canonical stage names, in pipeline order.
STAGE_BLOCK_FETCH = "block-fetch"
STAGE_DECOMPRESSION = "decompression"
STAGE_MERGER = "merger"
STAGE_SCORING = "scoring"
STAGE_TOPK = "top-k"
STAGE_MEMORY = "memory"

PIPELINE_STAGES = (STAGE_BLOCK_FETCH, STAGE_DECOMPRESSION, STAGE_MERGER,
                   STAGE_SCORING, STAGE_TOPK)
ALL_STAGES = PIPELINE_STAGES + (STAGE_MEMORY,)

#: Index-maintenance traffic (live-index seals and merges) is not part
#: of the query pipeline; it gets its own attribution stage.
STAGE_MAINTENANCE = "maintenance"

#: Which functional stage each memory-access class is attributed to.
CLASS_TO_STAGE = {
    AccessClass.LD_LIST: STAGE_BLOCK_FETCH,
    AccessClass.LD_SCORE: STAGE_SCORING,
    AccessClass.LD_INTER: STAGE_MERGER,
    AccessClass.ST_INTER: STAGE_MERGER,
    AccessClass.ST_RESULT: STAGE_TOPK,
    AccessClass.ST_INDEX: STAGE_MAINTENANCE,
}


class TrafficEntry:
    """One (class, pattern) bucket of a query's device traffic.

    A plain ``__slots__`` class rather than a dataclass: traces allocate
    one of these per touched (class, pattern) bucket per query, and the
    slotted layout removes the per-instance ``__dict__`` on the batch
    driver's hot path (``dataclass(slots=True)`` needs Python >= 3.10;
    CI still runs 3.9).
    """

    __slots__ = ("access_class", "pattern", "direction", "tier",
                 "bytes", "accesses", "stage")

    def __init__(self, access_class: str, pattern: str, direction: str,
                 tier: str, bytes: int, accesses: int, stage: str) -> None:
        self.access_class = access_class
        self.pattern = pattern
        #: "read" | "write"
        self.direction = direction
        #: "scm" by default; "dram" under a cache-tier study
        self.tier = tier
        self.bytes = bytes
        self.accesses = accesses
        #: Functional stage the bytes are attributed to.
        self.stage = stage

    def _key(self) -> tuple:
        return (self.access_class, self.pattern, self.direction,
                self.tier, self.bytes, self.accesses, self.stage)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TrafficEntry):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrafficEntry(access_class={self.access_class!r}, "
            f"pattern={self.pattern!r}, direction={self.direction!r}, "
            f"tier={self.tier!r}, bytes={self.bytes}, "
            f"accesses={self.accesses}, stage={self.stage!r})"
        )

    def to_dict(self) -> dict:
        return {
            "class": self.access_class,
            "pattern": self.pattern,
            "direction": self.direction,
            "tier": self.tier,
            "bytes": self.bytes,
            "accesses": self.accesses,
            "stage": self.stage,
        }


class Span:
    """One pipeline stage's modeled execution window.

    Slotted for the same reason as :class:`TrafficEntry`: six spans per
    query trace add up under the batched driver.
    """

    __slots__ = ("name", "start_seconds", "end_seconds", "bytes_moved")

    def __init__(self, name: str, start_seconds: float,
                 end_seconds: float, bytes_moved: int = 0) -> None:
        if end_seconds < start_seconds:
            raise ConfigurationError(
                f"span {name!r} ends before it starts"
            )
        self.name = name
        self.start_seconds = start_seconds
        self.end_seconds = end_seconds
        #: Device bytes attributed to this stage (0 for on-chip stages).
        self.bytes_moved = bytes_moved

    def _key(self) -> tuple:
        return (self.name, self.start_seconds, self.end_seconds,
                self.bytes_moved)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span(name={self.name!r}, start_seconds={self.start_seconds}, "
            f"end_seconds={self.end_seconds}, bytes_moved={self.bytes_moved})"
        )

    @property
    def seconds(self) -> float:
        return self.end_seconds - self.start_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
            "seconds": self.seconds,
            "bytes_moved": self.bytes_moved,
        }


@dataclass
class QueryTrace:
    """Everything one query execution left behind."""

    query_id: int
    engine: str
    expression: str
    query_type: str
    num_terms: int
    cores_used: int
    num_hits: int
    spans: List[Span]
    #: Serialized (additive) latency: sum of span durations.
    latency_seconds: float
    #: Fully-pipelined latency from the timing model (max over stages
    #: plus dispatch overhead) — what the throughput model charges.
    pipelined_seconds: float
    interconnect_bytes: int
    traffic: List[TrafficEntry] = field(default_factory=list)
    #: Work-counter snapshot (field name -> count).
    work: Dict[str, int] = field(default_factory=dict)
    blocks_skipped_et: int = 0
    blocks_skipped_overlap: int = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Device bytes summed over every span (= traffic total)."""
        return sum(span.bytes_moved for span in self.spans)

    @property
    def bottleneck(self) -> str:
        """Stage with the largest modeled busy time."""
        if not self.spans:
            raise ConfigurationError("empty trace has no bottleneck")
        return max(self.spans, key=lambda s: s.seconds).name

    def stage_seconds(self) -> Dict[str, float]:
        return {span.name: span.seconds for span in self.spans}

    def stage_bytes(self) -> Dict[str, int]:
        return {span.name: span.bytes_moved for span in self.spans}

    def span(self, name: str) -> Span:
        for candidate in self.spans:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"trace has no span {name!r}")

    def bytes_by_class(self) -> Dict[str, int]:
        """Byte totals per access class (Figure 15's categories)."""
        out: Dict[str, int] = {}
        for entry in self.traffic:
            out[entry.access_class] = (
                out.get(entry.access_class, 0) + entry.bytes
            )
        return out

    def bytes_by(self, pattern: Optional[str] = None,
                 direction: Optional[str] = None,
                 tier: Optional[str] = None) -> int:
        """Bytes filtered along the seq/random x read/write x tier axes."""
        return sum(
            e.bytes for e in self.traffic
            if (pattern is None or e.pattern == pattern)
            and (direction is None or e.direction == direction)
            and (tier is None or e.tier == tier)
        )

    def utilization(self) -> Dict[str, float]:
        """Each stage's share of the additive latency."""
        if self.latency_seconds <= 0:
            raise ConfigurationError("trace has zero latency")
        return {
            span.name: span.seconds / self.latency_seconds
            for span in self.spans
        }

    def to_dict(self) -> dict:
        """JSON-safe representation (the trace schema of the docs)."""
        return {
            "query_id": self.query_id,
            "engine": self.engine,
            "expression": self.expression,
            "query_type": self.query_type,
            "num_terms": self.num_terms,
            "cores_used": self.cores_used,
            "num_hits": self.num_hits,
            "latency_seconds": self.latency_seconds,
            "pipelined_seconds": self.pipelined_seconds,
            "interconnect_bytes": self.interconnect_bytes,
            "bottleneck": self.bottleneck,
            "blocks_skipped_et": self.blocks_skipped_et,
            "blocks_skipped_overlap": self.blocks_skipped_overlap,
            "spans": [span.to_dict() for span in self.spans],
            "traffic": [entry.to_dict() for entry in self.traffic],
            "work": dict(self.work),
        }


def traffic_entries(traffic: TrafficCounter,
                    tier: str = "scm") -> List[TrafficEntry]:
    """Flatten a :class:`TrafficCounter` into per-bucket trace entries."""
    entries: List[TrafficEntry] = []
    for cls in AccessClass:
        for pattern in AccessPattern:
            nbytes = traffic.bytes_for(cls, pattern)
            accesses = traffic.accesses_for(cls, pattern)
            if nbytes == 0 and accesses == 0:
                continue
            entries.append(TrafficEntry(
                access_class=cls.value,
                pattern=pattern.value,
                direction="write" if cls.is_write else "read",
                tier=tier,
                bytes=nbytes,
                accesses=accesses,
                stage=CLASS_TO_STAGE[cls],
            ))
    return entries


def stage_byte_totals(entries: List[TrafficEntry]) -> Dict[str, int]:
    """Per-stage byte attribution of a flattened traffic list."""
    out: Dict[str, int] = {stage: 0 for stage in PIPELINE_STAGES}
    for entry in entries:
        out[entry.stage] = out.get(entry.stage, 0) + entry.bytes
    return out
