"""Profiler: turn execution results into traces and readable reports.

:func:`build_trace` converts one :class:`~repro.core.result.SearchResult`
plus an accelerator timing model into a :class:`QueryTrace`;
:func:`render_trace` and :func:`render_metrics` are the report backends
behind the ``repro-boss trace`` / ``repro-boss metrics`` CLI commands and
replace the ad-hoc prints the benchmarks used to do by reaching into
engine internals.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.result import SearchResult
from repro.errors import ConfigurationError
from repro.observability.registry import MetricsRegistry
from repro.observability.trace import (
    PIPELINE_STAGES,
    STAGE_MEMORY,
    QueryTrace,
    Span,
    stage_byte_totals,
    traffic_entries,
)


def build_trace(model, result: SearchResult, query_id: int = 0,
                engine: Optional[str] = None,
                cores_used: Optional[int] = None) -> QueryTrace:
    """Build the per-stage trace of one query under a timing model.

    ``model`` is an accelerator timing model (it must expose
    ``module_names``, ``_module_cycles``, ``clock_hz``,
    ``memory_seconds`` and ``query_seconds`` — both the BOSS and the IIU
    models do). Span layout is serialized in pipeline order with the
    memory transport span last, so durations are additive.
    """
    names = getattr(model, "module_names", None)
    if names is None or not hasattr(model, "_module_cycles"):
        raise ConfigurationError(
            f"{type(model).__name__} cannot produce a stage trace"
        )
    cycles = model._module_cycles(result)
    if len(cycles) != len(names):
        raise ConfigurationError(
            "timing model stage labels out of sync with cycle vector"
        )

    entries = traffic_entries(result.traffic)
    stage_bytes = stage_byte_totals(entries)

    spans: List[Span] = []
    clock = 0.0
    for name, stage_cycles in zip(names, cycles):
        seconds = stage_cycles / model.clock_hz
        spans.append(Span(
            name=name,
            start_seconds=clock,
            end_seconds=clock + seconds,
            bytes_moved=stage_bytes.get(name, 0),
        ))
        clock += seconds
    memory_seconds = model.memory_seconds(result)
    spans.append(Span(
        name=STAGE_MEMORY,
        start_seconds=clock,
        end_seconds=clock + memory_seconds,
        bytes_moved=0,
    ))
    clock += memory_seconds

    work = result.work
    return QueryTrace(
        query_id=query_id,
        engine=engine or model.name,
        expression=str(result.query),
        query_type=result.query_type,
        num_terms=len(result.query.terms()),
        cores_used=(model.cores_used(result)
                    if cores_used is None else cores_used),
        num_hits=len(result.hits),
        spans=spans,
        latency_seconds=clock,
        pipelined_seconds=model.query_seconds(result),
        interconnect_bytes=result.interconnect_bytes,
        traffic=entries,
        work={f: getattr(work, f) for f in _work_fields(work)},
        blocks_skipped_et=work.blocks_skipped_et,
        blocks_skipped_overlap=work.blocks_skipped_overlap,
    )


def _work_fields(work) -> List[str]:
    from dataclasses import fields

    return [f.name for f in fields(work)]


# ---------------------------------------------------------------------------
# Aggregation over trace batches
# ---------------------------------------------------------------------------

def aggregate_stage_seconds(traces: Iterable[QueryTrace]) -> Dict[str, float]:
    """Summed per-stage busy seconds over a batch of traces."""
    totals: Dict[str, float] = {}
    for trace in traces:
        for span in trace.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.seconds
    if not totals:
        raise ConfigurationError("no traces to aggregate")
    return totals


def aggregate_stage_bytes(traces: Iterable[QueryTrace]) -> Dict[str, int]:
    """Summed per-stage byte attribution over a batch of traces."""
    totals: Dict[str, int] = {}
    for trace in traces:
        for span in trace.spans:
            totals[span.name] = totals.get(span.name, 0) + span.bytes_moved
    if not totals:
        raise ConfigurationError("no traces to aggregate")
    return totals


def batch_bottleneck(traces: Iterable[QueryTrace]) -> str:
    """Stage with the largest summed busy time across a batch."""
    totals = aggregate_stage_seconds(traces)
    return max(totals, key=totals.get)


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------

def render_trace(trace: QueryTrace) -> str:
    """Per-stage breakdown of one query, bottleneck flagged."""
    us = 1e6
    lines = [
        f"query #{trace.query_id} [{trace.query_type}] on {trace.engine}: "
        f"{trace.expression}",
        f"hits {trace.num_hits}, terms {trace.num_terms}, "
        f"cores {trace.cores_used}",
        f"{'stage':<15}{'time (us)':>12}{'share':>9}{'bytes':>12}",
    ]
    bottleneck = trace.bottleneck
    for span in trace.spans:
        share = (span.seconds / trace.latency_seconds
                 if trace.latency_seconds > 0 else 0.0)
        flag = "  <- bottleneck" if span.name == bottleneck else ""
        lines.append(
            f"{span.name:<15}{span.seconds * us:>12.3f}{share:>8.1%}"
            f"{span.bytes_moved:>12}{flag}"
        )
    lines.append(
        f"{'total':<15}{trace.latency_seconds * us:>12.3f}{'100.0%':>9}"
        f"{trace.total_bytes:>12}"
    )
    lines.append(
        f"pipelined latency {trace.pipelined_seconds * us:.3f} us; "
        f"host link {trace.interconnect_bytes} B; "
        f"skips: {trace.blocks_skipped_et} ET, "
        f"{trace.blocks_skipped_overlap} overlap"
    )
    return "\n".join(lines)


def render_batch(traces: List[QueryTrace]) -> str:
    """Aggregate stage table over a batch of traces."""
    if not traces:
        raise ConfigurationError("no traces to render")
    totals = aggregate_stage_seconds(traces)
    stage_bytes = aggregate_stage_bytes(traces)
    grand = sum(totals.values()) or 1.0
    bottleneck = batch_bottleneck(traces)
    lines = [
        f"{len(traces)} queries on {traces[0].engine}",
        f"{'stage':<15}{'time (us)':>12}{'share':>9}{'bytes':>14}",
    ]
    order = list(PIPELINE_STAGES) + [STAGE_MEMORY]
    for stage in order:
        if stage not in totals:
            continue
        flag = "  <- bottleneck" if stage == bottleneck else ""
        lines.append(
            f"{stage:<15}{totals[stage] * 1e6:>12.3f}"
            f"{totals[stage] / grand:>8.1%}"
            f"{stage_bytes.get(stage, 0):>14}{flag}"
        )
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry) -> str:
    """Text dump of a metrics registry (the ``metrics`` CLI backend)."""
    text = registry.render()
    return text if text else "(no metrics recorded)"
