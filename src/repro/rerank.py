"""Second-stage re-ranking: the software stage BOSS hands off to.

The paper (Section II-B): modern engines use multi-stage ranking — a
fast first stage retrieves top-k candidates, and "BOSS leaves this
second, re-ranking stage to software, while covering all the prior
stages up to the first top-k candidate retrieval stage."

This module provides that software stage:

* :class:`Reranker` — the interface: score a candidate from its
  first-stage evidence;
* :class:`LinearReranker` — a feature-linear model over the evidence a
  first-stage result actually carries (first-stage score, matched-term
  count, document length prior), standing in for the neural models the
  paper cites [27], [47], [49];
* :class:`TwoStageSearch` — the full pipeline: a first-stage engine
  (BOSS/IIU/Lucene) retrieves k1 candidates, the re-ranker rescores
  them on the host, and the top k2 are returned. Host CPU time is
  modeled per candidate so the pipeline composes with the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.query import QueryNode
from repro.core.result import ScoredDocument, SearchResult
from repro.errors import ConfigurationError
from repro.index.index import InvertedIndex
from repro.observability.observer import NULL_OBSERVER, Observer


@dataclass(frozen=True)
class CandidateFeatures:
    """Evidence available to the second stage for one candidate."""

    doc_id: int
    first_stage_score: float
    #: Query terms whose posting lists contain the document.
    matched_terms: int
    #: Total query terms.
    query_terms: int
    #: Document length in tokens.
    doc_length: int


class Reranker:
    """Interface for second-stage scoring models."""

    #: Modeled host CPU cost per rescored candidate (seconds). Neural
    #: re-rankers are orders slower; this default is a light model.
    cost_per_candidate: float = 2e-6

    def begin_query(self, query: QueryNode) -> None:
        """Called once per query before any candidate is scored.

        Stateless models ignore it; models with per-query state (e.g.
        the query embedding of :class:`repro.vector.hybrid.
        VectorReranker`) prepare it here.
        """

    def score(self, features: CandidateFeatures) -> float:
        raise NotImplementedError


@dataclass
class LinearReranker(Reranker):
    """Weighted sum over the candidate features.

    Default weights keep the first-stage order as the dominant signal
    and break ties toward documents matching more query terms and
    toward mid-length documents — the standard hand-tuned baseline a
    learned model would replace.
    """

    weight_first_stage: float = 1.0
    weight_coverage: float = 0.5
    weight_length_prior: float = 0.1
    #: Document length at which the prior peaks.
    preferred_length: float = 300.0
    cost_per_candidate: float = 2e-6

    def score(self, features: CandidateFeatures) -> float:
        coverage = (
            features.matched_terms / features.query_terms
            if features.query_terms else 0.0
        )
        length_ratio = features.doc_length / self.preferred_length
        # Smooth unimodal prior: 1 at the preferred length, falling off
        # for very short or very long documents.
        length_prior = 2.0 * length_ratio / (1.0 + length_ratio ** 2)
        return (
            self.weight_first_stage * features.first_stage_score
            + self.weight_coverage * coverage
            + self.weight_length_prior * length_prior
        )


@dataclass
class RerankedResult:
    """Outcome of the two-stage pipeline."""

    query: QueryNode
    hits: List[ScoredDocument]
    first_stage: SearchResult
    #: Modeled host seconds spent in the second stage.
    rerank_seconds: float = 0.0
    #: Candidates rescored.
    candidates: int = 0


class TwoStageSearch:
    """First-stage engine + software re-ranker, composed.

    Parameters
    ----------
    engine:
        Any first-stage engine (``search(query, k)``): a monolithic
        accelerator (any executor) exposing ``index``, or a cluster
        root exposing its leaf ``engines`` — shards carry corpus-global
        docIDs and document statistics, so leaf indexes resolve any
        candidate's evidence.
    reranker:
        The second-stage model.
    first_stage_k:
        Candidates retrieved by the first stage (the paper's k, default
        1000); the final ``k`` of :meth:`search` selects from these.
    observer:
        Observability hook; receives ``on_rerank_complete`` per query
        (the stage's ``rerank.*`` metrics and trace visibility).
    """

    def __init__(self, engine, reranker: Optional[Reranker] = None,
                 first_stage_k: int = 1000,
                 observer: Observer = NULL_OBSERVER) -> None:
        if first_stage_k <= 0:
            raise ConfigurationError("first_stage_k must be positive")
        self._engine = engine
        self._reranker = reranker if reranker is not None else LinearReranker()
        self._first_stage_k = first_stage_k
        self._observer = observer

    @property
    def index(self) -> InvertedIndex:
        return self._engine.index

    def search(self, query: Union[str, QueryNode],
               k: int = 10) -> RerankedResult:
        """Retrieve ``first_stage_k`` candidates, rescore, return top ``k``."""
        if k <= 0:
            raise ConfigurationError("k must be positive")
        first = self._engine.search(query, k=self._first_stage_k)
        self._reranker.begin_query(first.query)
        features = self._features_for(first)
        rescored = sorted(
            (
                ScoredDocument(f.doc_id, self._reranker.score(f))
                for f in features
            ),
            key=lambda hit: (-hit.score, hit.doc_id),
        )
        result = RerankedResult(
            query=first.query,
            hits=rescored[:k],
            first_stage=first,
            rerank_seconds=(
                len(features) * self._reranker.cost_per_candidate
            ),
            candidates=len(features),
        )
        if self._observer.enabled:
            self._observer.on_rerank_complete(result)
        return result

    def _index_views(self) -> List[InvertedIndex]:
        """The index (or leaf shard indexes) candidate evidence lives in.

        A cluster root has no single ``index``; its leaves do, and every
        shard is built with the corpus-global document table
        (:func:`repro.cluster.sharding.shard_documents`), so any leaf
        scorer can resolve any docID's length and each docID's postings
        live in exactly one leaf.
        """
        index = getattr(self._engine, "index", None)
        if index is not None:
            return [index]
        leaves = getattr(self._engine, "engines", None)
        if leaves:
            return [leaf.index for leaf in leaves]
        raise ConfigurationError(
            "first-stage engine exposes neither 'index' nor 'engines'"
        )

    def _features_for(self,
                      first: SearchResult) -> List[CandidateFeatures]:
        from repro.core.cursor import ListCursor
        from repro.scm.traffic import TrafficCounter
        from repro.sim.metrics import WorkCounters

        views = self._index_views()
        terms = list(dict.fromkeys(first.query.terms()))
        # Membership probes over the candidates, per term, monotone in
        # docID (candidates sorted): one galloping cursor pass per
        # (term, shard) instead of decoding whole posting lists —
        # metadata-guided skips fetch only the blocks candidates land
        # in. Throwaway counters: these are host-side probes, not
        # device traffic.
        candidate_ids = sorted(hit.doc_id for hit in first.hits)
        matched: Dict[int, int] = {doc: 0 for doc in candidate_ids}
        for term in terms:
            for view in views:
                if term not in view:
                    continue
                cursor = ListCursor(view.posting_list(term),
                                    WorkCounters(), TrafficCounter())
                for doc in candidate_ids:
                    landed = cursor.advance_to(doc)
                    if landed is None:
                        break
                    if landed == doc:
                        matched[doc] += 1
        scorer = views[0].scorer
        return [
            CandidateFeatures(
                doc_id=hit.doc_id,
                first_stage_score=hit.score,
                matched_terms=matched[hit.doc_id],
                query_terms=len(terms),
                doc_length=int(round(
                    _doc_length_from_normalizer(
                        scorer.length_normalizer(hit.doc_id),
                        scorer,
                    )
                )),
            )
            for hit in first.hits
        ]


def _doc_length_from_normalizer(normalizer: float, scorer) -> float:
    """Invert the stored BM25 normalizer back to a document length.

    The per-document metadata BOSS stores is
    ``k1 * (1 - b + b * |D| / avgdl)``; the second stage recovers |D|
    from it instead of shipping a second per-document table.
    """
    params = scorer.params
    if params.b == 0:
        return scorer.avgdl
    return (
        (normalizer / params.k1 - (1.0 - params.b))
        * scorer.avgdl / params.b
    )
