"""BOSS: Bandwidth-Optimized Search Accelerator for Storage-Class Memory.

A behavioral and performance-model reproduction of Heo et al., ISCA 2021.

The library has three layers:

* **functional search substrate** — inverted index construction
  (:mod:`repro.index`), integer compression (:mod:`repro.compression`),
  the programmable decompression module (:mod:`repro.decompressor`),
  query parsing and the BM25/WAND/SvS machinery (:mod:`repro.core`);
* **engines** — the BOSS accelerator (:class:`repro.core.BossAccelerator`)
  and the two baselines (:mod:`repro.baselines`): IIU and a Lucene-like
  software engine. All three return identical top-k results and differ
  only in the work/traffic they generate;
* **performance model** — SCM/DRAM device and interconnect models
  (:mod:`repro.scm`), the timing and throughput model (:mod:`repro.sim`)
  and the area/power/energy model (:mod:`repro.hwmodel`).

Quickstart::

    from repro import BossSession, IndexBuilder

    builder = IndexBuilder()
    builder.add_document("storage class memory is the new tier".split())
    builder.add_document("a search accelerator near the memory".split())
    index = builder.build()

    session = BossSession()
    session.init(index)
    result = session.search('"memory" AND "search"', k=10)
    for hit in result.hits:
        print(hit.doc_id, hit.score)
"""

from repro.api import BossSession, MAX_QUERY_TERMS
from repro.clock import WALL_CLOCK, VirtualClock, WallClock
from repro.baselines import IIUAccelerator, IIUConfig, LuceneConfig, LuceneEngine
from repro.core import (
    BossAccelerator,
    BossConfig,
    ScoredDocument,
    SearchResult,
    TopKQueue,
    classify_query,
    parse_query,
)
from repro.errors import (
    CompressionError,
    ConfigurationError,
    CrashError,
    DecompressorProgramError,
    FaultInjectionError,
    InvertedIndexError,
    LeafExecutionError,
    QueryError,
    ReproError,
    SimulationError,
)
from repro.faults import ZERO_FAULTS, FaultConfig, FaultyEngine
from repro.index import (
    BM25Parameters,
    BM25Scorer,
    IndexBuilder,
    InvertedIndex,
    MmapIndexStorage,
    load_index_mmap,
    open_index,
)
from repro.index.binaryio import load_index_binary, save_index_binary
from repro.index.io import load_index, save_index
from repro.live import (
    DurableLiveIndexWriter,
    LiveIndexWriter,
    LiveServingTarget,
    LiveStatistics,
    MemSegment,
    MergePolicy,
    MergeScheduler,
    RecoveryReport,
    SegmentedIndex,
    UpdateResult,
    WriteAheadLog,
    recover_live_index,
)
from repro.observability import (
    NULL_OBSERVER,
    MetricsRegistry,
    Observer,
    QueryTrace,
    RecordingObserver,
)
from repro.serving import (
    PoissonArrivals,
    QueryServer,
    ServingConfig,
    ServingReport,
    TraceArrivals,
    zipf_workload,
)
from repro.sim import (
    BossTimingModel,
    IIUTimingModel,
    LuceneTimingModel,
    ThroughputReport,
)
from repro.workloads import QuerySampler, make_corpus

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # sessions & engines
    "BossSession",
    "MAX_QUERY_TERMS",
    "BossAccelerator",
    "BossConfig",
    "IIUAccelerator",
    "IIUConfig",
    "LuceneEngine",
    "LuceneConfig",
    # index
    "IndexBuilder",
    "InvertedIndex",
    "BM25Parameters",
    "BM25Scorer",
    "save_index",
    "load_index",
    "save_index_binary",
    "load_index_binary",
    "load_index_mmap",
    "open_index",
    "MmapIndexStorage",
    # queries & results
    "parse_query",
    "classify_query",
    "SearchResult",
    "ScoredDocument",
    "TopKQueue",
    # observability
    "Observer",
    "RecordingObserver",
    "NULL_OBSERVER",
    "MetricsRegistry",
    "QueryTrace",
    # performance model
    "BossTimingModel",
    "IIUTimingModel",
    "LuceneTimingModel",
    "ThroughputReport",
    # workloads
    "make_corpus",
    "QuerySampler",
    # live index mutation
    "SegmentedIndex",
    "LiveIndexWriter",
    "LiveServingTarget",
    "LiveStatistics",
    "MemSegment",
    "MergePolicy",
    "MergeScheduler",
    "UpdateResult",
    # durable live index
    "DurableLiveIndexWriter",
    "RecoveryReport",
    "WriteAheadLog",
    "recover_live_index",
    # fault injection
    "FaultConfig",
    "FaultyEngine",
    "ZERO_FAULTS",
    # serving
    "QueryServer",
    "ServingConfig",
    "ServingReport",
    "PoissonArrivals",
    "TraceArrivals",
    "zipf_workload",
    # clocks
    "WallClock",
    "VirtualClock",
    "WALL_CLOCK",
    # errors
    "ReproError",
    "CompressionError",
    "DecompressorProgramError",
    "InvertedIndexError",
    "QueryError",
    "ConfigurationError",
    "SimulationError",
    "FaultInjectionError",
    "CrashError",
    "LeafExecutionError",
]
