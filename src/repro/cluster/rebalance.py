"""Elastic shard rebalancing: split/merge/replica moves under traffic.

The paper's Figure 1(b) topology fixes the shard map at build time; a
production deployment cannot. This module makes the cluster elastic:
topology changes execute as *background maintenance traffic* — metered
sequential SCM reads of the moving interval's postings and sequential
writes of the rebuilt destination indexes — while the root keeps
serving, and the new shard map is installed in one atomic publish.

**Moves.** Three operations cover the elastic story:

* :class:`SplitShard` — one docID-interval shard becomes two at a chosen
  boundary (capacity: a hot shard splits so each half gets its own leaf);
* :class:`MergeShards` — two adjacent shards become one (consolidation:
  two cold intervals share a leaf);
* :class:`AddReplica` — a shard gains a failover engine, bootstrapped
  either by streaming the primary's postings or by replaying a WAL
  directory (the durable live index's op log — the path a rebooted leaf
  uses to catch up without touching the primary).

**Score identity.** Shard indexes carry corpus-global BM25 statistics
(:class:`~repro.index.builder.GlobalStatistics`), so a destination index
rebuilt from source postings must inherit them: the rebuild streams each
source list's postings and re-compresses them under the *source's stored
per-term IDF* and the *source's scorer* (global document-length
normalizers). A document therefore scores bit-identically before,
during, and after any move — the differential oracle pins cluster
rankings to the static monolith across the whole protocol.

**Protocol.** Every move walks ``planned -> streaming [-> catchup]
-> published``; the named kill-points ``rebalance_mid_stream``,
``rebalance_mid_catchup`` and ``rebalance_pre_publish``
(:data:`repro.faults.KILL_POINTS`) all sit *before* the publish, so a
crash anywhere mid-move cleanly aborts it: destinations being built off
to the side are abandoned, the old map keeps serving, and re-running the
move completes it. While a source shard streams, the root marks it
*draining* (:meth:`~repro.cluster.root.SearchCluster.set_draining`):
queries route replica-first around the busy primary via the existing
failover chain, with the primary as last resort.

**Conservation.** Each move's :class:`MoveReport` carries a byte/posting
conservation identity — every posting read out of a source must be
written into a destination, and the move's traffic counter must agree
with the reported byte totals — checked before publish and exported as
``rebalance.*`` metrics by the recording observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, CrashError, RebalanceError
from repro.index.builder import IndexBuilder
from repro.index.index import InvertedIndex
from repro.scm.traffic import AccessClass, AccessPattern, TrafficCounter

#: Protocol states a move walks through, in order.
MOVE_STATES = ("planned", "streaming", "catchup", "published")


# ----------------------------------------------------------------------
# Move operations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SplitShard:
    """Split shard ``shard`` into ``[lo, at_doc_id)`` and ``[at_doc_id, hi)``."""

    shard: int
    at_doc_id: int

    kind = "split"

    def describe(self) -> str:
        return f"split shard {self.shard} at doc {self.at_doc_id}"


@dataclass(frozen=True)
class MergeShards:
    """Merge shard ``shard`` with its right neighbour ``shard + 1``."""

    shard: int

    kind = "merge"

    def describe(self) -> str:
        return f"merge shards {self.shard}+{self.shard + 1}"


@dataclass(frozen=True)
class AddReplica:
    """Give shard ``shard`` one more failover engine.

    With ``wal_dir`` the replica bootstraps from that directory's
    write-ahead log (the shard's op stream as the durable writer logged
    it) instead of streaming the primary — and must pass a postings-level
    parity check against the primary before it joins the failover chain.
    """

    shard: int
    wal_dir: Optional[str] = None

    kind = "add_replica"

    def describe(self) -> str:
        source = f" from WAL {self.wal_dir}" if self.wal_dir else ""
        return f"add replica to shard {self.shard}{source}"


RebalanceOp = Union[SplitShard, MergeShards, AddReplica]


def parse_rebalance_script(text: str) -> List[Tuple[float, RebalanceOp]]:
    """Parse a rebalance script into ``(at_seconds, op)`` pairs.

    One op per line; blank lines and ``#`` comments are skipped. An
    optional leading ``@SECONDS`` token schedules the op on the serving
    timeline (default 0.0 — before traffic):

    .. code-block:: text

        @0.05 split 0 300
        @0.10 merge 1
        @0.20 add-replica 0
        @0.30 add-replica 2 /path/to/wal-dir
    """
    ops: List[Tuple[float, RebalanceOp]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        at = 0.0
        if parts[0].startswith("@"):
            try:
                at = float(parts[0][1:])
            except ValueError:
                raise RebalanceError(
                    f"line {lineno}: bad arrival time {parts[0]!r}"
                ) from None
            parts = parts[1:]
        if not parts:
            raise RebalanceError(f"line {lineno}: arrival time without an op")
        verb, args = parts[0], parts[1:]
        try:
            if verb == "split" and len(args) == 2:
                op: RebalanceOp = SplitShard(int(args[0]), int(args[1]))
            elif verb == "merge" and len(args) == 1:
                op = MergeShards(int(args[0]))
            elif verb == "add-replica" and len(args) in (1, 2):
                op = AddReplica(int(args[0]),
                                args[1] if len(args) == 2 else None)
            else:
                raise RebalanceError(
                    f"line {lineno}: unknown op {line!r} (expected "
                    f"'split SHARD DOC', 'merge SHARD', or "
                    f"'add-replica SHARD [WAL_DIR]')"
                )
        except ValueError:
            raise RebalanceError(
                f"line {lineno}: non-integer argument in {line!r}"
            ) from None
        ops.append((at, op))
    return ops


# ----------------------------------------------------------------------
# Move accounting
# ----------------------------------------------------------------------


@dataclass
class MoveReport:
    """What one rebalance move read, wrote, and published."""

    kind: str
    shard: int
    detail: str = ""
    #: Protocol states reached, in order (see :data:`MOVE_STATES`).
    states: List[str] = field(default_factory=list)
    #: Sequential LD List bytes streamed out of sources (or the WAL).
    read_bytes: int = 0
    #: Sequential ST Index bytes written into destinations.
    write_bytes: int = 0
    #: Postings streamed out of source indexes / the WAL op stream.
    postings_out: int = 0
    #: Postings written into destination indexes.
    postings_in: int = 0
    #: Modeled device seconds the maintenance traffic occupies.
    modeled_seconds: float = 0.0
    #: Shard-map version installed by the publish (0 = never published).
    map_version: int = 0
    #: True when a crash or validation failure abandoned the move.
    aborted: bool = False
    error: Optional[str] = None
    #: The move's own maintenance traffic, for device pricing.
    traffic: TrafficCounter = field(default_factory=TrafficCounter)

    def check_conservation(self) -> None:
        """Assert the move's byte/posting conservation identity.

        Every posting streamed out of a source must land in a
        destination, and the traffic counter must agree with the
        reported byte totals — a violation means the move lost or
        invented data and must not publish.
        """
        if self.postings_in != self.postings_out:
            raise RebalanceError(
                f"{self.detail}: conservation violated — "
                f"{self.postings_out} postings out of sources but "
                f"{self.postings_in} into destinations"
            )
        read = self.traffic.bytes_for(AccessClass.LD_LIST)
        written = self.traffic.bytes_for(AccessClass.ST_INDEX)
        if read != self.read_bytes or written != self.write_bytes:
            raise RebalanceError(
                f"{self.detail}: traffic disagrees with the report — "
                f"counter LD {read}B / ST {written}B vs reported "
                f"{self.read_bytes}B / {self.write_bytes}B"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "shard": self.shard,
            "detail": self.detail,
            "states": list(self.states),
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "postings_out": self.postings_out,
            "postings_in": self.postings_in,
            "modeled_seconds": self.modeled_seconds,
            "map_version": self.map_version,
            "aborted": self.aborted,
            "error": self.error,
        }


class _InheritedIdf:
    """Duck-typed ``GlobalStatistics`` replaying source-list IDFs.

    :class:`~repro.index.builder.IndexBuilder` consults exactly one
    method of its ``global_stats`` — ``idf(term, local_df)`` — so a
    rebuild can inherit the corpus-global IDF each source posting list
    already stores, keeping destination scores bit-identical to the
    sources'. Terms absent from every source (possible only for a WAL
    stream that outran its primary) fall back to the scorer's local IDF.
    """

    def __init__(self, idf_by_term: Dict[str, float], scorer) -> None:
        self._idf_by_term = idf_by_term
        self._scorer = scorer

    def idf(self, term: str, local_df: int) -> float:
        try:
            return self._idf_by_term[term]
        except KeyError:
            return self._scorer.idf(local_df)


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------


class Rebalancer:
    """Plans and executes topology moves over a live cluster.

    ``cluster`` is the serving :class:`~repro.cluster.root.SearchCluster`
    and ``sharded`` its :class:`~repro.cluster.sharding.ShardedCorpus`;
    both are updated in the atomic publish step. ``device`` prices the
    maintenance traffic (default: the 4-channel Optane node), ``clock``
    anchors the maintenance busy-window on the serving timeline, and
    ``crash`` arms the ``rebalance_*`` kill-points. ``engine_factory``
    builds a leaf engine over a destination index (default: a BOSS
    accelerator with top-``k`` = ``k``); ``schemes`` constrains the
    destination rebuilds' codec choice (pass the corpus's pinned codec
    for single-codec deployments).
    """

    def __init__(self, cluster, sharded, *, device=None, clock=None,
                 observer=None, crash=None, engine_factory=None,
                 schemes: Optional[Sequence[str]] = None,
                 k: int = 10) -> None:
        if device is None:
            from repro.scm.device import OPTANE_NODE_4CH

            device = OPTANE_NODE_4CH
        self._cluster = cluster
        self._sharded = sharded
        self._device = device
        self._clock = clock
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )
        self._crash = crash
        if crash is not None and clock is not None:
            crash.bind_clock(clock)
        self._schemes = list(schemes) if schemes is not None else None
        if engine_factory is None:
            from repro.core.engine import BossAccelerator, BossConfig

            config = BossConfig(k=k)

            def engine_factory(index):
                return BossAccelerator(index, config)

        self._engine_factory = engine_factory
        #: Timeline instant until which maintenance occupies the device.
        self.busy_until = 0.0
        #: Completed (or aborted) move reports, in execution order.
        self.reports: List[MoveReport] = []

    @property
    def map_version(self) -> int:
        return self._cluster.map_version

    @property
    def device(self):
        return self._device

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, op: RebalanceOp) -> MoveReport:
        """Run one move end to end; returns its :class:`MoveReport`.

        Raises :class:`~repro.errors.RebalanceError` on an invalid plan
        or a conservation/parity violation, and re-raises an injected
        :class:`~repro.errors.CrashError` after recording the abort —
        in both cases *nothing was published* and the old shard map is
        still serving.
        """
        self._validate(op)
        report = MoveReport(kind=op.kind, shard=op.shard,
                            detail=op.describe())
        drained = [op.shard]
        if isinstance(op, MergeShards):
            drained.append(op.shard + 1)
        self._step(report, op, "planned")
        for shard in drained:
            self._cluster.set_draining(shard, True)
        try:
            if isinstance(op, SplitShard):
                publish = self._split(op, report)
            elif isinstance(op, MergeShards):
                publish = self._merge(op, report)
            else:
                publish = self._add_replica(op, report)
            self._check(report, "rebalance_pre_publish")
            report.check_conservation()
        except BaseException as error:
            # Nothing published: drop the draining marks so the old map
            # serves exactly as before the move started, and record the
            # abort. The half-built destinations are garbage-collected.
            for shard in drained:
                self._cluster.set_draining(shard, False)
            report.aborted = True
            report.error = repr(error)
            self._finish(report)
            raise
        # Everything streamed and verified: install the new map in one
        # atomic step (which also clears the draining marks).
        publish()
        self._step(report, op, "published")
        self._finish(report)
        return report

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _validate(self, op: RebalanceOp) -> None:
        num_shards = self._sharded.num_shards
        if not 0 <= op.shard < num_shards:
            raise RebalanceError(
                f"{op.describe()}: no shard {op.shard} "
                f"(cluster has {num_shards})"
            )
        if isinstance(op, SplitShard):
            lo = self._sharded.boundaries[op.shard]
            hi = self._sharded.boundaries[op.shard + 1]
            if not lo < op.at_doc_id < hi:
                raise RebalanceError(
                    f"{op.describe()}: split point must fall strictly "
                    f"inside the shard's interval [{lo}, {hi})"
                )
        elif isinstance(op, MergeShards):
            if op.shard + 1 >= num_shards:
                raise RebalanceError(
                    f"{op.describe()}: shard {op.shard} has no right "
                    f"neighbour to merge with"
                )
        elif isinstance(op, AddReplica) and op.wal_dir is not None:
            if not Path(op.wal_dir).is_dir():
                raise RebalanceError(
                    f"{op.describe()}: WAL directory does not exist"
                )

    # ------------------------------------------------------------------
    # Streaming rebuilds
    # ------------------------------------------------------------------

    def _read_shard(self, index: InvertedIndex, report: MoveReport
                    ) -> Tuple[Dict[str, list], Dict[str, float]]:
        """Stream one source shard's postings (metered sequential reads)."""
        postings: Dict[str, list] = {}
        idf_by_term: Dict[str, float] = {}
        nbytes = 0
        for term in index.terms:
            plist = index.posting_list(term)
            decoded = [(p.doc_id, p.tf) for p in plist.decode_all()]
            postings[term] = decoded
            idf_by_term[term] = plist.idf
            nbytes += plist.compressed_bytes
            report.postings_out += len(decoded)
        report.traffic.record(AccessClass.LD_LIST,
                              AccessPattern.SEQUENTIAL, nbytes)
        report.read_bytes += nbytes
        return postings, idf_by_term

    def _build_destination(self, postings: Dict[str, list],
                           idf_by_term: Dict[str, float],
                           lo: int, hi: int, scorer,
                           report: MoveReport) -> InvertedIndex:
        """Rebuild the ``[lo, hi)`` interval (metered sequential writes)."""
        self._check(report, "rebalance_mid_stream")
        builder = IndexBuilder(schemes=self._schemes, scorer=scorer,
                               global_stats=_InheritedIdf(idf_by_term,
                                                          scorer))
        written = 0
        for term in sorted(postings):
            subset = [(doc_id, tf) for doc_id, tf in postings[term]
                      if lo <= doc_id < hi]
            if subset:
                builder.add_postings(term, subset)
                written += len(subset)
        index = builder.build()
        report.traffic.record(AccessClass.ST_INDEX,
                              AccessPattern.SEQUENTIAL,
                              index.compressed_bytes)
        report.write_bytes += index.compressed_bytes
        report.postings_in += written
        return index

    def _split(self, op: SplitShard, report: MoveReport) -> None:
        boundaries = self._sharded.boundaries
        lo, hi = boundaries[op.shard], boundaries[op.shard + 1]
        source = self._sharded.indexes[op.shard]
        self._step(report, op, "streaming")
        postings, idfs = self._read_shard(source, report)
        left = self._build_destination(postings, idfs, lo, op.at_doc_id,
                                       source.scorer, report)
        right = self._build_destination(postings, idfs, op.at_doc_id, hi,
                                        source.scorer, report)
        new_indexes = (self._sharded.indexes[:op.shard] + [left, right]
                       + self._sharded.indexes[op.shard + 1:])
        new_boundaries = (boundaries[:op.shard + 1] + [op.at_doc_id]
                          + boundaries[op.shard + 1:])
        return self._prepare_publish(report, new_indexes, new_boundaries,
                                     replaced=slice(op.shard, op.shard + 1),
                                     fresh=[left, right])

    def _merge(self, op: MergeShards, report: MoveReport) -> None:
        boundaries = self._sharded.boundaries
        lo, hi = boundaries[op.shard], boundaries[op.shard + 2]
        left_src = self._sharded.indexes[op.shard]
        right_src = self._sharded.indexes[op.shard + 1]
        self._step(report, op, "streaming")
        postings, idfs = self._read_shard(left_src, report)
        more, more_idfs = self._read_shard(right_src, report)
        for term, extra in more.items():
            # Disjoint docID intervals: concatenation stays sorted, and
            # both sources carry the same corpus-global IDF per term.
            postings.setdefault(term, []).extend(extra)
        idfs.update(more_idfs)
        merged = self._build_destination(postings, idfs, lo, hi,
                                         left_src.scorer, report)
        new_indexes = (self._sharded.indexes[:op.shard] + [merged]
                       + self._sharded.indexes[op.shard + 2:])
        new_boundaries = (boundaries[:op.shard + 1]
                          + boundaries[op.shard + 2:])
        return self._prepare_publish(report, new_indexes, new_boundaries,
                                     replaced=slice(op.shard, op.shard + 2),
                                     fresh=[merged])

    def _add_replica(self, op: AddReplica, report: MoveReport) -> None:
        primary = self._sharded.indexes[op.shard]
        self._step(report, op, "streaming")
        if op.wal_dir is None:
            postings, idfs = self._read_shard(primary, report)
        else:
            postings, idfs = self._bootstrap_from_wal(op, primary, report)
        lo = self._sharded.boundaries[op.shard]
        hi = self._sharded.boundaries[op.shard + 1]
        replica_index = self._build_destination(postings, idfs, lo, hi,
                                                primary.scorer, report)
        self._validate_parity(op, primary, replica_index)
        new_replicas = [list(group) for group in self._cluster.replicas]
        new_replicas[op.shard] = (new_replicas[op.shard]
                                  + [self._engine_factory(replica_index)])

        def publish():
            report.map_version = self._cluster.publish_topology(
                self._cluster.engines, new_replicas
            )

        return publish

    def _bootstrap_from_wal(self, op: AddReplica, primary: InvertedIndex,
                            report: MoveReport
                            ) -> Tuple[Dict[str, list], Dict[str, float]]:
        """Recover the shard's op stream from a WAL directory.

        Reuses the durable writer's log reader (:func:`repro.live.wal.
        read_wal` — framing, checksums, torn-tail detection) and its
        replay semantics for the mutation records: adds install a
        document, deletes remove it, and seal/merge records are segment
        bookkeeping a from-scratch replica does not need to reproduce
        (it serves one compacted index either way — the same equivalence
        the live layer's compaction oracle pins).
        """
        from collections import Counter

        from repro.live.durable import WAL_NAME
        from repro.live.wal import AddRecord, DeleteRecord, read_wal

        self._step(report, op, "catchup")
        scan = read_wal(Path(op.wal_dir) / WAL_NAME)
        report.traffic.record(AccessClass.LD_LIST,
                              AccessPattern.SEQUENTIAL, scan.valid_bytes)
        report.read_bytes += scan.valid_bytes
        docs: Dict[int, Tuple[str, ...]] = {}
        for record in scan.records:
            if isinstance(record, AddRecord):
                docs[record.doc_id] = record.tokens
            elif isinstance(record, DeleteRecord):
                docs.pop(record.doc_id, None)
        self._check(report, "rebalance_mid_catchup")
        postings: Dict[str, list] = {}
        count = 0
        for doc_id in sorted(docs):
            for term, tf in sorted(Counter(docs[doc_id]).items()):
                postings.setdefault(term, []).append((doc_id, tf))
                count += 1
        report.postings_out += count
        # IDF inheritance comes from the primary the replica will mirror.
        idfs = {
            term: primary.posting_list(term).idf
            for term in postings if term in primary
        }
        return postings, idfs

    def _validate_parity(self, op: AddReplica, primary: InvertedIndex,
                         replica: InvertedIndex) -> None:
        """A bootstrap replica must mirror its primary exactly.

        Postings-level comparison: same terms, same (docID, tf) streams,
        same per-term IDF. A WAL that diverged from the primary's op
        stream fails here and the replica never joins the failover
        chain.
        """
        if list(primary.terms) != list(replica.terms):
            raise RebalanceError(
                f"{op.describe()}: bootstrap replica term set diverges "
                f"from the primary ({len(list(replica.terms))} vs "
                f"{len(list(primary.terms))} terms)"
            )
        for term in primary.terms:
            ours = primary.posting_list(term)
            theirs = replica.posting_list(term)
            if (ours.decode_all() != theirs.decode_all()
                    or ours.idf != theirs.idf):
                raise RebalanceError(
                    f"{op.describe()}: bootstrap replica postings for "
                    f"term {term!r} diverge from the primary"
                )

    # ------------------------------------------------------------------
    # Publish + accounting
    # ------------------------------------------------------------------

    def _prepare_publish(self, report: MoveReport,
                         new_indexes: List[InvertedIndex],
                         new_boundaries: List[int],
                         replaced: slice, fresh: List[InvertedIndex]):
        """Stage the new shard map; returns the atomic install step.

        Builds replacement engine/replica lists off to the side (each
        fresh shard gets ``replication_factor - 1`` fresh replica
        engines over its immutable index). The returned closure installs
        everything in one step — the corpus's boundaries/indexes swap
        with the cluster's engine lists so routing
        (:meth:`~repro.cluster.sharding.ShardedCorpus.shard_of`) and
        serving agree on the same generation — and runs only after the
        pre-publish kill-point and the conservation check pass.
        """
        replication = self._sharded.replication_factor
        fresh_engines = [self._engine_factory(index) for index in fresh]
        fresh_replicas = [
            [self._engine_factory(index) for _ in range(replication - 1)]
            for index in fresh
        ]
        engines = list(self._cluster.engines)
        replicas = [list(group) for group in self._cluster.replicas]
        engines[replaced] = fresh_engines
        replicas[replaced] = fresh_replicas

        def publish():
            report.map_version = self._cluster.publish_topology(engines,
                                                                replicas)
            self._sharded.indexes = list(new_indexes)
            self._sharded.boundaries = list(new_boundaries)

        return publish

    def _check(self, report: MoveReport, point: str) -> None:
        if self._crash is not None:
            self._crash.check(point)

    def _step(self, report: MoveReport, op: RebalanceOp,
              state: str) -> None:
        report.states.append(state)
        if self._observer is not None:
            self._observer.on_rebalance_step(op.kind, op.shard, state)

    def _finish(self, report: MoveReport) -> None:
        report.modeled_seconds = self._device.service_time(report.traffic)
        now = self._clock.now() if self._clock is not None else 0.0
        self.busy_until = max(self.busy_until, now) + report.modeled_seconds
        self.reports.append(report)
        if self._observer is not None:
            self._observer.on_rebalance_complete(report)

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------

    @property
    def total_read_bytes(self) -> int:
        return sum(r.read_bytes for r in self.reports)

    @property
    def total_write_bytes(self) -> int:
        return sum(r.write_bytes for r in self.reports)

    @property
    def moves_published(self) -> int:
        return sum(1 for r in self.reports if not r.aborted)

    @property
    def moves_aborted(self) -> int:
        return sum(1 for r in self.reports if r.aborted)


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------


class RebalancingClusterTarget:
    """Serving-loop adapter: queries to the cluster, moves as updates.

    Follows the live layer's :class:`~repro.live.writer.LiveServingTarget`
    contract — ``search`` / ``apply_update`` / ``service_time`` — so both
    :class:`~repro.serving.server.QueryServer` and the planner's
    :class:`~repro.ioplanner.server.PlannedQueryServer` can serve it. A
    request whose ``update`` payload is ``("rebalance", op)`` executes
    the move at its arrival instant; the modeled maintenance seconds
    open a busy-window on the shared device, and queries landing inside
    it queue behind the move exactly as live-index queries queue behind
    a merge.
    """

    def __init__(self, cluster, rebalancer: Rebalancer) -> None:
        self.cluster = cluster
        self.rebalancer = rebalancer

    @property
    def engines(self):
        """Leaf engines of the *current* shard map (planner fan-out)."""
        return self.cluster.engines

    @property
    def replicas(self):
        return self.cluster.replicas

    def search(self, expression, k: Optional[int] = None):
        if k is None:
            return self.cluster.search(expression)
        return self.cluster.search(expression, k=k)

    def apply_update(self, request) -> MoveReport:
        kind, op = request.update
        if kind != "rebalance":
            raise ConfigurationError(
                f"rebalancing cluster target cannot apply {kind!r} "
                f"updates (only ('rebalance', op))"
            )
        clock = self.rebalancer._clock
        arrival = getattr(request, "arrival_seconds", None)
        if arrival is not None and clock is not None \
                and hasattr(clock, "advance"):
            lag = arrival - clock.now()
            if lag > 0:
                clock.advance(lag)
        return self.rebalancer.execute(op)

    def service_time(self, request, result) -> float:
        """Timeline service time for both request kinds.

        A move costs its modeled maintenance seconds; a query costs the
        modeled device read time of its traffic, extended by whatever
        remains of an in-flight move's busy-window (reads queue behind
        the maintenance stream on the shared device).
        """
        if isinstance(result, MoveReport):
            return result.modeled_seconds
        read_seconds = self.rebalancer.device.service_time(result.traffic)
        backlog = self.rebalancer.busy_until - request.arrival_seconds
        if backlog > 0:
            read_seconds += backlog
        return read_seconds


def rebalance_requests(ops: Sequence[Tuple[float, RebalanceOp]],
                       start_id: int = 1_000_000) -> list:
    """Wrap scheduled moves as serving-timeline update requests.

    Returns one :class:`~repro.serving.loadgen.Request` per ``(at, op)``
    pair, carrying ``update=("rebalance", op)`` — splice them into a
    query workload with :func:`repro.serving.loadgen.splice_requests`
    and the server will dispatch each move at its arrival instant.
    """
    from repro.serving.loadgen import Request

    return [
        Request(
            request_id=start_id + i,
            arrival_seconds=at,
            expression=f"<rebalance:{op.describe()}>",
            update=("rebalance", op),
        )
        for i, (at, op) in enumerate(sorted(ops, key=lambda pair: pair[0]))
    ]
