"""Distributed serving: root node + sharded leaf nodes (paper Fig. 1(b)).

A web-scale search service splits the inverted index into disjoint
docID-interval *shards*, one per leaf node; a root node fans a query out
to every leaf and merges their top-k results (Section II-B). In the
paper's deployment each leaf is one SCM memory node with a BOSS device.

* :mod:`repro.cluster.sharding` — interval sharding of a document
  collection, with corpus-global statistics distributed to shard
  builders so BM25 scores are identical to a monolithic index;
* :mod:`repro.cluster.root` — the root node: fan-out, leaf execution on
  any engine, score-ordered top-k merge, and aggregate traffic/latency
  accounting;
* :mod:`repro.cluster.resilience` — policy-driven resilient leaf
  execution: per-attempt timeouts, bounded retry with backoff, replica
  failover, and graceful degradation with degraded-result accounting;
* :mod:`repro.cluster.rebalance` — elastic topology: shard split/merge
  and replica add/catch-up as metered background maintenance traffic,
  with an atomic shard-map publish and named mid-move kill-points.
"""

from repro.cluster.rebalance import (
    AddReplica,
    MergeShards,
    MoveReport,
    RebalancingClusterTarget,
    Rebalancer,
    SplitShard,
    parse_rebalance_script,
    rebalance_requests,
)
from repro.cluster.resilience import (
    STRICT_POLICY,
    LeafOutcome,
    ResiliencePolicy,
    ResilienceStats,
)
from repro.cluster.root import ClusterSearchResult, SearchCluster
from repro.cluster.sharding import ShardedCorpus, shard_documents

__all__ = [
    "SearchCluster",
    "ClusterSearchResult",
    "ShardedCorpus",
    "shard_documents",
    "ResiliencePolicy",
    "ResilienceStats",
    "LeafOutcome",
    "STRICT_POLICY",
    "Rebalancer",
    "RebalancingClusterTarget",
    "MoveReport",
    "SplitShard",
    "MergeShards",
    "AddReplica",
    "parse_rebalance_script",
    "rebalance_requests",
]
