"""The root node: query fan-out and top-k merge over leaf shards.

Figure 1(b)'s serving topology: the root dissects a user query, sends it
to every leaf (each holding one shard), and merges the leaves' top-k
lists into the final answer. "The entire query processing is fully
parallelized across leaf nodes" — so cluster latency is the slowest
leaf plus the root's merge, and cluster traffic is the sum of the
leaves' (each leaf ships only its top-k back across the shared link
when the leaves are BOSS devices).

Because shard builders carry corpus-global statistics
(:class:`~repro.cluster.sharding.ShardedCorpus`), the merged result is
*identical* to querying a monolithic index — asserted by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.query import (
    QueryNode,
    flatten,
    parse_query,
    prune_query_scored,
)
from repro.cluster.resilience import (
    STRICT_POLICY,
    LeafOutcome,
    ResiliencePolicy,
    execute_leaf,
)
from repro.core.result import ScoredDocument, SearchResult
from repro.core.topk import DEFAULT_K
from repro.errors import ConfigurationError
from repro.scm.traffic import TrafficCounter
from repro.sim.metrics import WorkCounters


@dataclass
class ClusterSearchResult:
    """Merged outcome of one fanned-out query."""

    query: QueryNode
    hits: List[ScoredDocument]
    #: Per-shard raw results (None where the shard had no query terms
    #: — or, when :attr:`shards_failed` names it, failed outright).
    leaf_results: List[Optional[SearchResult]]
    #: Aggregate traffic across all leaves.
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    #: Aggregate work across all leaves.
    work: WorkCounters = field(default_factory=WorkCounters)
    #: Total bytes shipped to the root over the shared interconnect.
    interconnect_bytes: int = 0
    #: Root-side merge comparisons (host CPU work).
    merge_ops: int = 0
    #: Shard indices that exhausted retry + failover and were skipped.
    shards_failed: List[int] = field(default_factory=list)
    #: Leaf retries spent answering this query (across all shards).
    leaf_retries: int = 0
    #: Leaf attempts discarded for exceeding the per-attempt timeout.
    leaf_timeouts: int = 0
    #: Replica switches performed while answering this query.
    leaf_failovers: int = 0
    #: Per-shard resilience outcomes (None on the no-policy path).
    leaf_outcomes: Optional[List[Optional[LeafOutcome]]] = None

    @property
    def shards_touched(self) -> int:
        return sum(1 for r in self.leaf_results if r is not None)

    @property
    def degraded(self) -> bool:
        """True when the merge completed without at least one shard."""
        return bool(self.shards_failed)


class SearchCluster:
    """A root node over per-shard engines.

    ``engines`` is one search engine per shard — any object with a
    ``search(query, k)`` returning :class:`SearchResult` and an ``index``
    property (BOSS, IIU, or the Lucene model), so the cluster topology
    composes with every engine the library provides.

    ``policy`` configures resilient leaf execution (per-attempt timeout,
    bounded retry with backoff, failover, graceful degradation — see
    :mod:`repro.cluster.resilience`). The default
    :data:`~repro.cluster.resilience.STRICT_POLICY` preserves
    pre-resilience semantics: one attempt per shard, and a leaf failure
    raises a :class:`~repro.errors.LeafExecutionError` naming the
    (query, shard).

    ``replicas`` optionally supplies failover targets: ``replicas[i]``
    is the ordered list of backup engines for shard ``i`` (typically
    engines over the same shard index — see
    :meth:`~repro.cluster.sharding.ShardedCorpus` replication).

    ``clock`` supplies attempt timing and backoff sleeps for resilient
    leaf execution (default: the wall clock; tests pass a
    :class:`repro.clock.VirtualClock` to run fault scenarios in zero
    wall time).
    """

    def __init__(self, engines: List, observer=None,
                 policy: Optional[ResiliencePolicy] = None,
                 replicas: Optional[List[List]] = None,
                 clock=None) -> None:
        if not engines:
            raise ConfigurationError("cluster needs at least one leaf")
        self._engines = list(engines)
        self._policy = STRICT_POLICY if policy is None else policy
        self._clock = clock
        if replicas is None:
            self._replicas: List[List] = [[] for _ in self._engines]
        else:
            if len(replicas) != len(self._engines):
                raise ConfigurationError(
                    f"{len(replicas)} replica lists for "
                    f"{len(self._engines)} shards"
                )
            self._replicas = [list(group) for group in replicas]
        #: Observability hook for the root (leaves carry their own).
        self._observer = (
            observer if observer is not None and observer.enabled else None
        )
        #: Shards currently being rebalanced away from their primary.
        self._draining: set = set()
        #: Monotonic shard-map version; bumped by :meth:`publish_topology`.
        self._map_version = 0

    @property
    def num_leaves(self) -> int:
        return len(self._engines)

    @property
    def observer(self):
        """The root's observability hook (None when disabled)."""
        return self._observer

    @property
    def engines(self) -> List:
        """The per-shard leaf engines, in shard order."""
        return self._engines

    @property
    def policy(self) -> ResiliencePolicy:
        """The resilience policy governing leaf execution."""
        return self._policy

    @property
    def replicas(self) -> List[List]:
        """Per-shard failover engines (empty lists when unreplicated)."""
        return self._replicas

    @property
    def clock(self):
        """The clock resilient leaf execution runs on (None = wall)."""
        return self._clock

    @property
    def map_version(self) -> int:
        """Which shard-map generation this root is serving."""
        return self._map_version

    def shard_candidates(self, shard_index: int) -> List:
        """Primary-first engine chain for one shard.

        While a shard is *draining* (its primary is streaming a
        rebalance move — see :meth:`set_draining`) the chain is
        replica-first: queries route around the busy primary via the
        ordinary failover machinery, and the primary remains the chain's
        last resort so an unreplicated shard still answers. Shard
        indexes are immutable once built, so the reordering cannot
        change a ranking — only who serves it.
        """
        primary = [self._engines[shard_index]]
        replicas = self._replicas[shard_index]
        if shard_index in self._draining and replicas:
            return list(replicas) + primary
        return primary + list(replicas)

    def set_draining(self, shard_index: int, draining: bool = True) -> None:
        """Mark/unmark one shard's primary as busy with maintenance."""
        if not 0 <= shard_index < len(self._engines):
            raise ConfigurationError(f"no shard {shard_index}")
        if draining:
            self._draining.add(shard_index)
        else:
            self._draining.discard(shard_index)

    @property
    def draining(self) -> frozenset:
        """Shard indices currently routed replica-first."""
        return frozenset(self._draining)

    def publish_topology(self, engines: List,
                         replicas: Optional[List[List]] = None) -> int:
        """Atomically install a new shard map; returns its version.

        The rebalancer builds the replacement engine/replica lists off
        to the side (background maintenance traffic) and swaps them in
        here as one step — no query ever observes a half-moved topology,
        and a crash before this call leaves the old map serving.
        Draining marks are cleared: they refer to the outgoing map's
        shard indices.
        """
        if not engines:
            raise ConfigurationError("cluster needs at least one leaf")
        new_engines = list(engines)
        if replicas is None:
            new_replicas: List[List] = [[] for _ in new_engines]
        else:
            if len(replicas) != len(new_engines):
                raise ConfigurationError(
                    f"{len(replicas)} replica lists for "
                    f"{len(new_engines)} shards"
                )
            new_replicas = [list(group) for group in replicas]
        self._engines = new_engines
        self._replicas = new_replicas
        self._draining = set()
        self._map_version += 1
        return self._map_version

    def plan(self, query: Union[str, QueryNode]) -> "tuple":
        """Root-side query dissection: per-shard pruned sub-queries.

        Returns ``(node, per_shard)`` where ``per_shard[i]`` is the
        query shard ``i`` executes, or None when the shard holds none of
        the query's mandatory terms. Shared by :meth:`search` and the
        batched driver (:mod:`repro.batch`), which dispatches the
        per-shard executions to a worker pool itself.
        """
        node = parse_query(query) if isinstance(query, str) else flatten(query)
        return node, [
            _prune_for_shard(node, engine.index) for engine in self._engines
        ]

    def search(self, query: Union[str, QueryNode],
               k: int = DEFAULT_K) -> ClusterSearchResult:
        """Fan out, execute per shard (resiliently), merge top-k.

        Shards run under the cluster's :class:`ResiliencePolicy`: failed
        attempts retry with backoff, exhausted primaries fail over to
        replicas, and — under ``allow_degraded`` — a fully exhausted
        shard is skipped so the merge still completes (the result's
        ``shards_failed`` / ``degraded`` report the quality loss).
        """
        node, per_shard = self.plan(query)
        expression = str(node)

        leaf_results: List[Optional[SearchResult]] = []
        outcomes: List[Optional[LeafOutcome]] = []
        for shard_index, pruned in enumerate(per_shard):
            if pruned is None:
                leaf_results.append(None)
                outcomes.append(None)
                continue
            outcome = execute_leaf(
                self.shard_candidates(shard_index), pruned, k,
                self._policy, shard_index, expression=expression,
                observer=self._observer, clock=self._clock,
            )
            leaf_results.append(outcome.result)
            outcomes.append(outcome)
        return self.merge(node, leaf_results, k, outcomes=outcomes)

    def merge(self, node: QueryNode,
              leaf_results: List[Optional[SearchResult]],
              k: int = DEFAULT_K,
              outcomes: Optional[List[Optional[LeafOutcome]]] = None,
              ) -> ClusterSearchResult:
        """Root-side merge of per-shard results (deterministic).

        ``leaf_results`` must be in shard order; merge order is then
        independent of the execution order of the shards, so the batch
        driver's parallel runs produce bit-identical merged results.
        ``outcomes`` (when the resilient path ran) attributes failed
        shards and retry/timeout/failover counts to the merged result.
        """
        merged = ClusterSearchResult(query=node, hits=[],
                                     leaf_results=leaf_results)
        if outcomes is not None:
            merged.leaf_outcomes = outcomes
            for outcome in outcomes:
                if outcome is None:
                    continue
                merged.leaf_retries += outcome.retries
                merged.leaf_timeouts += outcome.timeouts
                merged.leaf_failovers += outcome.failovers
                if outcome.failed:
                    merged.shards_failed.append(outcome.shard_index)
        candidates: List[ScoredDocument] = []
        for result in leaf_results:
            if result is None:
                continue
            candidates.extend(result.hits)
            merged.traffic.merge(result.traffic)
            merged.work.merge(result.work)
            merged.interconnect_bytes += result.interconnect_bytes
        # Root-side merge: shards are disjoint docID intervals, so the
        # candidates are distinct documents; a score-ordered selection
        # suffices. Ties break toward the lower docID, matching the
        # ascending-arrival rule of the monolithic top-k queue.
        candidates.sort(key=lambda hit: (-hit.score, hit.doc_id))
        merged.hits = candidates[:k]
        merged.merge_ops = len(candidates)
        if self._observer is not None:
            self._observer.on_cluster_complete(merged)
        return merged


def _prune_for_shard(node: QueryNode,
                     index) -> Optional[QueryNode]:
    """Drop query terms a shard does not hold, preserving score parity.

    A missing term contributes no postings: it disappears from unions
    and annihilates intersections — per shard, without touching the
    global query semantics (the other shards still see the full query).

    Uses :func:`repro.core.query.prune_query_scored`, not the plain
    prune: annihilating an AND branch must not drop the branch's
    *present* terms from the shard's probe set, because the monolithic
    engine scores every query term a matching document contains.
    Under term-skewed sharding the naive prune under-scored documents
    matched through surviving OR branches; the scored rewrite keeps
    the merged cluster ranking identical to the monolith.
    """
    return prune_query_scored(node, lambda term: term in index)
