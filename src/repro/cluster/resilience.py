"""Resilient leaf execution: retry, timeout, failover, degradation.

The serving-at-scale literature treats leaf loss and tail latency as
first-class (a root that fans out to hundreds of leaves sees one of
them misbehave on essentially every query); this module gives the
cluster root a policy-driven execution core shared by the serial path
(:meth:`~repro.cluster.root.SearchCluster.search`) and the batched
driver (:func:`repro.batch.run_query_batch`):

* **bounded retry with exponential backoff** — each candidate engine
  gets ``1 + max_retries`` attempts; every attempt that follows a
  failure — the ``n``-th such attempt globally — first sleeps
  ``backoff_base_seconds * backoff_multiplier**(n - 1)``. The ladder
  carries across the failover boundary: a replica's first attempt
  follows the primary's last failure, so it backs off at the next rung
  rather than hammering the replica instantly (set
  ``reset_backoff_on_failover`` to restore the per-candidate ladder);
* **per-attempt timeout** — cooperative: the attempt runs to completion
  and its *result is discarded* when it exceeded ``timeout_seconds``
  (a Python thread cannot be interrupted mid-search; discarding the
  late answer models the root abandoning a straggler). Timed-out
  attempts consume retry budget like failures — except on the very
  last attempt of the last candidate, where the late-but-valid answer
  is *kept*: the timeout is still counted, but a query the leaf
  actually answered is never reported failed when no retry or replica
  remains to do better;
* **failover** — when a candidate exhausts its budget, execution moves
  to the shard's next replica with a fresh attempt budget (the backoff
  ladder, per the rule above, is *not* fresh);
* **graceful degradation** — when every replica is exhausted the shard
  is reported failed; under ``allow_degraded`` the root merges without
  it, otherwise a :class:`~repro.errors.LeafExecutionError` naming the
  (query, shard) is raised.

Time is read through an injectable :class:`repro.clock.Clock`
(defaulting to the wall clock): backoff sleeps and attempt timing both
go through it, so the fault-matrix tests drive retries and timeouts in
zero wall time with a :class:`repro.clock.VirtualClock`.

The no-op policy (:data:`STRICT_POLICY`: no timeout, no retries, no
degradation) takes a fast path that calls ``engine.search`` directly,
so an unconfigured cluster is bit-identical to pre-resilience behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.clock import WALL_CLOCK, Clock
from repro.errors import ConfigurationError, LeafExecutionError


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the root treats a misbehaving leaf."""

    #: Per-attempt wall-clock budget (None = wait forever).
    timeout_seconds: Optional[float] = None
    #: Extra attempts per candidate engine after the first.
    max_retries: int = 0
    #: First-retry backoff sleep; 0 disables backoff entirely.
    backoff_base_seconds: float = 0.0
    #: Backoff growth factor per further retry.
    backoff_multiplier: float = 2.0
    #: Merge without an exhausted shard (True) or raise (False).
    allow_degraded: bool = True
    #: Restart the backoff ladder (and skip the pre-first-attempt sleep)
    #: on each replica, instead of carrying it across the failover
    #: boundary. Off by default: an exhausted primary's replica should
    #: not be hit harder than the primary's own next retry would have.
    reset_backoff_on_failover: bool = False

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0:
            raise ConfigurationError("backoff base must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")

    @property
    def is_noop(self) -> bool:
        """True when the policy can never alter execution."""
        return (
            self.timeout_seconds is None
            and self.max_retries == 0
            and not self.allow_degraded
        )


#: Pre-resilience semantics: one attempt, no timeout, failure raises.
STRICT_POLICY = ResiliencePolicy(allow_degraded=False)


@dataclass
class LeafOutcome:
    """What happened executing one (query, shard) pair."""

    shard_index: int
    #: The merged-in result; None when the shard failed outright.
    result: Optional[object] = None
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    #: Replica switches (0 = the primary answered).
    failovers: int = 0
    failed: bool = False
    #: repr of the last error, for reports and traces.
    error: Optional[str] = None
    #: Wall-clock spent on this shard including retries and backoff.
    elapsed_seconds: float = 0.0
    #: Per-attempt wall-clock of the *answering* attempt only.
    attempt_seconds: float = 0.0

    def describe(self) -> str:
        """One report line, e.g. for the trace CLI."""
        state = "FAILED" if self.failed else "ok"
        detail = f" [{self.error}]" if self.failed and self.error else ""
        return (
            f"shard {self.shard_index}: {state} attempts={self.attempts} "
            f"retries={self.retries} timeouts={self.timeouts} "
            f"failovers={self.failovers} "
            f"elapsed={self.elapsed_seconds * 1e3:.2f}ms{detail}"
        )


@dataclass
class ResilienceStats:
    """Aggregate resilience accounting over one query or batch."""

    retries: int = 0
    timeouts: int = 0
    failovers: int = 0
    shards_failed: int = 0
    degraded_queries: int = 0

    def absorb(self, outcome: LeafOutcome) -> None:
        self.retries += outcome.retries
        self.timeouts += outcome.timeouts
        self.failovers += outcome.failovers
        if outcome.failed:
            self.shards_failed += 1

    def merge(self, other: "ResilienceStats") -> None:
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.failovers += other.failovers
        self.shards_failed += other.shards_failed
        self.degraded_queries += other.degraded_queries


def execute_leaf(candidates: List, pruned, k: int,
                 policy: ResiliencePolicy, shard_index: int,
                 expression: str = "", observer=None,
                 clock: Optional[Clock] = None) -> LeafOutcome:
    """Run one pruned sub-query against a shard's replica chain.

    ``candidates`` is the primary engine followed by its replicas.
    Raises :class:`LeafExecutionError` only when the shard exhausts and
    the policy forbids degradation; otherwise always returns an outcome
    (``failed=True`` marks an exhausted shard for the merge to skip).
    ``clock`` supplies attempt timing and backoff sleeps (wall clock by
    default).
    """
    if not candidates:
        raise ConfigurationError(f"shard {shard_index} has no engines")
    if clock is None:
        clock = WALL_CLOCK
    outcome = LeafOutcome(shard_index=shard_index)
    notify = observer if observer is not None and observer.enabled else None
    started = clock.now()
    last_error: Optional[BaseException] = None

    if policy.is_noop and len(candidates) == 1:
        # Bit-identical pre-resilience fast path: no timing wrapper
        # beyond the caller's own, failures wrapped and raised.
        try:
            attempt_start = clock.now()
            outcome.result = candidates[0].search(pruned, k=k)
            outcome.attempt_seconds = clock.now() - attempt_start
            outcome.attempts = 1
            outcome.elapsed_seconds = clock.now() - started
            return outcome
        except Exception as error:
            raise LeafExecutionError(
                f"query {expression!r} failed on shard {shard_index}: "
                f"{error!r}",
                shard_index=shard_index, expression=expression,
            ) from error

    backoff_step = 0
    for candidate_index, engine in enumerate(candidates):
        if candidate_index > 0:
            outcome.failovers += 1
            if notify is not None:
                notify.on_resilience_event("failover", shard_index)
            if policy.reset_backoff_on_failover:
                backoff_step = 0
        for attempt in range(policy.max_retries + 1):
            if attempt > 0:
                outcome.retries += 1
                if notify is not None:
                    notify.on_resilience_event("retry", shard_index)
            # Back off before every attempt that follows a failure:
            # retries, and — unless the policy resets the ladder on
            # failover — the next replica's first attempt, which follows
            # the primary's last failure.
            follows_failure = attempt > 0 or (
                candidate_index > 0 and not policy.reset_backoff_on_failover
            )
            if follows_failure and policy.backoff_base_seconds > 0:
                clock.sleep(
                    policy.backoff_base_seconds
                    * policy.backoff_multiplier ** backoff_step
                )
                backoff_step += 1
            outcome.attempts += 1
            attempt_start = clock.now()
            try:
                result = engine.search(pruned, k=k)
            except Exception as error:
                last_error = error
                continue
            attempt_seconds = clock.now() - attempt_start
            if (policy.timeout_seconds is not None
                    and attempt_seconds > policy.timeout_seconds):
                outcome.timeouts += 1
                if notify is not None:
                    notify.on_resilience_event("timeout", shard_index)
                budget_exhausted = (
                    candidate_index == len(candidates) - 1
                    and attempt == policy.max_retries
                )
                if budget_exhausted:
                    # A valid answer exists and nothing remains that
                    # could produce a timelier one — keep the late
                    # result (the timeout above is still counted)
                    # rather than degrading a query we answered.
                    outcome.result = result
                    outcome.attempt_seconds = attempt_seconds
                    outcome.elapsed_seconds = clock.now() - started
                    return outcome
                last_error = LeafExecutionError(
                    f"shard {shard_index} attempt took "
                    f"{attempt_seconds:.3f}s "
                    f"(timeout {policy.timeout_seconds:.3f}s)",
                    shard_index=shard_index, expression=expression,
                )
                continue
            outcome.result = result
            outcome.attempt_seconds = attempt_seconds
            outcome.elapsed_seconds = clock.now() - started
            return outcome

    outcome.failed = True
    outcome.error = repr(last_error) if last_error is not None else None
    outcome.elapsed_seconds = clock.now() - started
    if notify is not None:
        notify.on_resilience_event("shard_failed", shard_index)
    if not policy.allow_degraded:
        raise LeafExecutionError(
            f"query {expression!r} exhausted shard {shard_index} after "
            f"{outcome.attempts} attempts across {len(candidates)} "
            f"replica(s): {outcome.error}",
            shard_index=shard_index, expression=expression,
        ) from last_error
    return outcome


def describe_outcomes(outcomes: List[Optional[LeafOutcome]]) -> str:
    """Multi-line per-shard resilience report (trace CLI helper)."""
    lines = []
    for outcome in outcomes:
        if outcome is None:
            continue
        lines.append(outcome.describe())
    return "\n".join(lines) if lines else "(no shards executed)"
