"""Interval sharding of a document collection.

The paper (Sections II-B, IV-A): "the inverted index is divided into
multiple disjoint partitions, or shards, according to the intervals of
docIDs. Each leaf node holds a distinct shard and operates only on its
shard."

Shards here keep *global* docIDs (each shard's index simply contains the
postings of its interval), and every shard builder receives the
corpus-global document statistics, so a document scores identically
whether it is served by a shard or by a monolithic index — which tests
assert. Shard document-length tables cover the whole corpus (a few bytes
per document of replicated metadata, the standard trade for consistent
ranking).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.index.bm25 import BM25Parameters
from repro.index.builder import GlobalStatistics, IndexBuilder
from repro.index.index import InvertedIndex


class ShardedCorpus:
    """A document collection split into docID-interval shards.

    ``replication_factor`` models serving replication: each shard's
    index is held by that many leaf nodes (1 = unreplicated). Shard
    indexes are read-only once built, so replicas share the index
    object — what replication buys is *engine* redundancy (independent
    leaves the root can fail over between), which is exactly what
    :meth:`replica_indexes` feeds.
    """

    def __init__(self, indexes: Sequence[InvertedIndex],
                 boundaries: Sequence[int],
                 replication_factor: int = 1) -> None:
        if len(boundaries) != len(indexes) + 1:
            raise ConfigurationError(
                "boundaries must bracket every shard"
            )
        for i in range(len(boundaries) - 1):
            if boundaries[i] >= boundaries[i + 1]:
                raise ConfigurationError(
                    f"shard boundaries must be strictly increasing; "
                    f"boundaries[{i}]={boundaries[i]} >= "
                    f"boundaries[{i + 1}]={boundaries[i + 1]}"
                )
        if replication_factor < 1:
            raise ConfigurationError(
                f"replication factor must be >= 1, got {replication_factor}"
            )
        self.indexes = list(indexes)
        #: ``boundaries[i] .. boundaries[i+1]-1`` is shard i's interval.
        self.boundaries = list(boundaries)
        #: Leaf nodes holding each shard (1 = no replicas).
        self.replication_factor = replication_factor

    @property
    def num_shards(self) -> int:
        return len(self.indexes)

    @property
    def num_leaf_nodes(self) -> int:
        """Total leaf nodes the deployment needs (shards x replicas)."""
        return self.num_shards * self.replication_factor

    def replica_indexes(self, shard_index: int) -> List[InvertedIndex]:
        """The *backup* copies of one shard's index.

        Returns ``replication_factor - 1`` entries (the primary is not
        repeated) — build one engine per entry and hand the per-shard
        lists to :class:`~repro.cluster.root.SearchCluster` as
        ``replicas``.
        """
        if not 0 <= shard_index < self.num_shards:
            raise ConfigurationError(f"no shard {shard_index}")
        return [
            self.indexes[shard_index]
            for _ in range(self.replication_factor - 1)
        ]

    def shard_of(self, doc_id: int) -> int:
        """Index of the shard holding ``doc_id`` (O(log shards))."""
        if not self.boundaries[0] <= doc_id < self.boundaries[-1]:
            raise ConfigurationError(f"docID {doc_id} outside every shard")
        return bisect_right(self.boundaries, doc_id) - 1


def shard_documents(documents: Iterable[Sequence[str]], num_shards: int,
                    params: Optional[BM25Parameters] = None,
                    schemes: Optional[Sequence[str]] = None,
                    replication_factor: int = 1) -> ShardedCorpus:
    """Index ``documents`` into ``num_shards`` docID-interval shards.

    Pass 1 computes the corpus-global statistics (document lengths and
    term dfs — the root's bookkeeping); pass 2 builds one index per
    contiguous docID interval, each seeded with those global statistics.
    ``replication_factor`` marks how many leaf nodes serve each shard
    (see :class:`ShardedCorpus`); the index is built once per shard.
    """
    if num_shards <= 0:
        raise ConfigurationError("need at least one shard")
    params = BM25Parameters() if params is None else params
    docs: List[List[str]] = [list(tokens) for tokens in documents]
    if len(docs) < num_shards:
        raise ConfigurationError(
            f"cannot split {len(docs)} documents into {num_shards} shards"
        )

    # Pass 1: global statistics.
    doc_lengths = [len(tokens) for tokens in docs]
    term_dfs: Counter = Counter()
    for tokens in docs:
        term_dfs.update(set(tokens))
    stats = GlobalStatistics(num_docs=len(docs), term_dfs=dict(term_dfs))

    # Pass 2: per-interval shard indexes with global docIDs.
    base = 0
    boundaries = [0]
    indexes: List[InvertedIndex] = []
    per_shard = (len(docs) + num_shards - 1) // num_shards
    while base < len(docs):
        end = min(len(docs), base + per_shard)
        builder = IndexBuilder(params=params, schemes=schemes,
                               global_stats=stats)
        builder.declare_documents(doc_lengths)
        shard_postings: dict = {}
        for doc_id in range(base, end):
            for term, tf in Counter(docs[doc_id]).items():
                shard_postings.setdefault(term, []).append((doc_id, tf))
        for term in sorted(shard_postings):
            builder.add_postings(term, shard_postings[term])
        indexes.append(builder.build())
        boundaries.append(end)
        base = end
    return ShardedCorpus(indexes, boundaries,
                         replication_factor=replication_factor)
