"""Cluster-level timing: latency and throughput across leaves.

Leaves process a fanned-out query in parallel (Section II-B: "the
entire query processing is fully parallelized across leaf nodes"), so
cluster latency is the slowest leaf plus the root's merge; cluster
throughput multiplies per-leaf throughput by the leaf count until the
shared host link binds on the returning top-k streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.root import ClusterSearchResult
from repro.errors import ConfigurationError
from repro.scm.interconnect import CXL_LINK, InterconnectModel

#: Host CPU cost per candidate in the root's score-ordered merge.
ROOT_MERGE_SECONDS_PER_CANDIDATE = 20e-9


@dataclass(frozen=True)
class ClusterLatencyReport:
    """Latency decomposition for one fanned-out query."""

    slowest_leaf_seconds: float
    link_seconds: float
    merge_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.slowest_leaf_seconds + self.link_seconds
                + self.merge_seconds)


class ClusterTimingModel:
    """Latency/throughput over per-leaf timing models.

    ``leaf_models`` must align with the cluster's engines (one timing
    model per leaf, typically all identical BOSS models).
    """

    def __init__(self, leaf_models: Sequence,
                 interconnect: InterconnectModel = CXL_LINK) -> None:
        if not leaf_models:
            raise ConfigurationError("need at least one leaf model")
        self._leaf_models = list(leaf_models)
        self._interconnect = interconnect

    def query_latency(self,
                      merged: ClusterSearchResult) -> ClusterLatencyReport:
        """Latency of one fanned-out query."""
        if len(merged.leaf_results) != len(self._leaf_models):
            raise ConfigurationError(
                "leaf results do not match leaf models"
            )
        slowest = 0.0
        for model, result in zip(self._leaf_models, merged.leaf_results):
            if result is None:
                continue
            slowest = max(slowest, model.query_seconds(result))
        link = self._interconnect.transfer_time(merged.interconnect_bytes)
        merge = merged.merge_ops * ROOT_MERGE_SECONDS_PER_CANDIDATE
        return ClusterLatencyReport(
            slowest_leaf_seconds=slowest,
            link_seconds=link,
            merge_seconds=merge,
        )

    def batch_throughput_qps(self, merged_batch: Sequence[ClusterSearchResult],
                             cores_per_leaf: int = 8) -> float:
        """Aggregate cluster QPS for a batch of fanned-out queries.

        Each leaf runs its slice of every query; leaf time parallelizes,
        the host link serializes the top-k returns and the root merge
        runs on one host core.
        """
        if not merged_batch:
            raise ConfigurationError("empty batch")
        num_leaves = len(self._leaf_models)
        leaf_seconds = [0.0] * num_leaves
        link_bytes = 0
        merge_ops = 0
        for merged in merged_batch:
            for i, (model, result) in enumerate(
                zip(self._leaf_models, merged.leaf_results)
            ):
                if result is None:
                    continue
                leaf_seconds[i] += max(
                    model.compute_seconds(result) / cores_per_leaf,
                    model.memory_seconds(result),
                )
            link_bytes += merged.interconnect_bytes
            merge_ops += merged.merge_ops
        batch_seconds = max(
            max(leaf_seconds),
            self._interconnect.transfer_time(link_bytes),
            merge_ops * ROOT_MERGE_SECONDS_PER_CANDIDATE,
        )
        if batch_seconds <= 0:
            raise ConfigurationError("batch produced zero simulated time")
        return len(merged_batch) / batch_seconds
