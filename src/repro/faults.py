"""Deterministic, seeded fault injection for cluster leaf engines.

Production deployments of the paper's Figure 1(b) topology lose leaves,
see latency spikes, and serve from corrupted media; this module lets the
reproduction study those regimes *deterministically*. A
:class:`FaultyEngine` wraps any leaf engine (BOSS, IIU, Lucene model)
and injects, per logical query:

* **latency spikes** — the attempt completes but takes an extra
  configurable wall-clock delay (drives the cluster's per-leaf timeout);
* **transient failures** — the first ``transient_failure_attempts``
  attempts of an afflicted query raise
  :class:`~repro.errors.FaultInjectionError`, then the query succeeds
  (drives the retry path);
* **permanent leaf death** — after ``permanent_failure_after`` logical
  queries every attempt raises (drives failover and degradation);
* **payload corruption** — an afflicted query decodes a *truncated*
  copy of a real compressed block payload through the leaf's own codec,
  raising the strict :class:`~repro.errors.CompressionError` the codecs
  guarantee on malformed input; corruption persists across attempts
  (the bytes on media stay bad), so only failover to a replica cures it.

Every decision is a pure function of ``(seed, shard_id, query key)`` —
repeated runs, and retries of the same query, see the same schedule.
The zero-fault configuration (:meth:`FaultConfig.zero_fault`) is a pure
pass-through: ``search()`` delegates directly with no RNG draws, no
sleeps, and no bookkeeping, so results are bit-identical to the
unwrapped engine (pinned by the differential suite).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.clock import WALL_CLOCK
from repro.errors import (
    CompressionError,
    ConfigurationError,
    CrashError,
    FaultInjectionError,
)

#: The named process-death boundaries the durable live index exposes
#: (:mod:`repro.live.durable`). Every boundary is *after* the previous
#: durable step and *before* the next one, so together they cover each
#: window in which a crash leaves disk and memory disagreeing:
#:
#: ``before_seal``              buffer full, nothing durable yet
#: ``after_seal_pre_manifest``  segment file + WAL record durable,
#:                              manifest still points at the old set
#: ``mid_merge``                merge compute started, nothing durable
#: ``after_merge_pre_commit``   merge output + WAL record durable,
#:                              manifest/inputs not yet swapped
#: ``mid_wal_append``           a torn frame tail reaches the log
#: ``mid_recovery``             recovery itself dies (double crash)
#:
#: The elastic-cluster rebalancer (:mod:`repro.cluster.rebalance`) adds
#: three boundaries of its own. Every one is *before* the atomic map
#: publish, so a crash at any of them cleanly aborts the move — the old
#: shard map keeps serving, and re-running the move completes it:
#:
#: ``rebalance_mid_stream``     a destination index is part-built
#: ``rebalance_mid_catchup``    a WAL-bootstrap replica is part-replayed
#: ``rebalance_pre_publish``    destinations complete, map not yet swapped
KILL_POINTS = (
    "before_seal",
    "after_seal_pre_manifest",
    "mid_merge",
    "after_merge_pre_commit",
    "mid_wal_append",
    "mid_recovery",
    "rebalance_mid_stream",
    "rebalance_mid_catchup",
    "rebalance_pre_publish",
)


class CrashSchedule:
    """Deterministic process-death schedule for durability tests.

    Arms at most one kill-point: the ``occurrence``-th time execution
    reaches ``kill_point`` (counting from 1), :meth:`check` raises
    :class:`~repro.errors.CrashError` — after which the schedule is
    spent and never fires again, so the recovery that follows can reuse
    the writer configuration safely. ``kill_point=None`` is the inert
    schedule: every probe just counts.

    ``min_clock_seconds`` defers the kill until the bound clock (see
    :meth:`bind_clock`) has reached that virtual instant, which lets
    serving-timeline tests place a crash *in time* rather than by
    occurrence index alone.

    For ``mid_wal_append`` the death happens *inside* the frame write:
    :meth:`wal_tear` hands the log a deterministic (seeded) torn prefix
    — or, with ``torn_mode="corrupt"``, a bit-flipped copy — of the
    frame, so recovery must detect the damage via framing/checksum.
    """

    def __init__(self, kill_point: Optional[str] = None,
                 occurrence: int = 1, *, seed: int = 0,
                 torn_mode: str = "truncate",
                 min_clock_seconds: float = 0.0) -> None:
        if kill_point is not None and kill_point not in KILL_POINTS:
            raise ConfigurationError(
                f"unknown kill point {kill_point!r} "
                f"(known: {', '.join(KILL_POINTS)})"
            )
        if occurrence < 1:
            raise ConfigurationError("occurrence counts from 1")
        if torn_mode not in ("truncate", "corrupt"):
            raise ConfigurationError(
                f"torn_mode must be 'truncate' or 'corrupt', "
                f"got {torn_mode!r}"
            )
        self.kill_point = kill_point
        self.occurrence = occurrence
        self.seed = seed
        self.torn_mode = torn_mode
        self.min_clock_seconds = min_clock_seconds
        #: Probe counts per kill-point name (fired or not).
        self.counts: dict = {}
        self.fired = False
        self._clock = None

    def bind_clock(self, clock) -> None:
        """Attach the clock that gates ``min_clock_seconds``."""
        self._clock = clock

    def _hit(self, point: str) -> bool:
        self.counts[point] = self.counts.get(point, 0) + 1
        if self.fired or point != self.kill_point:
            return False
        if (self.min_clock_seconds > 0.0 and self._clock is not None
                and self._clock.now() < self.min_clock_seconds):
            return False
        return self.counts[point] >= self.occurrence

    def die(self, point: str) -> None:
        """Raise the crash for ``point`` unconditionally."""
        self.fired = True
        raise CrashError(
            f"injected crash at {point} "
            f"(occurrence {self.counts.get(point, 0)})",
            kill_point=point,
            occurrence=self.counts.get(point, 0),
        )

    def check(self, point: str) -> None:
        """Probe one kill-point; raises when the schedule fires."""
        if self._hit(point):
            self.die(point)

    def wal_tear(self, frame: bytes) -> Optional[bytes]:
        """Damaged bytes to write in place of ``frame``, if armed.

        Returns ``None`` when this append survives. Otherwise the
        caller writes the returned bytes and then :meth:`die`\\ s: a
        seeded strict prefix of the frame (``torn_mode="truncate"``) or
        the full frame with one payload byte flipped (``"corrupt"``),
        both guaranteed invalid under the frame checksum.
        """
        if not self._hit("mid_wal_append"):
            return None
        rng = random.Random(
            f"tear:{self.seed}:{self.counts['mid_wal_append']}"
        )
        if self.torn_mode == "corrupt" and len(frame) > 8:
            index = rng.randrange(8, len(frame))
            return (frame[:index] + bytes([frame[index] ^ 0x5A])
                    + frame[index + 1:])
        return frame[:rng.randrange(1, len(frame))]


@dataclass(frozen=True)
class FaultConfig:
    """Seeded fault schedule for one wrapped leaf engine.

    Probabilities are per *logical query* (retries of the same query
    re-evaluate the same draw, not a fresh one). All fields default to
    the zero-fault configuration.
    """

    seed: int = 0
    #: P(an afflicted query completes but sleeps ``latency_spike_seconds``).
    latency_spike_probability: float = 0.0
    latency_spike_seconds: float = 0.0
    #: P(a query's first attempts raise a transient fault).
    transient_failure_probability: float = 0.0
    #: How many attempts of an afflicted query fail before succeeding.
    transient_failure_attempts: int = 1
    #: Logical queries after which the leaf dies for good (None = never).
    permanent_failure_after: Optional[int] = None
    #: P(a query hits a corrupted compressed payload — persistent).
    corruption_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("latency_spike_probability",
                     "transient_failure_probability",
                     "corruption_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {p}"
                )
        if self.latency_spike_seconds < 0:
            raise ConfigurationError("latency spike must be >= 0 seconds")
        if self.transient_failure_attempts < 1:
            raise ConfigurationError(
                "transient faults must fail at least one attempt"
            )
        if (self.permanent_failure_after is not None
                and self.permanent_failure_after < 0):
            raise ConfigurationError(
                "permanent_failure_after must be >= 0 (or None)"
            )

    @property
    def zero_fault(self) -> bool:
        """True when this schedule can never perturb execution."""
        return (
            self.latency_spike_probability == 0.0
            and self.transient_failure_probability == 0.0
            and self.corruption_probability == 0.0
            and self.permanent_failure_after is None
        )


#: The guaranteed-pass-through schedule.
ZERO_FAULTS = FaultConfig()


@dataclass
class FaultStats:
    """What a :class:`FaultyEngine` actually injected."""

    latency_spikes: int = 0
    transient_failures: int = 0
    permanent_failures: int = 0
    corruptions: int = 0
    #: Logical (first-attempt) queries seen.
    queries: int = 0
    #: Total search() attempts, including retries.
    attempts: int = 0

    @property
    def total_faults(self) -> int:
        return (self.transient_failures + self.permanent_failures
                + self.corruptions)


class FaultyEngine:
    """A leaf engine wrapper that injects a deterministic fault schedule.

    Exposes the same duck-typed surface the cluster relies on
    (``search(query, k)`` plus attribute delegation for ``index``,
    ``observer``, ``config``, ...), so it can stand wherever a real
    engine does.

    ``clock`` performs the latency-spike sleeps (wall clock by
    default); the fault-matrix tests pass a
    :class:`repro.clock.VirtualClock` so spikes cost no real time.
    """

    def __init__(self, engine, faults: FaultConfig = ZERO_FAULTS,
                 shard_id: int = 0, clock=None) -> None:
        self._engine = engine
        self._faults = faults
        self._clock = WALL_CLOCK if clock is None else clock
        self.shard_id = shard_id
        self.stats = FaultStats()
        #: Attempt count per logical-query key (retries re-key here).
        self._attempts_by_key: dict = {}

    @property
    def engine(self):
        """The wrapped leaf engine."""
        return self._engine

    @property
    def faults(self) -> FaultConfig:
        return self._faults

    def __getattr__(self, name):
        # Everything the wrapper does not define delegates to the leaf
        # (index, observer, decoded_cache, config, ...).
        return getattr(self._engine, name)

    # ------------------------------------------------------------------
    # Fault schedule
    # ------------------------------------------------------------------

    @staticmethod
    def _query_key(query) -> str:
        return query if isinstance(query, str) else str(query)

    def _draws(self, key: str) -> tuple:
        """The (spike, transient, corrupt) decisions for one query key.

        Uses a CRC32 of the key (stable across processes, unlike
        ``hash()``) mixed with the seed and shard id, so the schedule is
        reproducible and independent of arrival order.
        """
        faults = self._faults
        rng = random.Random(
            f"{faults.seed}:{self.shard_id}:{zlib.crc32(key.encode('utf-8'))}"
        )
        spike = rng.random() < faults.latency_spike_probability
        transient = rng.random() < faults.transient_failure_probability
        corrupt = rng.random() < faults.corruption_probability
        return spike, transient, corrupt

    def would_fault(self, query) -> bool:
        """Whether ``query`` is on the (non-permanent) fault schedule."""
        if self._faults.zero_fault:
            return False
        _spike, transient, corrupt = self._draws(self._query_key(query))
        return transient or corrupt

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def search(self, query, k: Optional[int] = None):
        if self._faults.zero_fault:
            return self._engine.search(query, k=k)

        key = self._query_key(query)
        attempt = self._attempts_by_key.get(key, 0)
        self._attempts_by_key[key] = attempt + 1
        self.stats.attempts += 1
        if attempt == 0:
            self.stats.queries += 1

        faults = self._faults
        if (faults.permanent_failure_after is not None
                and self.stats.queries > faults.permanent_failure_after):
            self.stats.permanent_failures += 1
            raise FaultInjectionError(
                f"shard {self.shard_id}: leaf is dead (died after "
                f"{faults.permanent_failure_after} queries)",
                kind="permanent",
            )

        spike, transient, corrupt = self._draws(key)
        if corrupt:
            self.stats.corruptions += 1
            self._raise_corrupted(query)
        if transient and attempt < faults.transient_failure_attempts:
            self.stats.transient_failures += 1
            raise FaultInjectionError(
                f"shard {self.shard_id}: transient failure on "
                f"{key!r} (attempt {attempt + 1})",
                kind="transient",
            )
        if spike and faults.latency_spike_seconds > 0:
            self.stats.latency_spikes += 1
            self._clock.sleep(faults.latency_spike_seconds)
        return self._engine.search(query, k=k)

    def _raise_corrupted(self, query) -> None:
        """Decode a truncated real payload through the leaf's codec.

        Exercises the codecs' strict malformed-input paths: the first
        query term's first block payload is cut short and fed back to
        the scheme's own decoder, which must raise
        :class:`CompressionError`. If the truncation happens to still
        parse, the injection raises explicitly — corruption is part of
        the schedule either way.
        """
        term = self._pick_term(query)
        if term is not None:
            plist = self._engine.index.posting_list(term)
            block = plist.blocks[0]
            payload = block.doc_payload
            truncated = payload[:max(0, len(payload) - 1)]
            try:
                plist.codec.decode_block(truncated, block.metadata.count)
            except CompressionError as error:
                raise CompressionError(
                    f"shard {self.shard_id}: corrupted payload for term "
                    f"{term!r} block 0: {error}"
                ) from error
        raise CompressionError(
            f"shard {self.shard_id}: corrupted payload for query "
            f"{self._query_key(query)!r}"
        )

    def _pick_term(self, query) -> Optional[str]:
        terms = (
            query.terms() if hasattr(query, "terms") else None
        )
        if terms is None:
            from repro.core.query import parse_query

            try:
                terms = parse_query(query).terms()
            except Exception:
                return None
        index = self._engine.index
        for term in terms:
            if term in index and index.posting_list(term).blocks:
                return term
        return None


def wrap_shards(engines, faults: Union[FaultConfig, list, tuple],
                clock=None) -> list:
    """Wrap a cluster's leaf engines in :class:`FaultyEngine` instances.

    ``faults`` is one :class:`FaultConfig` applied to every shard, or a
    per-shard sequence where ``None`` entries get the zero-fault
    schedule. Shard ids follow list order, matching cluster indices.
    ``clock`` is shared by every wrapper (latency-spike sleeps).
    """
    if isinstance(faults, FaultConfig):
        faults = [faults] * len(engines)
    if len(faults) != len(engines):
        raise ConfigurationError(
            f"{len(faults)} fault configs for {len(engines)} shards"
        )
    return [
        FaultyEngine(engine, config if config is not None else ZERO_FAULTS,
                     shard_id=i, clock=clock)
        for i, (engine, config) in enumerate(zip(engines, faults))
    ]


def make_faulty_cluster(documents, num_shards: int, *,
                        faults: Union[FaultConfig, list, tuple] = ZERO_FAULTS,
                        policy=None, replication_factor: int = 1,
                        k: int = 10, observer=None,
                        replica_faults: Optional[FaultConfig] = None,
                        clock=None):
    """Build a fault-injected, resilient cluster over ``documents``.

    The shared assembly behind the fault-tolerance benchmark, the CLI's
    cluster modes, and the fault-matrix tests: shard the documents
    (building each shard index once), stand up one BOSS engine per
    shard wrapped in a :class:`FaultyEngine`, and give every shard
    ``replication_factor - 1`` replica engines over the *same* shard
    index — each replica with its own fault-schedule stream, so a
    primary's corruption does not afflict its backups. ``faults`` is
    one config for every shard or a per-shard list; ``replica_faults``
    overrides the replicas' schedule (e.g. ``ZERO_FAULTS`` to study
    failover out of a dying primary). ``clock`` is shared by the fault
    wrappers (spike sleeps) and the cluster's resilience path (backoff
    sleeps, attempt timing); the default is the wall clock.

    Returns ``(cluster, sharded_corpus)``.
    """
    from repro.cluster.root import SearchCluster
    from repro.cluster.sharding import shard_documents
    from repro.core.engine import BossAccelerator, BossConfig

    sharded = shard_documents(documents, num_shards,
                              replication_factor=replication_factor)
    if isinstance(faults, FaultConfig):
        per_shard = [faults] * sharded.num_shards
    else:
        per_shard = [
            config if config is not None else ZERO_FAULTS
            for config in faults
        ]
    config = BossConfig(k=k)
    primaries = wrap_shards(
        [BossAccelerator(index, config) for index in sharded.indexes],
        per_shard, clock=clock,
    )
    replicas = []
    for shard_index in range(sharded.num_shards):
        group = []
        for rank, index in enumerate(sharded.replica_indexes(shard_index)):
            group.append(FaultyEngine(
                BossAccelerator(index, config),
                (replica_faults if replica_faults is not None
                 else per_shard[shard_index]),
                # Distinct stream per replica: same schedule *shape*,
                # independent draws from the primary's.
                shard_id=(rank + 1) * sharded.num_shards + shard_index,
                clock=clock,
            ))
        replicas.append(group)
    cluster = SearchCluster(primaries, observer=observer, policy=policy,
                            replicas=replicas, clock=clock)
    return cluster, sharded
