"""Simple16 (S16) codec.

S16 (Zhang, Long & Suel [73] in the paper) packs as many integers as
possible into each 32-bit word: a 4-bit mode selector chooses one of 16
fixed field layouts for the remaining 28 payload bits. Mixed-width modes
(e.g. seven 2-bit fields followed by fourteen 1-bit fields) let the scheme
adapt to locally clustered value magnitudes, which is why S16 wins on the
paper's *dense* and *clustered* synthetic streams in Figure 3.

The encoder is greedy: for each output word it picks the first mode whose
field widths accommodate the next run of values. Values must fit in 28
bits; wider values are a :class:`CompressionError` (the index layer routes
such blocks to another scheme via the hybrid selector).

The final word of a stream may be partially filled; unused fields are
zero-padded, and the decoder relies on the caller-supplied ``count`` to
stop — mirroring the element-count field of the paper's block metadata.
"""

from __future__ import annotations

import struct
from array import array
from typing import List, Sequence, Tuple

import numpy as np

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.errors import CompressionError

#: The 16 field layouts. Each entry lists the field widths of one mode and
#: sums to exactly 28 bits. Ordered from narrowest (most values per word)
#: to widest so the greedy encoder prefers denser packings.
S16_MODES: Tuple[Tuple[int, ...], ...] = (
    (1,) * 28,
    (2,) * 7 + (1,) * 14,
    (1,) * 7 + (2,) * 7 + (1,) * 7,
    (1,) * 14 + (2,) * 7,
    (2,) * 14,
    (4,) * 1 + (3,) * 8,
    (3,) * 1 + (4,) * 4 + (3,) * 3,
    (4,) * 7,
    (5,) * 4 + (4,) * 2,
    (4,) * 2 + (5,) * 4,
    (6,) * 3 + (5,) * 2,
    (5,) * 2 + (6,) * 3,
    (7,) * 4,
    (9,) * 2 + (10,) * 1,
    (14,) * 2,
    (28,) * 1,
)

assert all(sum(mode) == 28 for mode in S16_MODES)


def _layout(mode: Tuple[int, ...]) -> Tuple[Tuple[int, int], ...]:
    """Per-field ``(shift, mask)`` pairs for one mode's word layout."""
    pairs = []
    shift = 4
    for width in mode:
        pairs.append((shift, (1 << width) - 1))
        shift += width
    return tuple(pairs)


#: Bulk-decode dispatch table: selector -> ((shift, mask), ...).
_S16_LAYOUTS = tuple(_layout(mode) for mode in S16_MODES)

#: Columnar dispatch tables: fields per selector, and per selector the
#: shift / mask vectors of a whole word's layout.
_S16_CAPS_ND = np.array([len(mode) for mode in S16_MODES], dtype=np.int64)
_S16_SHIFTS_ND = tuple(
    np.array([shift for shift, _ in layout], dtype=np.uint32)
    for layout in _S16_LAYOUTS
)
_S16_MASKS_ND = tuple(
    np.array([mask for _, mask in layout], dtype=np.uint32)
    for layout in _S16_LAYOUTS
)


@DEFAULT_REGISTRY.register
class Simple16Codec(Codec):
    """Word-aligned packing with 16 selectable 28-bit field layouts."""

    name = "S16"
    max_value_bits = 28

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        out = bytearray()
        position = 0
        while position < len(values):
            selector, consumed = self._choose_mode(values, position)
            word = selector
            mode = S16_MODES[selector]
            shift = 4
            for field_index, width in enumerate(mode):
                if field_index < consumed:
                    word |= values[position + field_index] << shift
                shift += width
            out.extend(struct.pack("<I", word))
            position += consumed
        return bytes(out)

    def decode(self, data: bytes, count: int) -> List[int]:
        if len(data) % 4:
            raise CompressionError("S16: payload is not word aligned")
        values: List[int] = []
        for (word,) in struct.iter_unpack("<I", data):
            selector = word & 0xF
            payload = word >> 4
            for width in S16_MODES[selector]:
                values.append(payload & ((1 << width) - 1))
                payload >>= width
                if len(values) == count:
                    return values
        if len(values) < count:
            raise CompressionError(
                f"S16: stream ended after {len(values)} of {count} values"
            )
        return values

    def decode_block(self, data: bytes, count: int) -> array:
        if len(data) % 4:
            raise CompressionError("S16: payload is not word aligned")
        out: List[int] = []
        extend = out.extend
        for (word,) in struct.iter_unpack("<I", data):
            extend([
                (word >> shift) & mask
                for shift, mask in _S16_LAYOUTS[word & 0xF]
            ])
            if len(out) >= count:
                break
        if len(out) < count:
            raise CompressionError(
                f"S16: stream ended after {len(out)} of {count} values"
            )
        del out[count:]  # drop the final word's padding fields
        return array("I", out)

    def decode_block_columnar(self, data, count: int) -> np.ndarray:
        if count <= 0:
            return super().decode_block_columnar(data, count)
        if len(data) % 4:
            raise CompressionError("S16: payload is not word aligned")
        words = np.frombuffer(data, dtype="<u4")
        selectors = (words & np.uint32(0xF)).astype(np.intp)
        per_word = _S16_CAPS_ND[selectors]
        cum = np.cumsum(per_word)
        total = int(cum[-1]) if len(cum) else 0
        if total < count:
            raise CompressionError(
                f"S16: stream ended after {total} of {count} values"
            )
        # Only the prefix of words needed to produce ``count`` values is
        # decoded — matching the bulk decoder's early break.
        nwords = int(np.searchsorted(cum, count, side="left")) + 1
        out = np.empty(int(cum[nwords - 1]), dtype=np.uint32)
        out_start = cum[:nwords] - per_word[:nwords]
        used = selectors[:nwords]
        for sel in np.unique(used):
            shifts = _S16_SHIFTS_ND[sel]
            w_idx = np.flatnonzero(used == sel)
            vals = (words[w_idx, None] >> shifts[None, :]) \
                & _S16_MASKS_ND[sel][None, :]
            dest = out_start[w_idx, None] + np.arange(len(shifts))
            out[dest] = vals
        return out[:count]

    @staticmethod
    def _choose_mode(values: Sequence[int], position: int) -> Tuple[int, int]:
        """Pick the first mode that fits the upcoming values.

        Returns ``(selector, values_consumed)``. A mode fits if every one
        of its fields can hold the corresponding upcoming value; when the
        tail of the stream is shorter than the mode, only the available
        values need to fit (the rest of the word is padding).
        """
        remaining = len(values) - position
        for selector, mode in enumerate(S16_MODES):
            takes = min(len(mode), remaining)
            if all(
                values[position + i].bit_length() <= mode[i]
                for i in range(takes)
            ):
                return selector, takes
        raise CompressionError(
            f"S16: value {values[position]} does not fit any mode"
        )
