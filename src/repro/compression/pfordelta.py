"""PForDelta (PFD) and OptPForDelta (OptPFD) codecs.

PFD (Zukowski et al. [77] in the paper) picks a frame bit width ``b`` that
covers a large majority of a block's values and *patches* the remaining
values ("exceptions") out of band:

* the main frame stores the low ``b`` bits of **every** value, so the
  hardware can decode the frame with a fixed-width extractor;
* each exception's position and its high bits (``value >> b``) are stored
  in a trailing exception section.

Classic PFD selects the smallest ``b`` whose frame covers at least 90% of
the values (paper Section VI). OptPFD (Yan, Ding & Suel [68]) instead
scans all widths and keeps the one whose *total* encoded size — frame plus
exception section — is smallest. The paper's evaluation uses OptPFD only
("Since OptPFD outperforms PFD, we only consider the former"), but we
implement both because PFD is the base scheme and its coverage rule is the
classic point of comparison.

Streams longer than one frame are split into segments of 128 values (the
paper's block granularity), each carrying its own header so the frame
width adapts to local value magnitudes.

Per-segment layout (all multi-byte fields little-endian):

====== ==========================================================
offset field
====== ==========================================================
0      frame bit width ``b`` (1 byte)
1      exception count ``n_exc`` (1 byte)
2      frame: ``seg_count`` fields of ``b`` bits, LSB-first packing
...    exception section: ``n_exc`` records of (position: 1 byte,
       high bits: VariableByte)
====== ==========================================================
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

import numpy as np

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.npunpack import as_u8, unpack_lsb_frame
from repro.compression.varbyte import VarByteCodec
from repro.errors import CompressionError

#: PFD's classic coverage rule: the frame width must represent at least
#: this fraction of the block's values directly.
PFD_COVERAGE = 0.90

#: Values per internal segment; matches the paper's 128-value blocks.
SEGMENT_SIZE = 128

_VB = VarByteCodec()


class _WideFrame(Exception):
    """Internal: a segment header claims a frame wider than the 64-bit
    columnar gather can extract; the caller falls back to the exact
    big-int bulk decoder."""


def _encode_segment(values: Sequence[int], width: int) -> bytes:
    """Encode one segment with frame width ``width``, patching exceptions."""
    mask = (1 << width) - 1
    writer = BitWriter()
    exceptions: List[Tuple[int, int]] = []
    for position, v in enumerate(values):
        writer.write(v & mask, width)
        high = v >> width
        if high:
            exceptions.append((position, high))
    if len(exceptions) > 255:
        raise CompressionError("PFD: more than 255 exceptions in a segment")
    out = bytearray([width, len(exceptions)])
    out.extend(writer.getvalue())
    for position, high in exceptions:
        out.append(position)
        out.extend(_VB.encode([high]))
    return bytes(out)


def _decode_segment(data: bytes, offset: int, count: int) -> Tuple[List[int], int]:
    """Decode one segment starting at ``offset``; return (values, next offset)."""
    if offset + 2 > len(data):
        raise CompressionError("PFD: truncated segment header")
    width = data[offset]
    n_exc = data[offset + 1]
    frame_bytes = (count * width + 7) // 8
    reader = BitReader(data, offset=offset + 2)
    values = reader.read_many(width, count) if width else [0] * count
    pos = offset + 2 + frame_bytes
    for _ in range(n_exc):
        if pos >= len(data):
            raise CompressionError("PFD: truncated exception section")
        position = data[pos]
        pos += 1
        # VB values terminate at the first byte with the MSB flag set.
        end = pos
        while end < len(data) and not (data[end] & 0x80):
            end += 1
        if end >= len(data):
            raise CompressionError("PFD: unterminated exception value")
        end += 1
        high = _VB.decode(data[pos:end], 1)[0]
        if position >= count:
            raise CompressionError(
                f"PFD: exception position {position} out of range"
            )
        values[position] |= high << width
        pos = end
    return values, pos


def _decode_stream(data: bytes, count: int) -> List[int]:
    values: List[int] = []
    offset = 0
    while len(values) < count:
        seg_count = min(SEGMENT_SIZE, count - len(values))
        seg_values, offset = _decode_segment(data, offset, seg_count)
        values.extend(seg_values)
    return values


def _decode_segment_fast(data: bytes, offset: int,
                         count: int) -> Tuple[List[int], int]:
    """Bulk variant of :func:`_decode_segment`: whole-frame extraction.

    The LSB-first packed frame is read as one big little-endian integer
    and sliced by shifting, instead of walking a :class:`BitReader` one
    field at a time. Exceptions are patched identically to the
    reference decoder.
    """
    if offset + 2 > len(data):
        raise CompressionError("PFD: truncated segment header")
    width = data[offset]
    n_exc = data[offset + 1]
    frame_bytes = (count * width + 7) // 8
    frame_end = offset + 2 + frame_bytes
    if frame_end > len(data):
        raise CompressionError("PFD: truncated input: frame cut short")
    if width:
        frame = int.from_bytes(data[offset + 2:frame_end], "little")
        mask = (1 << width) - 1
        values = [(frame >> shift) & mask
                  for shift in range(0, count * width, width)]
    else:
        values = [0] * count
    pos = frame_end
    for _ in range(n_exc):
        if pos >= len(data):
            raise CompressionError("PFD: truncated exception section")
        position = data[pos]
        pos += 1
        end = pos
        while end < len(data) and not (data[end] & 0x80):
            end += 1
        if end >= len(data):
            raise CompressionError("PFD: unterminated exception value")
        end += 1
        high = _VB.decode(data[pos:end], 1)[0]
        if position >= count:
            raise CompressionError(
                f"PFD: exception position {position} out of range"
            )
        values[position] |= high << width
        pos = end
    return values, pos


def _decode_segment_columnar(data, offset: int, count: int,
                             name: str = "PFD") -> Tuple[np.ndarray, int]:
    """Columnar variant of :func:`_decode_segment_fast`.

    The frame is unpacked with one vectorized gather
    (:func:`unpack_lsb_frame`); the exception section — a handful of
    entries by construction — is patched with the reference decoder's
    serial walk. Values stay in uint64 until the caller's final 32-bit
    range check so corrupt wide patches are detected, not wrapped.
    """
    if offset + 2 > len(data):
        raise CompressionError("PFD: truncated segment header")
    width = data[offset]
    if width > 57:
        # A corrupt header can claim up to 255-bit fields, which the
        # big-int reference path tolerates when the decoded values still
        # fit 32 bits; the 64-bit gather window cannot, so punt the
        # whole stream back to the bulk decoder.
        raise _WideFrame(width)
    n_exc = data[offset + 1]
    frame_bytes = (count * width + 7) // 8
    frame_end = offset + 2 + frame_bytes
    if frame_end > len(data):
        raise CompressionError("PFD: truncated input: frame cut short")
    if width:
        frame = as_u8(data, offset=offset + 2, length=frame_bytes)
        values = unpack_lsb_frame(frame, width, count)
    else:
        values = np.zeros(count, dtype=np.uint64)
    pos = frame_end
    for _ in range(n_exc):
        if pos >= len(data):
            raise CompressionError("PFD: truncated exception section")
        position = data[pos]
        pos += 1
        end = pos
        while end < len(data) and not (data[end] & 0x80):
            end += 1
        if end >= len(data):
            raise CompressionError("PFD: unterminated exception value")
        end += 1
        # Inline VB decode (MSB-first 7-bit groups, terminator already
        # located above) — keeps the zero-copy path off the bytes codecs.
        high = 0
        for byte in data[pos:end]:
            high = (high << 7) | (byte & 0x7F)
        if position >= count:
            raise CompressionError(
                f"PFD: exception position {position} out of range"
            )
        patch = high << width
        if patch > 0xFFFFFFFFFFFFFFFF:
            raise CompressionError(f"{name}: decoded value exceeds 32 bits")
        values[position] |= np.uint64(patch)
        pos = end
    return values, pos


class _PatchedFrameCodec(Codec):
    """Shared encode/decode driver; subclasses choose the frame width."""

    max_value_bits = 32

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        out = bytearray()
        if not values:
            return _encode_segment(values, 0)
        for start in range(0, len(values), SEGMENT_SIZE):
            segment = values[start:start + SEGMENT_SIZE]
            out.extend(_encode_segment(segment, self._frame_width(segment)))
        return bytes(out)

    def decode(self, data: bytes, count: int) -> List[int]:
        return _decode_stream(data, count)

    def decode_block(self, data: bytes, count: int) -> array:
        values: List[int] = []
        offset = 0
        while len(values) < count:
            seg_count = min(SEGMENT_SIZE, count - len(values))
            seg_values, offset = _decode_segment_fast(data, offset, seg_count)
            values.extend(seg_values)
        try:
            return array("I", values)
        except OverflowError:
            raise CompressionError(
                f"{self.name}: decoded value exceeds 32 bits"
            ) from None

    def decode_block_columnar(self, data, count: int) -> np.ndarray:
        if count <= 0:
            return super().decode_block_columnar(data, count)
        segments: List[np.ndarray] = []
        produced = 0
        offset = 0
        try:
            while produced < count:
                seg_count = min(SEGMENT_SIZE, count - produced)
                seg_values, offset = _decode_segment_columnar(
                    data, offset, seg_count, self.name
                )
                segments.append(seg_values)
                produced += seg_count
        except _WideFrame:
            return Codec.decode_block_columnar(self, data, count)
        values = segments[0] if len(segments) == 1 else \
            np.concatenate(segments)
        if int(values.max()) > 0xFFFFFFFF:
            raise CompressionError(
                f"{self.name}: decoded value exceeds 32 bits"
            )
        return values.astype(np.uint32)

    def _frame_width(self, segment: Sequence[int]) -> int:
        raise NotImplementedError


@DEFAULT_REGISTRY.register
class PFDCodec(_PatchedFrameCodec):
    """Patched frame-of-reference with the classic 90% coverage rule."""

    name = "PFD"

    def _frame_width(self, segment: Sequence[int]) -> int:
        widths = sorted(v.bit_length() for v in segment)
        # Smallest width covering at least PFD_COVERAGE of the values:
        # the width at the ceil(coverage * n)-th order statistic.
        quantile_index = min(
            len(widths) - 1,
            max(0, int(PFD_COVERAGE * len(widths) + 0.999999) - 1),
        )
        return widths[quantile_index]


@DEFAULT_REGISTRY.register
class OptPFDCodec(_PatchedFrameCodec):
    """PFD variant that scans all frame widths for the smallest encoding."""

    name = "OptPFD"

    def _frame_width(self, segment: Sequence[int]) -> int:
        # Size is computed analytically for every candidate width:
        #   2 (header) + ceil(n*b/8) (frame)
        #   + per exception: 1 (position) + ceil((bit_length - b)/7) (VB).
        bit_lengths = sorted(v.bit_length() for v in segment)
        n = len(bit_lengths)
        max_width = bit_lengths[-1]
        best_width = max_width
        best_size = None
        for width in range(max_width + 1):
            frame = (n * width + 7) // 8
            exception_bytes = 0
            n_exc = 0
            for bl in reversed(bit_lengths):
                if bl <= width:
                    break
                n_exc += 1
                exception_bytes += 1 + (bl - width + 6) // 7
            if n_exc > 255:
                continue  # position byte cannot address this many patches
            size = 2 + frame + exception_bytes
            if best_size is None or size < best_size:
                best_size, best_width = size, width
        return best_width
