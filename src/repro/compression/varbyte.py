"""VariableByte (VB) codec.

VB (Cutting & Pedersen [26] in the paper) encodes each integer as a run of
bytes carrying 7 payload bits each, most-significant group first; the MSB
of a byte is the *terminator* flag — it is set on the final byte of each
value. This exact layout is what the paper's Figure 8 configuration
program implements on the programmable decompression module:

* ``AND(Input, 0x7F)`` extracts the 7 payload bits,
* ``ADD(payload, SHL(Reg, 7))`` accumulates most-significant-first,
* ``SHR(Input, 0x7)`` (the MSB) resets the accumulator, i.e. terminates
  the current value.

Values up to 32 bits therefore occupy one to five bytes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.errors import CompressionError


@DEFAULT_REGISTRY.register
class VarByteCodec(Codec):
    """Byte-aligned 7-bit group coding with an MSB terminator flag."""

    name = "VB"
    max_value_bits = 32

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        out = bytearray()
        for v in values:
            groups = []
            groups.append(v & 0x7F)
            v >>= 7
            while v:
                groups.append(v & 0x7F)
                v >>= 7
            # Emit most-significant group first; terminator flag on last.
            for group in reversed(groups[1:]):
                out.append(group)
            out.append(groups[0] | 0x80)
        return bytes(out)

    def decode(self, data: bytes, count: int) -> List[int]:
        values: List[int] = []
        current = 0
        for byte in data:
            current = (current << 7) | (byte & 0x7F)
            if byte & 0x80:
                values.append(current)
                current = 0
                if len(values) == count:
                    break
        if len(values) < count:
            raise CompressionError(
                f"VB: stream ended after {len(values)} of {count} values"
            )
        return values
