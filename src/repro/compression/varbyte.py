"""VariableByte (VB) codec.

VB (Cutting & Pedersen [26] in the paper) encodes each integer as a run of
bytes carrying 7 payload bits each, most-significant group first; the MSB
of a byte is the *terminator* flag — it is set on the final byte of each
value. This exact layout is what the paper's Figure 8 configuration
program implements on the programmable decompression module:

* ``AND(Input, 0x7F)`` extracts the 7 payload bits,
* ``ADD(payload, SHL(Reg, 7))`` accumulates most-significant-first,
* ``SHR(Input, 0x7)`` (the MSB) resets the accumulator, i.e. terminates
  the current value.

Values up to 32 bits therefore occupy one to five bytes.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence

import numpy as np

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.compression.npunpack import as_u8
from repro.errors import CompressionError

#: Byte-translation table clearing the terminator flag: the bulk decoder
#: uses it to decode an all-single-byte stream (every value < 128, the
#: common case for d-gaps and tf-1 payloads) in one C-speed pass.
_CLEAR_MSB = bytes(b & 0x7F for b in range(256))


@DEFAULT_REGISTRY.register
class VarByteCodec(Codec):
    """Byte-aligned 7-bit group coding with an MSB terminator flag."""

    name = "VB"
    max_value_bits = 32

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        out = bytearray()
        for v in values:
            groups = []
            groups.append(v & 0x7F)
            v >>= 7
            while v:
                groups.append(v & 0x7F)
                v >>= 7
            # Emit most-significant group first; terminator flag on last.
            for group in reversed(groups[1:]):
                out.append(group)
            out.append(groups[0] | 0x80)
        return bytes(out)

    def decode(self, data: bytes, count: int) -> List[int]:
        values: List[int] = []
        current = 0
        pending = False
        for byte in data:
            current = (current << 7) | (byte & 0x7F)
            pending = True
            if byte & 0x80:
                values.append(current)
                current = 0
                pending = False
                if len(values) == count:
                    break
        if len(values) < count:
            detail = "truncated input (unterminated value)" if pending \
                else "truncated input"
            raise CompressionError(
                f"VB: {detail}: stream ended after {len(values)} of "
                f"{count} values"
            )
        return values

    def decode_block(self, data: bytes, count: int) -> array:
        if count <= 0:
            return super().decode_block(data, count)
        # All-single-byte streams (every byte is a terminator) decode in
        # one translate + list pass, both C-speed.
        if len(data) == count and min(data) >= 0x80:
            return array("I", list(data.translate(_CLEAR_MSB)))
        out = array("I")
        append = out.append
        produced = 0
        current = 0
        pending = False
        try:
            for byte in data:
                current = (current << 7) | (byte & 0x7F)
                pending = True
                if byte & 0x80:
                    append(current)
                    current = 0
                    pending = False
                    produced += 1
                    if produced == count:
                        return out
        except OverflowError:
            raise CompressionError(
                "VB: decoded value exceeds 32 bits"
            ) from None
        detail = "truncated input (unterminated value)" if pending \
            else "truncated input"
        raise CompressionError(
            f"VB: {detail}: stream ended after {produced} of "
            f"{count} values"
        )

    def decode_block_columnar(self, data, count: int) -> np.ndarray:
        if count <= 0:
            return super().decode_block_columnar(data, count)
        raw = as_u8(data)
        # Terminator scan: every byte with the MSB set ends a value.
        ends = np.flatnonzero(raw & 0x80)
        if len(ends) < count:
            produced = len(ends)
            used = int(ends[-1]) + 1 if produced else 0
            detail = ("truncated input (unterminated value)"
                      if len(raw) > used else "truncated input")
            raise CompressionError(
                f"VB: {detail}: stream ended after {produced} of "
                f"{count} values"
            )
        ends = ends[:count]
        n_used = int(ends[-1]) + 1
        payload = (raw[:n_used] & 0x7F).astype(np.uint64)
        # Each byte contributes payload << (7 * distance-to-terminator).
        positions = np.arange(n_used, dtype=np.int64)
        dist = ends[np.searchsorted(ends, positions)] - positions
        # A non-zero group 9+ bytes before its terminator contributes at
        # least 2**63 — past uint64 territory and far past 32 bits.
        if np.any((payload != 0) & (dist >= 9)):
            raise CompressionError("VB: decoded value exceeds 32 bits")
        contrib = payload << (np.uint64(7) * dist.astype(np.uint64))
        starts = np.empty(count, dtype=np.int64)
        starts[0] = 0
        starts[1:] = ends[:-1] + 1
        values = np.add.reduceat(contrib, starts)
        if int(values.max()) > 0xFFFFFFFF:
            raise CompressionError("VB: decoded value exceeds 32 bits")
        return values.astype(np.uint32)
