"""Integer compression codecs for inverted-index posting lists.

The paper (Section II-B, Section VI) evaluates five block-oriented integer
compression schemes over docID deltas (d-gaps):

* Bit-Packing (``BP``) — fixed per-block bit width
* VariableByte (``VB``) — 7-bit payload groups with a continuation flag
* PForDelta (``PFD``) — patched frame-of-reference, 90% coverage rule
* OptPForDelta (``OptPFD``) — PFD with a size-optimal bit width per block
* Simple16 (``S16``) — 28-bit payloads with a 4-bit mode selector
* Simple8b (``S8b``) — 60-bit payloads with a 4-bit mode selector

plus a *hybrid* strategy that picks the best scheme per posting list
(Figure 3). All codecs share the :class:`~repro.compression.base.Codec`
interface: they encode a sequence of non-negative integers into ``bytes``
and decode them back exactly.

Delta (d-gap) transformation is a separate, orthogonal concern handled by
:mod:`repro.compression.delta` so that codecs stay pure integer-sequence
coders, mirroring the paper's stage-4 "delta" step of the decompression
module.
"""

from repro.compression.base import Codec, CodecRegistry, get_codec, list_codecs
from repro.compression.bitpacking import BitPackingCodec
from repro.compression.delta import (
    deltas_from_doc_ids,
    doc_ids_from_deltas,
)
from repro.compression.groupvarint import GroupVarintCodec
from repro.compression.hybrid import HybridSelector, best_codec_for
from repro.compression.pfordelta import OptPFDCodec, PFDCodec
from repro.compression.simple8b import Simple8bCodec
from repro.compression.simple16 import Simple16Codec
from repro.compression.varbyte import VarByteCodec

__all__ = [
    "Codec",
    "CodecRegistry",
    "get_codec",
    "list_codecs",
    "BitPackingCodec",
    "VarByteCodec",
    "PFDCodec",
    "OptPFDCodec",
    "Simple16Codec",
    "Simple8bCodec",
    "GroupVarintCodec",
    "HybridSelector",
    "best_codec_for",
    "deltas_from_doc_ids",
    "doc_ids_from_deltas",
]
