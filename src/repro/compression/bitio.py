"""Little-endian bit-stream reader/writer shared by the packed codecs.

Bits are packed LSB-first within each byte: the first bit written lands in
bit 0 of byte 0. This matches how a hardware extractor with a barrel
shifter would consume the stream (paper Figure 6, stage 1) and keeps the
byte layout independent of the host's endianness.
"""

from __future__ import annotations

from typing import List

from repro.errors import CompressionError


class BitWriter:
    """Accumulates variable-width fields into a byte stream, LSB-first."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``."""
        if width < 0:
            raise CompressionError(f"negative field width {width}")
        if value < 0 or (width < value.bit_length()):
            raise CompressionError(
                f"value {value} does not fit in {width} bits"
            )
        self._accumulator |= value << self._bit_count
        self._bit_count += width
        while self._bit_count >= 8:
            self._bytes.append(self._accumulator & 0xFF)
            self._accumulator >>= 8
            self._bit_count -= 8

    def getvalue(self) -> bytes:
        """Flush any partial byte (zero padded) and return the stream."""
        out = bytearray(self._bytes)
        if self._bit_count:
            out.append(self._accumulator & 0xFF)
        return bytes(out)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._bytes) + self._bit_count


class BitReader:
    """Reads variable-width fields from a byte stream written LSB-first."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._byte_pos = offset
        self._accumulator = 0
        self._bit_count = 0

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits as an unsigned int."""
        if width < 0:
            raise CompressionError(f"negative field width {width}")
        while self._bit_count < width:
            if self._byte_pos >= len(self._data):
                raise CompressionError("bit stream exhausted")
            self._accumulator |= self._data[self._byte_pos] << self._bit_count
            self._byte_pos += 1
            self._bit_count += 8
        value = self._accumulator & ((1 << width) - 1)
        self._accumulator >>= width
        self._bit_count -= width
        return value

    def read_many(self, width: int, count: int) -> List[int]:
        """Read ``count`` consecutive fields of identical ``width``."""
        return [self.read(width) for _ in range(count)]
