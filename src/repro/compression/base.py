"""Codec interface and registry.

A :class:`Codec` turns a sequence of non-negative integers into a compact
``bytes`` payload and back. Codecs are *block oriented*: the caller is
expected to hand them bounded runs of values (the index layer uses blocks
of up to 128 docID deltas, Section IV-A of the paper), and the caller is
responsible for remembering the element count — exactly like the per-block
metadata in the paper, which records the number of elements so the
hardware decompressor knows when to stop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from typing import Dict, Iterable, List, Sequence, Type

import numpy as np

from repro.errors import CompressionError


class Codec(ABC):
    """Abstract integer-sequence compressor.

    Subclasses must be stateless: ``encode``/``decode`` may be called
    concurrently on the same instance. Each subclass declares:

    * ``name`` — the short scheme identifier used throughout the paper
      (``"BP"``, ``"VB"``, ...), also the registry key;
    * ``max_value_bits`` — the widest value (in bits) the scheme can
      represent. Values outside the range raise :class:`CompressionError`.
    """

    #: Registry key and display name ("BP", "VB", "PFD", ...).
    name: str = "abstract"
    #: Maximum representable value width in bits.
    max_value_bits: int = 32

    @abstractmethod
    def encode(self, values: Sequence[int]) -> bytes:
        """Compress ``values`` into a self-contained byte payload."""

    @abstractmethod
    def decode(self, data: bytes, count: int) -> List[int]:
        """Recover exactly ``count`` values from ``data``.

        ``count`` mirrors the "number of elements in the block" field of
        the paper's 19-byte per-block metadata.

        This is the *reference* per-value decoder: simple, obviously
        correct, and the oracle the bulk fast path is tested against.
        """

    def decode_block(self, data: bytes, count: int) -> array:
        """Bulk-decode fast path: ``count`` values as an ``array('I')``.

        Semantically identical to :meth:`decode` on every valid payload
        (the property suite pins ``list(decode_block(p)) == decode(p)``),
        but implemented block-at-a-time where the subclass can — table
        driven selector dispatch, whole-frame bit extraction,
        ``int.from_bytes`` chunking — instead of per-integer Python
        loops. Subclasses without a specialized path inherit this
        wrapper over the reference decoder.

        Raises :class:`CompressionError` on truncated or corrupt input;
        a corrupt payload whose fields exceed 32 bits is reported as a
        :class:`CompressionError` (the reference path would return the
        out-of-range integer).
        """
        try:
            return array("I", self.decode(data, count))
        except OverflowError:
            raise CompressionError(
                f"{self.name}: decoded value exceeds 32 bits"
            ) from None

    def decode_block_columnar(self, data, count: int) -> np.ndarray:
        """Columnar bulk decode: ``count`` values as a ``uint32`` vector.

        Element-identical to :meth:`decode` (and :meth:`decode_block`) on
        every valid payload, with :meth:`decode_block`'s error contract on
        corrupt input — truncation and >32-bit fields raise
        :class:`CompressionError`. Subclasses override this with
        vectorized numpy kernels (whole-frame bit gathers, terminator
        scans, selector-table scatters); the default wraps the bulk
        decoder. ``data`` may be any byte buffer — ``bytes`` or a
        zero-copy ``memoryview`` over an mmapped index file.

        The returned array is freshly allocated and writable.
        """
        if not isinstance(data, bytes):
            data = bytes(data)
        return np.array(self.decode_block(data, count), dtype=np.uint32)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _check_values(self, values: Sequence[int]) -> None:
        """Validate that every value is a representable non-negative int."""
        limit = 1 << self.max_value_bits
        for v in values:
            if v < 0:
                raise CompressionError(
                    f"{self.name}: negative value {v} is not encodable"
                )
            if v >= limit:
                raise CompressionError(
                    f"{self.name}: value {v} exceeds {self.max_value_bits}-bit limit"
                )

    def compressed_size(self, values: Sequence[int]) -> int:
        """Return the encoded size in bytes (convenience for ratio studies)."""
        return len(self.encode(values))

    def compression_ratio(self, values: Sequence[int]) -> float:
        """Uncompressed (4 B/value) size divided by encoded size.

        This is the "compression ratio, higher is better" metric of
        Figure 3 in the paper.
        """
        encoded = self.compressed_size(values)
        if encoded == 0:
            raise CompressionError(f"{self.name}: encoded zero bytes")
        return (4 * len(values)) / encoded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class CodecRegistry:
    """Name-keyed registry of codec classes.

    The registry backs the ``compType`` argument of the paper's
    :func:`repro.api.search` offloading call, which names the compression
    scheme of each posting list, and the programmable decompression
    module's scheme dispatch.
    """

    def __init__(self) -> None:
        self._codecs: Dict[str, Type[Codec]] = {}

    def register(self, codec_cls: Type[Codec]) -> Type[Codec]:
        """Register ``codec_cls`` under its ``name``; usable as a decorator."""
        name = codec_cls.name
        if name in self._codecs:
            raise CompressionError(f"codec {name!r} already registered")
        self._codecs[name] = codec_cls
        return codec_cls

    def create(self, name: str) -> Codec:
        """Instantiate the codec registered under ``name``."""
        try:
            return self._codecs[name]()
        except KeyError:
            known = ", ".join(sorted(self._codecs))
            raise CompressionError(
                f"unknown codec {name!r}; known codecs: {known}"
            ) from None

    def names(self) -> List[str]:
        """All registered codec names, sorted."""
        return sorted(self._codecs)

    def __contains__(self, name: str) -> bool:
        return name in self._codecs

    def __iter__(self) -> Iterable[str]:
        return iter(sorted(self._codecs))


#: Process-wide default registry, populated by the codec modules on import.
DEFAULT_REGISTRY = CodecRegistry()


def get_codec(name: str) -> Codec:
    """Instantiate a codec by scheme name from the default registry."""
    return DEFAULT_REGISTRY.create(name)


def list_codecs() -> List[str]:
    """Names of every codec in the default registry."""
    return DEFAULT_REGISTRY.names()
