"""Simple8b (S8b) codec.

S8b (Anh & Moffat [14] in the paper) is the 64-bit sibling of Simple16:
each output word spends 4 bits on a mode selector and packs uniform-width
fields into the remaining 60 payload bits. Two special run-length modes
encode long runs of zeros using no payload bits at all, which makes S8b
extremely effective on ultra-dense d-gap streams (where ``gap - 1`` is
almost always zero) — this is why S8b stars on the paper's *zipf* and
*dense* streams in Figure 3.

Mode table (selector: field width x count):

====== ===================================
0      240 zero values, no payload bits
1      120 zero values, no payload bits
2      1 bit x 60
3      2 bits x 30
4      3 bits x 20
5      4 bits x 15
6      5 bits x 12
7      6 bits x 10
8      7 bits x 8
9      8 bits x 7
10     10 bits x 6
11     12 bits x 5
12     15 bits x 4
13     20 bits x 3
14     30 bits x 2
15     60 bits x 1
====== ===================================
"""

from __future__ import annotations

import struct
from array import array
from typing import List, Sequence, Tuple

import numpy as np

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.errors import CompressionError

#: ``(field_width_bits, values_per_word)`` per selector; width 0 encodes
#: a run of zeros of the given length.
S8B_MODES: Tuple[Tuple[int, int], ...] = (
    (0, 240),
    (0, 120),
    (1, 60),
    (2, 30),
    (3, 20),
    (4, 15),
    (5, 12),
    (6, 10),
    (7, 8),
    (8, 7),
    (10, 6),
    (12, 5),
    (15, 4),
    (20, 3),
    (30, 2),
    (60, 1),
)

#: Bulk-decode dispatch tables, one entry per selector: the field shifts
#: of a whole word (None for the zero-run modes), the field mask, and a
#: pre-built zero run for the payload-free modes.
_S8B_SHIFTS = tuple(
    tuple(4 + i * width for i in range(capacity)) if width else None
    for width, capacity in S8B_MODES
)
_S8B_MASKS = tuple((1 << width) - 1 for width, _ in S8B_MODES)
_S8B_ZEROS = tuple(
    [0] * capacity if width == 0 else None for width, capacity in S8B_MODES
)

#: Columnar dispatch tables: values per selector, and per selector the
#: field shift vector (empty for the zero-run modes).
_S8B_CAPS_ND = np.array([capacity for _, capacity in S8B_MODES],
                        dtype=np.int64)
_S8B_SHIFTS_ND = tuple(
    (np.uint64(4) + np.uint64(width) * np.arange(capacity, dtype=np.uint64))
    if width else None
    for width, capacity in S8B_MODES
)


@DEFAULT_REGISTRY.register
class Simple8bCodec(Codec):
    """64-bit word packing with uniform fields and zero-run modes."""

    name = "S8b"
    max_value_bits = 32  # values above 32 bits never arise from d-gaps

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        out = bytearray()
        position = 0
        total = len(values)
        while position < total:
            selector, consumed = self._choose_mode(values, position)
            width, _capacity = S8B_MODES[selector]
            word = selector
            if width:
                shift = 4
                for i in range(consumed):
                    word |= values[position + i] << shift
                    shift += width
            out.extend(struct.pack("<Q", word))
            position += consumed
        return bytes(out)

    def decode(self, data: bytes, count: int) -> List[int]:
        if len(data) % 8:
            raise CompressionError("S8b: payload is not word aligned")
        values: List[int] = []
        for (word,) in struct.iter_unpack("<Q", data):
            selector = word & 0xF
            width, capacity = S8B_MODES[selector]
            if width == 0:
                take = min(capacity, count - len(values))
                values.extend([0] * take)
            else:
                payload = word >> 4
                mask = (1 << width) - 1
                for _ in range(capacity):
                    values.append(payload & mask)
                    payload >>= width
                    if len(values) == count:
                        break
            if len(values) == count:
                return values
        if len(values) < count:
            raise CompressionError(
                f"S8b: stream ended after {len(values)} of {count} values"
            )
        return values

    def decode_block(self, data: bytes, count: int) -> array:
        if len(data) % 8:
            raise CompressionError("S8b: payload is not word aligned")
        out: List[int] = []
        extend = out.extend
        for (word,) in struct.iter_unpack("<Q", data):
            selector = word & 0xF
            shifts = _S8B_SHIFTS[selector]
            if shifts is None:
                extend(_S8B_ZEROS[selector])
            else:
                mask = _S8B_MASKS[selector]
                extend([(word >> shift) & mask for shift in shifts])
            if len(out) >= count:
                break
        if len(out) < count:
            raise CompressionError(
                f"S8b: stream ended after {len(out)} of {count} values"
            )
        del out[count:]  # drop the final word's padding fields
        try:
            return array("I", out)
        except OverflowError:
            raise CompressionError(
                "S8b: decoded value exceeds 32 bits"
            ) from None

    def decode_block_columnar(self, data, count: int) -> np.ndarray:
        if count <= 0:
            return super().decode_block_columnar(data, count)
        if len(data) % 8:
            raise CompressionError("S8b: payload is not word aligned")
        words = np.frombuffer(data, dtype="<u8")
        selectors = (words & np.uint64(0xF)).astype(np.intp)
        per_word = _S8B_CAPS_ND[selectors]
        cum = np.cumsum(per_word)
        total = int(cum[-1]) if len(cum) else 0
        if total < count:
            raise CompressionError(
                f"S8b: stream ended after {total} of {count} values"
            )
        # Only the prefix of words needed to produce ``count`` values is
        # decoded — matching the bulk decoder's early break.
        nwords = int(np.searchsorted(cum, count, side="left")) + 1
        out = np.zeros(int(cum[nwords - 1]), dtype=np.uint64)
        out_start = cum[:nwords] - per_word[:nwords]
        used = selectors[:nwords]
        for sel in np.unique(used):
            shifts = _S8B_SHIFTS_ND[sel]
            if shifts is None:
                continue  # zero-run mode: the output is pre-zeroed
            w_idx = np.flatnonzero(used == sel)
            mask = np.uint64(_S8B_MASKS[sel])
            vals = (words[w_idx, None] >> shifts[None, :]) & mask
            dest = out_start[w_idx, None] + np.arange(len(shifts))
            out[dest] = vals
        out = out[:count]
        if int(out.max()) > 0xFFFFFFFF:
            raise CompressionError("S8b: decoded value exceeds 32 bits")
        return out.astype(np.uint32)

    @staticmethod
    def _choose_mode(values: Sequence[int], position: int) -> Tuple[int, int]:
        """Pick the densest mode that fits the upcoming values.

        Zero-run modes are chosen when the upcoming run of zeros reaches
        the mode's length (or exhausts the stream); otherwise the first
        uniform-width mode whose width covers all of the next ``capacity``
        values wins.
        """
        total = len(values)
        remaining = total - position

        # Zero-run modes: only profitable when they fill the whole run
        # capacity or reach the end of the stream.
        zero_run = 0
        limit = min(remaining, 240)
        while zero_run < limit and values[position + zero_run] == 0:
            zero_run += 1
        for selector in (0, 1):
            capacity = S8B_MODES[selector][1]
            if zero_run >= capacity or (zero_run == remaining and zero_run > 60):
                return selector, min(zero_run, capacity)

        for selector in range(2, 16):
            width, capacity = S8B_MODES[selector]
            takes = min(capacity, remaining)
            if all(
                values[position + i].bit_length() <= width
                for i in range(takes)
            ):
                return selector, takes
        raise CompressionError(
            f"S8b: value {values[position]} does not fit any mode"
        )
