"""Bit-Packing (BP) codec.

BP (Lemire & Boytsov [40] in the paper) finds the minimum number of bits
``b`` needed to represent the largest value in a block and encodes every
value with exactly ``b`` bits. The encoded payload is a 1-byte header
carrying ``b`` followed by ``ceil(count * b / 8)`` packed bytes.

A width of zero (all values zero) costs only the header byte, which makes
BP surprisingly strong on ultra-dense d-gap streams.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.compression.bitio import BitReader, BitWriter
from repro.errors import CompressionError


@DEFAULT_REGISTRY.register
class BitPackingCodec(Codec):
    """Fixed-width binary packing with a per-block width header."""

    name = "BP"
    max_value_bits = 32

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        width = max((v.bit_length() for v in values), default=0)
        writer = BitWriter()
        for v in values:
            writer.write(v, width)
        return bytes([width]) + writer.getvalue()

    def decode(self, data: bytes, count: int) -> List[int]:
        if not data:
            raise CompressionError("BP: empty payload")
        width = data[0]
        if width > self.max_value_bits:
            raise CompressionError(f"BP: invalid bit width {width}")
        if width == 0:
            return [0] * count
        reader = BitReader(data, offset=1)
        return reader.read_many(width, count)
