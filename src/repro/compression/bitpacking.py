"""Bit-Packing (BP) codec.

BP (Lemire & Boytsov [40] in the paper) finds the minimum number of bits
``b`` needed to represent the largest value in a block and encodes every
value with exactly ``b`` bits. The encoded payload is a 1-byte header
carrying ``b`` followed by ``ceil(count * b / 8)`` packed bytes.

A width of zero (all values zero) costs only the header byte, which makes
BP surprisingly strong on ultra-dense d-gap streams.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence

import numpy as np

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.npunpack import as_u8, unpack_lsb_frame
from repro.errors import CompressionError


@DEFAULT_REGISTRY.register
class BitPackingCodec(Codec):
    """Fixed-width binary packing with a per-block width header."""

    name = "BP"
    max_value_bits = 32

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        width = max((v.bit_length() for v in values), default=0)
        writer = BitWriter()
        for v in values:
            writer.write(v, width)
        return bytes([width]) + writer.getvalue()

    def decode(self, data: bytes, count: int) -> List[int]:
        if not data:
            raise CompressionError("BP: empty payload")
        width = data[0]
        if width > self.max_value_bits:
            raise CompressionError(f"BP: invalid bit width {width}")
        if width == 0:
            return [0] * count
        reader = BitReader(data, offset=1)
        return reader.read_many(width, count)

    def decode_block(self, data: bytes, count: int) -> array:
        if not data:
            raise CompressionError("BP: empty payload")
        width = data[0]
        if width > self.max_value_bits:
            raise CompressionError(f"BP: invalid bit width {width}")
        if width == 0 or count == 0:
            # array('I', bytes) deserializes raw little-endian words:
            # 4*count zero bytes is a zero-filled array of length count.
            return array("I", bytes(4 * count))
        frame_bytes = (count * width + 7) // 8
        if 1 + frame_bytes > len(data):
            raise CompressionError(
                f"BP: truncated input: {len(data) - 1} payload bytes "
                f"cannot hold {count} {width}-bit fields"
            )
        # Whole-block extraction: the LSB-first packed frame, read as one
        # big little-endian integer, exposes field i at bit i*width.
        frame = int.from_bytes(data[1:1 + frame_bytes], "little")
        mask = (1 << width) - 1
        return array(
            "I", [(frame >> shift) & mask
                  for shift in range(0, count * width, width)]
        )

    def decode_block_columnar(self, data, count: int) -> np.ndarray:
        if not len(data):
            raise CompressionError("BP: empty payload")
        width = data[0]
        if width > self.max_value_bits:
            raise CompressionError(f"BP: invalid bit width {width}")
        if width == 0 or count <= 0:
            return np.zeros(max(count, 0), dtype=np.uint32)
        frame_bytes = (count * width + 7) // 8
        if 1 + frame_bytes > len(data):
            raise CompressionError(
                f"BP: truncated input: {len(data) - 1} payload bytes "
                f"cannot hold {count} {width}-bit fields"
            )
        frame = as_u8(data, offset=1, length=frame_bytes)
        return unpack_lsb_frame(frame, width, count).astype(np.uint32)
