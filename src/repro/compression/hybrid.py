"""Hybrid per-list compression scheme selection.

The paper compresses each posting list with the *best* scheme for that
list ("Hybrid" in Figure 3; "we find the best compression scheme among the
five in advance and use the best for BOSS", Section V-A). This module
implements that offline selection: given a value stream, try every
candidate codec and keep the one with the smallest encoded size.

Because BOSS's decompression module is programmable (Section IV-C), using
a different scheme per list costs nothing at query time beyond loading the
corresponding stage-2 configuration, so hybrid strictly dominates any
single scheme in compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.compression.base import Codec, get_codec, list_codecs
from repro.errors import CompressionError

#: Scheme set used throughout the paper's evaluation (PFD is subsumed by
#: OptPFD, Section III-B).
PAPER_SCHEMES: Tuple[str, ...] = ("BP", "VB", "OptPFD", "S16", "S8b")


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a hybrid selection for one value stream."""

    #: Winning scheme name.
    scheme: str
    #: Encoded size in bytes under the winning scheme.
    size: int
    #: Encoded size per candidate scheme (schemes that failed to encode
    #: the stream, e.g. S16 on >28-bit values, are absent).
    sizes: Dict[str, int]

    @property
    def ratio(self) -> float:
        """Compression ratio vs 4-byte raw integers (Figure 3 metric)."""
        return 4 * self._count / self.size if self.size else float("inf")

    # Set by HybridSelector; kept out of the dataclass signature.
    _count: int = 0


class HybridSelector:
    """Chooses the smallest-output codec per value stream.

    Parameters
    ----------
    schemes:
        Candidate scheme names. Defaults to the paper's five-scheme set.
    """

    def __init__(self, schemes: Optional[Sequence[str]] = None) -> None:
        names = tuple(schemes) if schemes is not None else PAPER_SCHEMES
        unknown = [n for n in names if n not in list_codecs()]
        if unknown:
            raise CompressionError(f"unknown schemes: {unknown}")
        if not names:
            raise CompressionError("hybrid selector needs at least one scheme")
        self._schemes = names
        self._codecs: Dict[str, Codec] = {n: get_codec(n) for n in names}

    @property
    def schemes(self) -> Tuple[str, ...]:
        """Candidate scheme names, in preference order for ties."""
        return self._schemes

    def select(self, values: Sequence[int]) -> SelectionResult:
        """Return the best scheme for ``values`` and the size table."""
        sizes: Dict[str, int] = {}
        for name in self._schemes:
            try:
                sizes[name] = len(self._codecs[name].encode(values))
            except CompressionError:
                continue  # scheme cannot represent this stream
        if not sizes:
            raise CompressionError(
                "no candidate scheme can encode the stream"
            )
        best = min(sizes, key=lambda n: (sizes[n], self._schemes.index(n)))
        result = SelectionResult(scheme=best, size=sizes[best], sizes=sizes)
        object.__setattr__(result, "_count", len(values))
        return result

    def encode_best(self, values: Sequence[int]) -> Tuple[str, bytes]:
        """Encode ``values`` with the winning scheme.

        Returns ``(scheme_name, payload)``.
        """
        selection = self.select(values)
        return selection.scheme, self._codecs[selection.scheme].encode(values)


def best_codec_for(values: Sequence[int],
                   schemes: Optional[Sequence[str]] = None) -> str:
    """Convenience wrapper: name of the best scheme for ``values``."""
    return HybridSelector(schemes).select(values).scheme
