"""Group Varint (GVB) codec — an *extension* scheme beyond the paper's five.

Group Varint (used by Google's early serving systems) packs four values
per group: one control byte carries four 2-bit length fields (bytes per
value, minus one), followed by the four little-endian payloads. Decoding
is branch-light — which also makes it expressible on BOSS's programmable
decompression module, demonstrating the paper's claim that "a new
decompression scheme can also be supported if it can be expressed by
composing those primitive units" (Section III-B). The matching stage-2
program lives in :mod:`repro.decompressor.configs`.

A trailing group with fewer than four values writes only the present
payloads; the element count from the block metadata tells the decoder
where to stop.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.compression.base import DEFAULT_REGISTRY, Codec
from repro.compression.npunpack import as_u8
from repro.errors import CompressionError

#: Per control byte: the four payload lengths it announces, plus their
#: sum — the bulk decoder's branch-free dispatch table.
_GROUP_SHAPES = tuple(
    (
        tuple(((control >> (2 * slot)) & 0x3) + 1 for slot in range(4)),
        sum(((control >> (2 * slot)) & 0x3) + 1 for slot in range(4)),
    )
    for control in range(256)
)

#: Columnar gather mask, indexed by payload byte length (1..4).
_GVB_MASKS = np.array(
    [0, 0xFF, 0xFFFF, 0xFFFFFF, 0xFFFFFFFF], dtype=np.uint32
)


def _byte_length(value: int) -> int:
    """Bytes needed for ``value`` (1..4)."""
    if value < (1 << 8):
        return 1
    if value < (1 << 16):
        return 2
    if value < (1 << 24):
        return 3
    return 4


@DEFAULT_REGISTRY.register
class GroupVarintCodec(Codec):
    """Four values per control byte, little-endian payloads."""

    name = "GVB"
    max_value_bits = 32

    def encode(self, values: Sequence[int]) -> bytes:
        self._check_values(values)
        out = bytearray()
        for start in range(0, len(values), 4):
            group = values[start:start + 4]
            control = 0
            for slot, value in enumerate(group):
                control |= (_byte_length(value) - 1) << (2 * slot)
            out.append(control)
            for value in group:
                out.extend(value.to_bytes(_byte_length(value), "little"))
        return bytes(out)

    def decode(self, data: bytes, count: int) -> List[int]:
        values: List[int] = []
        position = 0
        while len(values) < count:
            if position >= len(data):
                raise CompressionError(
                    f"GVB: truncated input: stream ended after "
                    f"{len(values)} of {count} values"
                )
            control = data[position]
            position += 1
            for slot in range(4):
                if len(values) == count:
                    break
                length = ((control >> (2 * slot)) & 0x3) + 1
                if position + length > len(data):
                    raise CompressionError(
                        f"GVB: truncated input: payload ends inside value "
                        f"{len(values)} of {count}"
                    )
                values.append(
                    int.from_bytes(data[position:position + length], "little")
                )
                position += length
        return values

    def decode_block(self, data: bytes, count: int) -> array:
        out = array("I")
        append = out.append
        from_bytes = int.from_bytes
        size = len(data)
        position = 0
        produced = 0
        while produced < count:
            if position >= size:
                raise CompressionError(
                    f"GVB: truncated input: stream ended after "
                    f"{produced} of {count} values"
                )
            lengths, total = _GROUP_SHAPES[data[position]]
            position += 1
            if count - produced >= 4 and position + total <= size:
                # Full interior group: no per-slot bounds checks needed.
                for length in lengths:
                    end = position + length
                    append(from_bytes(data[position:end], "little"))
                    position = end
                produced += 4
            else:
                for length in lengths:
                    if produced == count:
                        break
                    if position + length > size:
                        raise CompressionError(
                            f"GVB: truncated input: payload ends inside "
                            f"value {produced} of {count}"
                        )
                    end = position + length
                    append(from_bytes(data[position:end], "little"))
                    position = end
                    produced += 1
        return out

    def decode_block_columnar(self, data, count: int) -> np.ndarray:
        if count <= 0:
            return super().decode_block_columnar(data, count)
        raw = as_u8(data)
        size = len(raw)
        starts = np.empty(count, dtype=np.int64)
        lens = np.empty(count, dtype=np.int64)
        position = 0
        produced = 0
        # Serial walk over the control bytes only: each group's start
        # chains through the previous group's payload total, so this part
        # cannot be vectorized — but it touches just ``count / 4`` bytes.
        # The payload extraction below is one vectorized gather.
        while produced < count:
            if position >= size:
                raise CompressionError(
                    f"GVB: truncated input: stream ended after "
                    f"{produced} of {count} values"
                )
            lengths, total = _GROUP_SHAPES[raw[position]]
            position += 1
            if count - produced >= 4 and position + total <= size:
                for length in lengths:
                    starts[produced] = position
                    lens[produced] = length
                    position += length
                    produced += 1
            else:
                for length in lengths:
                    if produced == count:
                        break
                    if position + length > size:
                        raise CompressionError(
                            f"GVB: truncated input: payload ends inside "
                            f"value {produced} of {count}"
                        )
                    starts[produced] = position
                    lens[produced] = length
                    position += length
                    produced += 1
        # Pad so the 4-byte window of the last payload never reads past
        # the end, then gather one little-endian word per value.
        padded = np.zeros(size + 4, dtype=np.uint8)
        padded[:size] = raw
        words = (
            sliding_window_view(padded, 4)[starts]
            .copy()
            .view("<u4")
            .reshape(-1)
        )
        return words & _GVB_MASKS[lens]
