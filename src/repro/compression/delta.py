"""d-gap (delta) transformation for sorted docID sequences.

Posting lists store strictly increasing docIDs. Compressing the *gaps*
between consecutive docIDs instead of the raw 32-bit identifiers is what
makes integer codecs effective (paper Section II-B). Because docIDs are
strictly increasing, every gap is at least 1, so we store ``gap - 1``
to shave a bit off dense lists — the decoder adds it back.

The block layer stores a block's first docID in its metadata (the paper's
"first uncompressed docID" field), so the transform is parameterized by a
``base``: the docID that precedes the first value of the run.
"""

from __future__ import annotations

from array import array
from itertools import accumulate
from typing import List, Sequence

import numpy as np

from repro.errors import CompressionError


def deltas_from_doc_ids(doc_ids: Sequence[int], base: int = -1) -> List[int]:
    """Convert strictly increasing docIDs to non-negative d-gaps.

    ``base`` is the docID immediately preceding ``doc_ids[0]`` in the
    posting list (``-1`` for the start of a list, so that docID 0 maps to
    gap 0). Each output value is ``doc_ids[i] - doc_ids[i-1] - 1``.

    Raises :class:`CompressionError` if the sequence is not strictly
    increasing or does not stay above ``base``.
    """
    deltas: List[int] = []
    prev = base
    for doc_id in doc_ids:
        gap = doc_id - prev - 1
        if gap < 0:
            raise CompressionError(
                f"docIDs must be strictly increasing above base {base}; "
                f"saw {doc_id} after {prev}"
            )
        deltas.append(gap)
        prev = doc_id
    return deltas


def doc_ids_from_deltas(deltas: Sequence[int], base: int = -1) -> List[int]:
    """Inverse of :func:`deltas_from_doc_ids`."""
    doc_ids: List[int] = []
    prev = base
    for delta in deltas:
        if delta < 0:
            raise CompressionError(f"negative d-gap {delta}")
        prev = prev + delta + 1
        doc_ids.append(prev)
    return doc_ids


def doc_ids_from_deltas_array(deltas: Sequence[int],
                              base: int = -1) -> array:
    """Bulk inverse transform returning an ``array('I')``.

    ``doc_id[i] = base + (i + 1) + prefix_sum(deltas)[i]``, computed with
    a C-speed :func:`itertools.accumulate` instead of a per-value Python
    loop. The input is expected to be non-negative (the bulk codec paths
    hand over unsigned ``array('I')`` values, which cannot be negative);
    a docID overflowing 32 bits raises :class:`CompressionError`.
    """
    start = base + 1
    try:
        return array(
            "I",
            [start + i + s for i, s in enumerate(accumulate(deltas))],
        )
    except OverflowError:
        raise CompressionError(
            f"docID beyond 32 bits accumulating d-gaps above base {base}"
        ) from None


def doc_ids_from_deltas_columnar(deltas: np.ndarray,
                                 base: int = -1) -> np.ndarray:
    """Columnar inverse transform: one vectorized prefix sum.

    ``doc_id[i] = base + cumsum(deltas + 1)[i]``, which equals the
    reference ``base + (i + 1) + prefix_sum(deltas)[i]``. The sum runs in
    int64 (a block's 128 gaps of <= 32 bits cannot overflow it) and the
    strictly increasing output only needs its last element range-checked.
    """
    doc_ids = np.cumsum(deltas.astype(np.int64) + 1) + base
    if len(doc_ids) and int(doc_ids[-1]) > 0xFFFFFFFF:
        raise CompressionError(
            f"docID beyond 32 bits accumulating d-gaps above base {base}"
        )
    return doc_ids.astype(np.uint32)
