"""Shared numpy primitives for the columnar decode kernels.

The fixed-width codecs (BP, the PFD frame) pack ``count`` fields of
``width`` bits LSB-first into a contiguous byte frame. The columnar
kernels extract all fields at once with a gather: for field ``i`` at bit
offset ``i * width``, read the 8 bytes starting at ``offset // 8`` as one
little-endian ``uint64`` word, shift right by ``offset % 8`` and mask.
A field is at most 32 bits wide and the sub-byte shift at most 7 bits,
so the 64-bit window always covers the whole field.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["unpack_lsb_frame", "as_u8"]


def as_u8(data, offset: int = 0, length: int = None) -> np.ndarray:
    """A uint8 view of any byte buffer (bytes/memoryview/mmap slice).

    Zero-copy: the returned array aliases ``data``'s buffer.
    """
    if length is None:
        length = len(data) - offset
    return np.frombuffer(data, dtype=np.uint8, count=length, offset=offset)


def unpack_lsb_frame(frame: np.ndarray, width: int,
                     count: int) -> np.ndarray:
    """Extract ``count`` LSB-first ``width``-bit fields from ``frame``.

    ``frame`` is the packed payload as a uint8 vector of at least
    ``ceil(count * width / 8)`` bytes. Returns a fresh writable
    ``uint64`` vector (callers range-check / downcast as their codec's
    error contract requires).
    """
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    bit_offsets = np.arange(count, dtype=np.int64) * width
    byte_offsets = bit_offsets >> 3
    shifts = (bit_offsets & 7).astype(np.uint64)
    # Pad so the 8-byte window of the last field never reads past the
    # end, then gather one aligned little-endian word per field.
    padded = np.zeros(len(frame) + 8, dtype=np.uint8)
    padded[: len(frame)] = frame
    words = (
        sliding_window_view(padded, 8)[byte_offsets]
        .copy()
        .view("<u8")
        .reshape(-1)
    )
    mask = np.uint64((1 << width) - 1)
    return (words >> shifts) & mask
