"""Storage-class-memory substrate: devices, traffic accounting, interconnect.

Models the memory system of Figure 2 / Table I in the paper:

* :mod:`repro.scm.device` — bandwidth/latency model of one memory node's
  DIMM set, distinguishing sequential reads, random reads, and writes
  (SCM's defining asymmetries, Section II-A);
* :mod:`repro.scm.traffic` — byte accounting per access class (``LD
  List``, ``LD Score``, ``LD Inter``, ``ST Inter``, ``ST Result`` — the
  categories of Figure 15) and per pattern (sequential/random);
* :mod:`repro.scm.interconnect` — the shared byte-addressable
  cache-coherent link (CXL-like) between the memory pool and the host;
* :mod:`repro.scm.pool` — memory nodes and the pooled-memory topology.
"""

from repro.scm.device import (
    DDR4_4CH,
    DDR4_6CH,
    OPTANE_NODE_4CH,
    OPTANE_HOST_6CH,
    AccessPattern,
    MemoryDeviceModel,
)
from repro.scm.interconnect import CXL_LINK, InterconnectModel
from repro.scm.pool import MemoryNode, MemoryPool
from repro.scm.traffic import AccessClass, TrafficCounter

__all__ = [
    "AccessPattern",
    "MemoryDeviceModel",
    "OPTANE_NODE_4CH",
    "OPTANE_HOST_6CH",
    "DDR4_4CH",
    "DDR4_6CH",
    "AccessClass",
    "TrafficCounter",
    "InterconnectModel",
    "CXL_LINK",
    "MemoryNode",
    "MemoryPool",
]
