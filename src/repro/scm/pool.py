"""Memory nodes and the SCM-based pooled-memory topology.

A :class:`MemoryNode` is the paper's unit of near-data processing: a set
of SCM DIMMs behind one memory controller, which is where a BOSS device
is placed (Figure 2, Figure 4(a)). A :class:`MemoryPool` aggregates nodes
behind the shared host interconnect; each node holds one index shard and
serves queries independently ("no remote access is necessary as a BOSS
core operates only on the shard in the local node", Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.scm.device import OPTANE_NODE_4CH, MemoryDeviceModel
from repro.scm.interconnect import CXL_LINK, InterconnectModel

TB = 1 << 40


@dataclass(frozen=True)
class MemoryNode:
    """One pooled-memory node: DIMMs + memory controller (+ NDP device).

    The paper assumes four 512 GB DIMMs per node, 2 TB of physical
    address space (Section IV-D, Address Translation).
    """

    device: MemoryDeviceModel = OPTANE_NODE_4CH
    capacity: int = 2 * TB
    num_dimms: int = 4

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("node capacity must be positive")
        if self.num_dimms <= 0:
            raise ConfigurationError("node needs at least one DIMM")


@dataclass(frozen=True)
class MemoryPool:
    """Memory nodes sharing one link to the host CPU."""

    nodes: List[MemoryNode] = field(default_factory=lambda: [MemoryNode()])
    interconnect: InterconnectModel = CXL_LINK

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("pool needs at least one node")

    @property
    def capacity(self) -> int:
        """Total pooled capacity (scales with node count)."""
        return sum(node.capacity for node in self.nodes)

    @property
    def aggregate_internal_bandwidth(self) -> float:
        """Sum of node-internal sequential read bandwidths.

        This is the bandwidth an NDP design can exploit; a host-side
        accelerator is capped at ``interconnect.bandwidth`` no matter how
        many nodes are pooled — the paper's core scaling argument.
        """
        return sum(node.device.seq_read_bw for node in self.nodes)

    @property
    def bandwidth_to_capacity_ratio(self) -> float:
        """Host-visible bytes/s per byte of capacity (falls as nodes grow)."""
        return self.interconnect.bandwidth / self.capacity

    def surviving(self, failed_nodes) -> "MemoryPool":
        """The degraded pool after losing ``failed_nodes`` (by index).

        Models permanent leaf death at the hardware layer: the dead
        nodes' capacity and internal bandwidth leave the pool while the
        shared host interconnect stays. Raises when every node failed —
        a pool with no nodes cannot serve.
        """
        failed = set(failed_nodes)
        unknown = [i for i in failed if not 0 <= i < len(self.nodes)]
        if unknown:
            raise ConfigurationError(f"no such pool node(s): {unknown}")
        survivors = [
            node for i, node in enumerate(self.nodes) if i not in failed
        ]
        if not survivors:
            raise ConfigurationError("every node in the pool failed")
        return MemoryPool(nodes=survivors, interconnect=self.interconnect)

    def publish_metrics(self, registry) -> None:
        """Publish the pool's static topology gauges into a registry.

        Called once per session by observability consumers; the gauges
        describe the hardware configuration every per-query metric is
        conditioned on (node count, capacity, internal vs host-visible
        bandwidth).
        """
        registry.gauge(
            "pool.nodes", "memory nodes in the pool"
        ).set(len(self.nodes))
        registry.gauge(
            "pool.capacity_bytes", "total pooled SCM capacity"
        ).set(self.capacity)
        registry.gauge(
            "pool.internal_bandwidth", "aggregate node-internal seq read B/s"
        ).set(self.aggregate_internal_bandwidth)
        registry.gauge(
            "pool.bandwidth_to_capacity", "host-visible B/s per byte"
        ).set(self.bandwidth_to_capacity_ratio)
        for i, node in enumerate(self.nodes):
            registry.gauge(
                "pool.node_seq_read_bw", "per-node sequential read B/s"
            ).set(node.device.seq_read_bw, node=str(i),
                  device=node.device.name)
        self.interconnect.publish_metrics(registry)
