"""Memory-traffic accounting by access class and access pattern.

Figure 15 of the paper breaks memory accesses into five classes:

* ``LD List`` — loads of posting-list blocks and their metadata;
* ``LD Score`` — loads of per-document scoring metadata (the 4-byte BM25
  normalizers);
* ``LD Inter`` — reloads of spilled intermediate results (IIU's multi-term
  path; BOSS eliminates these);
* ``ST Inter`` — spills of intermediate results;
* ``ST Result`` — stores of the final (or, for IIU, full unsorted) result
  list.

Orthogonally, every access is *sequential* or *random* — the distinction
that dominates SCM performance (Table I: 25.6 GB/s vs 6.6 GB/s read).
:class:`TrafficCounter` accumulates bytes along both axes; the timing
model charges each bucket at the right bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple


class AccessClass(Enum):
    """Figure 15's five memory-access categories, plus index maintenance.

    ``ST_INDEX`` is not part of Figure 15 (which profiles read-only
    query execution): it accounts for the sequential stores issued when
    the live-index layer (:mod:`repro.live`) seals a write buffer or a
    background merge writes a compacted segment — the write half of the
    Table I bandwidth asymmetry.
    """

    LD_LIST = "LD List"
    LD_SCORE = "LD Score"
    LD_INTER = "LD Inter"
    ST_INTER = "ST Inter"
    ST_RESULT = "ST Result"
    ST_INDEX = "ST Index"

    @property
    def is_write(self) -> bool:
        return self in (AccessClass.ST_INTER, AccessClass.ST_RESULT,
                        AccessClass.ST_INDEX)


class AccessPattern(Enum):
    """Spatial locality of an access run."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass
class TrafficCounter:
    """Byte totals keyed by ``(AccessClass, AccessPattern)``.

    Also counts discrete *accesses* per class, which Figure 15 reports
    (normalized access counts rather than bytes).
    """

    _bytes: Dict[Tuple[AccessClass, AccessPattern], int] = field(
        default_factory=dict
    )
    _accesses: Dict[Tuple[AccessClass, AccessPattern], int] = field(
        default_factory=dict
    )

    def record(self, access_class: AccessClass, pattern: AccessPattern,
               num_bytes: int, accesses: int = 1) -> None:
        """Add ``num_bytes`` of traffic in the given bucket."""
        if num_bytes < 0 or accesses < 0:
            raise ValueError("traffic cannot be negative")
        key = (access_class, pattern)
        self._bytes[key] = self._bytes.get(key, 0) + num_bytes
        self._accesses[key] = self._accesses.get(key, 0) + accesses

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------

    def bytes_for(self, access_class: AccessClass = None,
                  pattern: AccessPattern = None) -> int:
        """Total bytes, optionally filtered by class and/or pattern."""
        return sum(
            v for (cls, pat), v in self._bytes.items()
            if (access_class is None or cls is access_class)
            and (pattern is None or pat is pattern)
        )

    def accesses_for(self, access_class: AccessClass = None,
                     pattern: AccessPattern = None) -> int:
        """Total access count, optionally filtered."""
        return sum(
            v for (cls, pat), v in self._accesses.items()
            if (access_class is None or cls is access_class)
            and (pattern is None or pat is pattern)
        )

    @property
    def total_bytes(self) -> int:
        return self.bytes_for()

    @property
    def read_bytes(self) -> int:
        return sum(
            v for (cls, _pat), v in self._bytes.items() if not cls.is_write
        )

    @property
    def write_bytes(self) -> int:
        return sum(
            v for (cls, _pat), v in self._bytes.items() if cls.is_write
        )

    def read_bytes_by_pattern(self, pattern: AccessPattern) -> int:
        """Read bytes with the given spatial pattern."""
        return sum(
            v for (cls, pat), v in self._bytes.items()
            if not cls.is_write and pat is pattern
        )

    def by_class(self) -> Dict[AccessClass, int]:
        """Byte totals per access class (Figure 15's categories)."""
        out: Dict[AccessClass, int] = {}
        for (cls, _pat), v in self._bytes.items():
            out[cls] = out.get(cls, 0) + v
        return out

    def access_counts_by_class(self) -> Dict[AccessClass, int]:
        """Access-count totals per class (Figure 15's y-axis)."""
        out: Dict[AccessClass, int] = {}
        for (cls, _pat), v in self._accesses.items():
            out[cls] = out.get(cls, 0) + v
        return out

    def merge(self, other: "TrafficCounter") -> None:
        """Fold another counter into this one."""
        for key, v in other._bytes.items():
            self._bytes[key] = self._bytes.get(key, 0) + v
        for key, v in other._accesses.items():
            self._accesses[key] = self._accesses.get(key, 0) + v

    def copy(self) -> "TrafficCounter":
        counter = TrafficCounter()
        counter.merge(self)
        return counter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        per_class = {cls.value: v for cls, v in self.by_class().items()}
        return f"<TrafficCounter {per_class}>"
