"""Shared host-pool interconnect model (CXL/Gen-Z-like link).

The memory pool's nodes all share one byte-addressable cache-coherent
link to the host CPU (paper Figure 2; "e.g., 64 GB/s for a single CXL
link", Section II-C). BOSS's headline contribution on this axis is that
only the tiny top-k list crosses the link, so scaling out memory nodes
does not bottleneck on it; host-side designs must pull *all* posting data
(or, for IIU, the full unsorted scored result list) across it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scm.device import GB


@dataclass(frozen=True)
class InterconnectModel:
    """A fixed-bandwidth shared link between the memory pool and the host."""

    name: str
    bandwidth: float  # bytes/second
    #: One-way message latency in seconds (query dispatch, result return).
    latency: float = 1e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: negative latency")

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` across the link (no latency)."""
        if num_bytes < 0:
            raise ConfigurationError("negative transfer size")
        return num_bytes / self.bandwidth

    def round_trip_time(self, request_bytes: int, response_bytes: int) -> float:
        """Request/response exchange including both message latencies."""
        return (
            2 * self.latency
            + self.transfer_time(request_bytes)
            + self.transfer_time(response_bytes)
        )

    def publish_metrics(self, registry) -> None:
        """Publish the link's static gauges into a metrics registry."""
        registry.gauge(
            "interconnect.bandwidth", "host link bandwidth (B/s)"
        ).set(self.bandwidth, link=self.name)
        registry.gauge(
            "interconnect.latency_seconds", "one-way message latency"
        ).set(self.latency, link=self.name)


#: Single CXL link, Section II-C.
CXL_LINK = InterconnectModel(name="cxl-x16", bandwidth=64 * GB, latency=1e-6)
