"""Bandwidth/latency model of a memory node's DIMM set.

The model captures the three properties of SCM that drive every result in
the paper (Sections II-A and V-A, Table I):

* sequential read bandwidth ≫ random read bandwidth (25.6 vs 6.6 GB/s
  for the 4-channel Optane node of Table I);
* writes are several-fold slower than reads (2.3 GB/s);
* DRAM has far higher bandwidth and a much smaller random-access penalty.

Service time for a traffic aggregate is computed bucket-wise:

    ``time = seq_read/BW_seq + rand_read/BW_rand + write/BW_write``

which corresponds to a bandwidth-saturated device (the regime the paper
evaluates — cores are added until the device bandwidth is the wall).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scm.traffic import AccessPattern, TrafficCounter

GIB = 1 << 30
GB = 10 ** 9


@dataclass(frozen=True)
class MemoryDeviceModel:
    """A memory device (node-level DIMM aggregate) bandwidth model.

    Bandwidths are bytes/second; ``access_granule`` is the smallest
    transfer the device performs (Optane's internal 256 B block; 64 B for
    DRAM cache lines) and is used by engines to round block fetches up.
    """

    name: str
    seq_read_bw: float
    rand_read_bw: float
    write_bw: float
    access_granule: int = 256
    #: Idle (unloaded) read latency in seconds; used for latency-sensitive
    #: single-access paths such as IIU's binary-search probes.
    read_latency: float = 300e-9

    def __post_init__(self) -> None:
        if min(self.seq_read_bw, self.rand_read_bw, self.write_bw) <= 0:
            raise ConfigurationError(f"{self.name}: bandwidths must be positive")
        if self.rand_read_bw > self.seq_read_bw:
            raise ConfigurationError(
                f"{self.name}: random read bandwidth cannot exceed sequential"
            )
        if self.access_granule <= 0:
            raise ConfigurationError(f"{self.name}: bad access granule")

    def round_up(self, num_bytes: int) -> int:
        """Round a transfer up to whole access granules."""
        granule = self.access_granule
        return ((num_bytes + granule - 1) // granule) * granule

    def service_time(self, traffic: TrafficCounter) -> float:
        """Seconds to move ``traffic`` through this device at saturation.

        Writes cover both intermediate spills and result stores: the
        accelerators materialize their output lists in the pooled
        memory (the ``resultAddr`` buffer of the offloading API) before
        the host pulls them over the link, so result bytes pay the
        SCM's write bandwidth — negligible for BOSS's top-k, punishing
        for IIU's full unsorted lists.
        """
        seq = traffic.read_bytes_by_pattern(AccessPattern.SEQUENTIAL)
        rand = traffic.read_bytes_by_pattern(AccessPattern.RANDOM)
        writes = traffic.write_bytes
        return (
            seq / self.seq_read_bw
            + rand / self.rand_read_bw
            + writes / self.write_bw
        )

    def read_time(self, num_bytes: int, pattern: AccessPattern) -> float:
        """Seconds to read ``num_bytes`` with the given pattern."""
        bw = (
            self.seq_read_bw
            if pattern is AccessPattern.SEQUENTIAL
            else self.rand_read_bw
        )
        return num_bytes / bw

    def write_time(self, num_bytes: int) -> float:
        return num_bytes / self.write_bw


# ---------------------------------------------------------------------------
# Table I presets
# ---------------------------------------------------------------------------

#: BOSS memory system: SCM, 4 channels (Table I, citing [70]). The read
#: figures (25.6 GB/s sequential, 6.6 GB/s random) are node aggregates;
#: the 2.3 GB/s write figure is [70]'s per-DIMM measurement, so the
#: 4-DIMM node sustains 4 x 2.3 = 9.2 GB/s of writes.
OPTANE_NODE_4CH = MemoryDeviceModel(
    name="optane-4ch",
    seq_read_bw=25.6 * GB,
    rand_read_bw=6.6 * GB,
    write_bw=4 * 2.3 * GB,
    access_granule=256,
    read_latency=300e-9,
)

#: Host memory system: Intel Apache Pass (Optane), 6 channels, 39.6 GB/s
#: (6.6 GB/s per channel, Table I). Used when Lucene runs against the SCM
#: pool through the host.
OPTANE_HOST_6CH = MemoryDeviceModel(
    name="optane-host-6ch",
    seq_read_bw=39.6 * GB,
    rand_read_bw=39.6 * GB * (6.6 / 25.6),  # same seq/rand ratio as the node
    write_bw=2.3 * GB * 6 / 4,
    access_granule=256,
    read_latency=300e-9,
)

#: DRAM comparison point of Figure 16: DDR4-2666, 4 channels, 85.2 GB/s.
#: DRAM's random-access penalty is mild (row-buffer misses), modeled at
#: half the sequential bandwidth; writes run at full channel bandwidth.
DDR4_4CH = MemoryDeviceModel(
    name="ddr4-4ch",
    seq_read_bw=85.2 * GB,
    rand_read_bw=42.6 * GB,
    write_bw=85.2 * GB,
    access_granule=64,
    read_latency=90e-9,
)

#: Host DDR4 system of Table I: 6 channels, 140.76 GB/s.
DDR4_6CH = MemoryDeviceModel(
    name="ddr4-6ch",
    seq_read_bw=140.76 * GB,
    rand_read_bw=70.38 * GB,
    write_bw=140.76 * GB,
    access_granule=64,
    read_latency=90e-9,
)
