"""Query cost estimation and plan-aware scheduling.

The device's query scheduler (Figure 4(a)) dispatches FCFS; a root node
with many queued queries can do better if it can *predict* per-query
cost before execution. This module estimates work from index statistics
alone — document frequencies, compressed sizes, and independence
assumptions — the way a database optimizer estimates cardinalities:

* union: candidates ≈ distinct docs across the term lists (inclusion–
  exclusion under independence), postings ≈ sum of dfs, discounted by
  the ET regime (k relative to block count);
* intersection: SvS cost is driven by the smallest list; survivors
  shrink by each additional selectivity factor;
* mixed: intersections first (the engine's own strategy).

Estimates feed :class:`PlannedScheduler`, a shortest-job-first wrapper
over the device scheduler that reduces mean latency on skewed batches —
a classic serving-system optimization layered on the paper's hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.core.query import (
    OrNode,
    QueryNode,
    TermNode,
    flatten,
    parse_query,
)
from repro.errors import ConfigurationError, QueryError
from repro.index.blocks import BLOCK_SIZE
from repro.index.index import InvertedIndex


@dataclass(frozen=True)
class QueryEstimate:
    """Pre-execution cost prediction for one query."""

    query: QueryNode
    #: Predicted postings pulled through the decompression lanes.
    postings: float
    #: Predicted matching documents (set-operation output size).
    matches: float
    #: Predicted documents actually scored (after ET discounting).
    evaluated: float
    #: Predicted compressed bytes fetched from SCM.
    list_bytes: float

    @property
    def cost(self) -> float:
        """Scalar dispatch cost (posting-dominated)."""
        return self.postings + 4.0 * self.evaluated


class QueryPlanner:
    """Statistics-only cost estimation over one index."""

    def __init__(self, index: InvertedIndex, k: int = 10) -> None:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self._index = index
        self._k = k
        self._num_docs = index.stats.num_docs

    def estimate(self, query: Union[str, QueryNode]) -> QueryEstimate:
        node = parse_query(query) if isinstance(query, str) else flatten(query)
        missing = [t for t in node.terms() if t not in self._index]
        if missing:
            raise QueryError(f"terms not in index: {missing}")
        postings, matches = self._walk(node)
        evaluated = self._discount_for_et(node, matches)
        list_bytes = postings * self._bytes_per_posting(node)
        return QueryEstimate(
            query=node,
            postings=postings,
            matches=matches,
            evaluated=evaluated,
            list_bytes=list_bytes,
        )

    # ------------------------------------------------------------------

    def _df(self, term: str) -> int:
        return self._index.posting_list(term).document_frequency

    def _walk(self, node: QueryNode) -> tuple:
        """Return (postings_touched, expected_matches)."""
        if isinstance(node, TermNode):
            df = self._df(node.term)
            return float(df), float(df)
        child_stats = [self._walk(c) for c in node.children]
        if isinstance(node, OrNode):
            postings = sum(p for p, _m in child_stats)
            # Inclusion–exclusion under independence:
            # P(any) = 1 - prod(1 - df/N).
            p_none = 1.0
            for _p, matches in child_stats:
                p_none *= max(0.0, 1.0 - matches / max(1, self._num_docs))
            return postings, self._num_docs * (1.0 - p_none)
        # AND: SvS touches the smallest list fully; each further list is
        # probed only around surviving candidates, so its posting cost is
        # bounded by the current survivor count (plus block rounding).
        ordered = sorted(child_stats, key=lambda s: s[1])
        survivors = ordered[0][1]
        postings = ordered[0][0]
        for _p, matches in ordered[1:]:
            selectivity = matches / max(1, self._num_docs)
            postings += min(
                _p, max(survivors * BLOCK_SIZE / 2, survivors)
            )
            survivors *= selectivity
        return postings, survivors

    def _discount_for_et(self, node: QueryNode, matches: float) -> float:
        """Union ET skips what cannot reach top-k; intersections score
        every match."""
        if isinstance(node, OrNode) or isinstance(node, TermNode):
            if matches <= self._k:
                return matches
            # ET effectiveness grows with the candidate-to-k ratio; the
            # square-root law is an empirical middle ground between the
            # no-skip floor (matches) and the ideal (k).
            return max(self._k, (matches * self._k) ** 0.5)
        return matches

    def _bytes_per_posting(self, node: QueryNode) -> float:
        terms = node.terms()
        total_bytes = sum(
            self._index.posting_list(t).compressed_bytes for t in terms
        )
        total_postings = max(1, sum(self._df(t) for t in terms))
        return total_bytes / total_postings


class PlannedScheduler:
    """Shortest-job-first dispatch using planner estimates.

    Wraps the device scheduler: queries are sorted by predicted cost
    before a closed-batch run, which provably minimizes mean completion
    time for a single server and approximates it for multiple cores.
    """

    def __init__(self, planner: QueryPlanner, scheduler) -> None:
        self._planner = planner
        self._scheduler = scheduler

    def run_batch(self, engine, queries: Sequence[str]):
        """Estimate, order, execute, and schedule a query batch.

        Returns ``(schedule_report, order)`` where ``order`` is the SJF
        permutation applied to ``queries``.
        """
        if not queries:
            raise ConfigurationError("no queries to schedule")
        estimates = [self._planner.estimate(q) for q in queries]
        order: List[int] = sorted(
            range(len(queries)), key=lambda i: estimates[i].cost
        )
        results = [engine.search(queries[i]) for i in order]
        return self._scheduler.run(results), order
