"""Figure 17: energy consumption of BOSS vs Lucene (log scale).

Energy = average power x batch runtime: 3.2 W for the BOSS device
(Table III) against the 74.8 W host CPU package. The paper reports a
189x average saving — the product of the ~8x speedup and the ~23x power
advantage. Our shape target: savings of the same order (tens to a few
hundred x), with the per-type pattern following the speedups.
"""

import math

import pytest

from repro.hwmodel.energy import EnergyModel

from conftest import QUERY_TYPES, emit_table


@pytest.fixture(scope="module")
def table(ccnews, timing_models):
    model = EnergyModel()
    out = {}
    for qt in QUERY_TYPES:
        boss_report = timing_models["BOSS"].batch(
            ccnews.results_of("BOSS", qt), 8
        )
        lucene_report = timing_models["Lucene"].batch(
            ccnews.results_of("Lucene", qt), 8
        )
        boss_energy = model.energy(boss_report)
        lucene_energy = model.energy(lucene_report)
        out[qt] = {
            "boss_j": boss_energy.energy_joules,
            "lucene_j": lucene_energy.energy_joules,
            "savings": boss_energy.savings_over(lucene_energy),
        }
    return out


def test_fig17_energy(benchmark, ccnews, timing_models, table):
    model = EnergyModel()
    report = timing_models["BOSS"].batch(ccnews.results_of("BOSS"), 8)
    benchmark(lambda: model.energy(report))

    lines = [f"{'qtype':<7}{'BOSS J':>12}{'Lucene J':>12}{'savings':>10}"]
    for qt in QUERY_TYPES:
        row = table[qt]
        lines.append(
            f"{qt:<7}{row['boss_j']:>12.6f}{row['lucene_j']:>12.6f}"
            f"{row['savings']:>9.1f}x"
        )
    savings = [table[qt]["savings"] for qt in QUERY_TYPES]
    geomean = math.exp(sum(map(math.log, savings)) / len(savings))
    lines.append(f"geomean savings: {geomean:.1f}x (paper: 189x)")
    emit_table("Figure 17: energy, BOSS vs Lucene (8 cores)", lines)

    # Savings are large on every query type and of the paper's order.
    assert all(s > 10 for s in savings)
    assert 30 < geomean < 1000
