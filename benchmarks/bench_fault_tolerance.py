#!/usr/bin/env python
"""Fault-tolerance benchmark: latency and degradation under injected faults.

Drives a sharded cluster (the paper's Figure 1(b) topology) through a
Zipf-skewed query batch while the deterministic fault harness
(:mod:`repro.faults`) injects leaf failures, and measures what the
resilience layer (:mod:`repro.cluster.resilience`) buys:

* **transient sweep** — transient leaf-failure rates swept with and
  without a retry budget: retries should hold the degraded-result
  fraction at zero while the no-retry runs degrade in proportion to
  the fault rate;
* **corruption sweep** — persistent corrupted-payload rates swept with
  and without a shard replica: corruption is immune to retry (the bytes
  stay bad), so only failover keeps results complete;
* **kill-shard scenario** — one primary dies permanently; with a
  replica the batch completes whole, without one it degrades but still
  answers from the surviving shards.

Each point reports qps, p50/p95/p99 per-query wall-clock, the
degraded-result fraction, and the retry/timeout/failover counters.
Results are written as JSON (default: ``BENCH_faults.json`` at the repo
root) so CI can archive the trajectory; nothing is gated on them.

Usage::

    python benchmarks/bench_fault_tolerance.py           # full sweep
    python benchmarks/bench_fault_tolerance.py --smoke   # CI-sized run
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.batch import run_query_batch  # noqa: E402
from repro.cluster.resilience import ResiliencePolicy  # noqa: E402
from repro.faults import (  # noqa: E402
    ZERO_FAULTS,
    FaultConfig,
    make_faulty_cluster,
)
from repro.workloads import synthetic_documents  # noqa: E402
from repro.workloads.queries import QuerySampler  # noqa: E402

_REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
_DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_faults.json")


def _run_point(documents, queries, *, shards, k, workers, faults,
               policy, replication=1, replica_faults=None,
               label="") -> dict:
    """One sweep point: fresh cluster, one batch, collected counters.

    A fresh cluster per point keeps the fault schedule's logical-query
    attempt counters from leaking between points.
    """
    cluster, _sharded = make_faulty_cluster(
        documents, shards, faults=faults, policy=policy,
        replication_factor=replication, k=k,
        replica_faults=replica_faults,
    )
    batch = run_query_batch(cluster, queries, k=k, workers=workers)
    report = batch.report
    failed_shards = sorted({
        shard for r in batch.results for shard in r.shards_failed
    })
    return {
        "label": label,
        "queries_per_second": round(report.queries_per_second, 2),
        "p50_ms": round(report.p50_seconds * 1e3, 4),
        "p95_ms": round(report.p95_seconds * 1e3, 4),
        "p99_ms": round(report.p99_seconds * 1e3, 4),
        "degraded_fraction": round(report.degraded_fraction, 4),
        "queries_degraded": report.queries_degraded,
        "leaf_retries": sum(r.leaf_retries for r in batch.results),
        "leaf_timeouts": sum(r.leaf_timeouts for r in batch.results),
        "leaf_failovers": sum(r.leaf_failovers for r in batch.results),
        "failed_shards": failed_shards,
    }


def sweep_transient(documents, queries, rates, *, shards, k, workers,
                    seed, retries) -> list:
    """Transient fault rates x {no retries, retry budget}."""
    points = []
    for rate in rates:
        faults = FaultConfig(seed=seed, transient_failure_probability=rate)
        for budget in (0, retries):
            policy = ResiliencePolicy(max_retries=budget,
                                      allow_degraded=True)
            points.append(dict(
                _run_point(documents, queries, shards=shards, k=k,
                           workers=workers, faults=faults, policy=policy,
                           label=f"transient={rate:g} retries={budget}"),
                fault_rate=rate, retry_budget=budget,
            ))
    return points


def sweep_corruption(documents, queries, rates, *, shards, k, workers,
                     seed, retries) -> list:
    """Corruption rates x {no replica, one healthy replica}."""
    points = []
    policy = ResiliencePolicy(max_retries=retries, allow_degraded=True)
    for rate in rates:
        faults = FaultConfig(seed=seed, corruption_probability=rate)
        for replication in (1, 2):
            points.append(dict(
                _run_point(documents, queries, shards=shards, k=k,
                           workers=workers, faults=faults, policy=policy,
                           replication=replication,
                           replica_faults=ZERO_FAULTS,
                           label=f"corruption={rate:g} "
                                 f"replicas={replication - 1}"),
                corruption_rate=rate, replication=replication,
            ))
    return points


def kill_shard_scenario(documents, queries, *, shards, k, workers,
                        seed, retries) -> list:
    """One primary dies permanently, with and without a replica."""
    faults = [
        FaultConfig(seed=seed, permanent_failure_after=0)
        if shard == 0 else ZERO_FAULTS
        for shard in range(shards)
    ]
    policy = ResiliencePolicy(max_retries=retries, allow_degraded=True)
    points = []
    for replication in (1, 2):
        points.append(dict(
            _run_point(documents, queries, shards=shards, k=k,
                       workers=workers, faults=faults, policy=policy,
                       replication=replication,
                       replica_faults=ZERO_FAULTS,
                       label=f"kill-shard-0 replicas={replication - 1}"),
            replication=replication,
        ))
    return points


def _print_points(title: str, points) -> None:
    print(f"\n== {title} ==")
    print(f"{'point':<28}{'qps':>9}{'p50 ms':>9}{'p95 ms':>9}"
          f"{'p99 ms':>9}{'retry':>7}{'fail.over':>10}{'degraded':>9}")
    for point in points:
        print(f"{point['label']:<28}{point['queries_per_second']:>9}"
              f"{point['p50_ms']:>9}{point['p95_ms']:>9}"
              f"{point['p99_ms']:>9}{point['leaf_retries']:>7}"
              f"{point['leaf_failovers']:>10}"
              f"{point['degraded_fraction']:>8.1%}")
        if point["failed_shards"]:
            print(f"    failed shards: {point['failed_shards']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs", type=int, default=2400,
                        help="synthetic documents behind the cluster")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--queries", type=int, default=120,
                        help="queries in the Zipf batch")
    parser.add_argument("--unique", type=int, default=40,
                        help="unique queries in the Zipf log")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--workers", type=int, default=4,
                        help="batch-driver worker threads")
    parser.add_argument("--retries", type=int, default=2,
                        help="retry budget for the with-retries points")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default=_DEFAULT_OUT,
                        help="JSON output path")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer docs/queries/points)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.docs = min(args.docs, 600)
        args.queries = min(args.queries, 24)
        args.unique = min(args.unique, 10)
        args.shards = min(args.shards, 3)
        args.workers = min(args.workers, 2)
        transient_rates = (0.0, 0.3)
        corruption_rates = (0.1,)
    else:
        transient_rates = (0.0, 0.1, 0.3, 0.5)
        corruption_rates = (0.05, 0.15)

    print(f"building {args.docs}-document corpus, "
          f"{args.shards} shards, {args.queries} queries ...")
    documents = synthetic_documents(num_docs=args.docs, seed=args.seed)
    vocab = [f"t{i}" for i in range(40)]
    sampler = QuerySampler(vocab, seed=args.seed + 3)
    unique = max(1, min(args.unique, args.queries))
    queries = [
        spec.expression
        for spec in sampler.sample_zipf_log(args.queries,
                                            unique_queries=unique)
    ]

    transient = sweep_transient(
        documents, queries, transient_rates, shards=args.shards, k=args.k,
        workers=args.workers, seed=args.seed, retries=args.retries,
    )
    corruption = sweep_corruption(
        documents, queries, corruption_rates, shards=args.shards, k=args.k,
        workers=args.workers, seed=args.seed, retries=args.retries,
    )
    killed = kill_shard_scenario(
        documents, queries, shards=args.shards, k=args.k,
        workers=args.workers, seed=args.seed, retries=args.retries,
    )

    payload = {
        "benchmark": "bench_fault_tolerance",
        "config": {
            "num_docs": args.docs,
            "shards": args.shards,
            "num_queries": args.queries,
            "unique_queries": unique,
            "k": args.k,
            "workers": args.workers,
            "retry_budget": args.retries,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "transient_sweep": transient,
        "corruption_sweep": corruption,
        "kill_shard": killed,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    _print_points("transient faults: retry budget 0 vs "
                  f"{args.retries}", transient)
    _print_points("persistent corruption: 0 vs 1 replica", corruption)
    _print_points("permanent leaf death (shard 0)", killed)
    print(f"\nwrote {os.path.relpath(args.out, os.getcwd())}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
