#!/usr/bin/env python
"""Serving benchmark: latency-throughput curves under open-loop load.

Drives the admission-controlled query server (:mod:`repro.serving`)
with seeded Poisson arrivals over a Zipf query log, sweeping offered
load from well below to well above the measured service capacity.
Because the load is open loop, the sweep exposes what a closed-loop
batch never can: queue growth, deadline violations, and load shedding
past the saturation knee.

Two sections:

* **offered-load sweep** — offered rate as a fraction of the
  calibrated capacity (``workers / mean service time``), one run per
  point with the *same* arrival seed (Poisson timelines at different
  rates are exact time-rescalings of each other, so every point
  replays the same traffic shape). Reports p50/p95/p99 latency, queue
  depth, shed rate, and achieved throughput;
* **admission-policy comparison** — the three policies (``reject``,
  ``shed-oldest``, ``deadline``) at a fixed overload, showing how each
  spends the same shortage differently.

The **knee** is located as the last sweep point that still keeps
achieved throughput within 90% of offered, sheds at most 1% of
requests, and holds p99 latency under 5x the lightest point's p99.
Results are written as JSON (default: ``BENCH_pr4.json`` at the repo
root) so CI can archive the trajectory; nothing is gated on them.

Usage::

    python benchmarks/bench_serving.py           # full sweep
    python benchmarks/bench_serving.py --smoke   # CI-sized run
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.batch import run_query_batch  # noqa: E402
from repro.core import BossAccelerator, BossConfig  # noqa: E402
from repro.serving import (  # noqa: E402
    QueryServer,
    ServingConfig,
    zipf_workload,
)
from repro.workloads import make_corpus  # noqa: E402

_REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
_DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_pr4.json")

#: Offered load as fractions of the calibrated service capacity.
SWEEP_FRACTIONS = (0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0)
SMOKE_FRACTIONS = (0.5, 1.0, 2.0)

#: Knee criteria (see module docstring).
KNEE_MIN_GOODPUT = 0.90
KNEE_MAX_SHED = 0.01
KNEE_MAX_P99_BLOWUP = 5.0


def calibrate(engine, vocab, *, queries, unique, k, seed) -> float:
    """Warm the engine and measure the mean per-query service time."""
    expressions = [
        r.expression
        for r in zipf_workload(vocab, queries, rate_qps=1.0,
                               unique_queries=unique, seed=seed)
    ]
    run_query_batch(engine, expressions, k=k, workers=1)  # warm caches
    report = run_query_batch(engine, expressions, k=k, workers=1).report
    return sum(report.per_query_seconds) / len(report.per_query_seconds)


def run_point(engine, vocab, *, rate, queries, unique, config,
              seed, label="") -> dict:
    requests = zipf_workload(vocab, queries, rate_qps=rate,
                             unique_queries=unique, seed=seed)
    report = QueryServer(engine, config).serve(requests).report
    return {
        "label": label,
        "target_qps": round(rate, 2),
        "offered_qps": round(report.offered_qps, 2),
        "achieved_qps": round(report.achieved_qps, 2),
        "goodput_fraction": round(
            report.achieved_qps / report.offered_qps, 4
        ) if report.offered_qps else 0.0,
        "shed_fraction": round(report.shed_fraction, 4),
        "shed_by_reason": dict(report.shed_by_reason),
        "p50_ms": round(report.p50_latency_seconds * 1e3, 4),
        "p95_ms": round(report.p95_latency_seconds * 1e3, 4),
        "p99_ms": round(report.p99_latency_seconds * 1e3, 4),
        "mean_queue_wait_ms": round(
            report.mean_queue_wait_seconds * 1e3, 4
        ),
        "mean_queue_depth": round(report.mean_queue_depth, 3),
        "max_queue_depth": report.max_queue_depth,
        "slo_attained": report.slo_attained,
        "slo_violated": report.slo_violated,
    }


def locate_knee(points) -> dict:
    """Last sweep point that still meets all three knee criteria."""
    baseline_p99 = points[0]["p99_ms"] or 1e-9
    knee = None
    for point in points:
        healthy = (
            point["goodput_fraction"] >= KNEE_MIN_GOODPUT
            and point["shed_fraction"] <= KNEE_MAX_SHED
            and point["p99_ms"] <= KNEE_MAX_P99_BLOWUP * baseline_p99
        )
        if healthy:
            knee = point
        else:
            break
    return {
        "criteria": {
            "min_goodput": KNEE_MIN_GOODPUT,
            "max_shed_fraction": KNEE_MAX_SHED,
            "max_p99_over_baseline": KNEE_MAX_P99_BLOWUP,
        },
        "knee_qps": knee["target_qps"] if knee else None,
        "knee_label": knee["label"] if knee else None,
    }


def _print_points(title: str, points) -> None:
    print(f"\n== {title} ==")
    print(f"{'point':<22}{'offered':>9}{'achieved':>9}{'p50 ms':>9}"
          f"{'p99 ms':>9}{'depth':>7}{'shed':>8}")
    for point in points:
        print(f"{point['label']:<22}{point['offered_qps']:>9}"
              f"{point['achieved_qps']:>9}{point['p50_ms']:>9}"
              f"{point['p99_ms']:>9}{point['max_queue_depth']:>7}"
              f"{point['shed_fraction']:>7.1%}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="ccnews-like",
                        help="corpus preset for make_corpus")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="corpus scale factor")
    parser.add_argument("--queries", type=int, default=400,
                        help="requests per sweep point")
    parser.add_argument("--unique", type=int, default=48,
                        help="unique queries in the Zipf log")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--workers", type=int, default=4,
                        help="logical serving workers")
    parser.add_argument("--queue", type=int, default=32,
                        help="admission queue capacity")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default=_DEFAULT_OUT,
                        help="JSON output path")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer queries/points)")
    args = parser.parse_args(argv)

    fractions = SWEEP_FRACTIONS
    if args.smoke:
        args.scale = min(args.scale, 0.1)
        args.queries = min(args.queries, 80)
        args.unique = min(args.unique, 16)
        fractions = SMOKE_FRACTIONS

    print(f"building corpus {args.preset} x{args.scale:g} ...")
    corpus = make_corpus(args.preset, scale=args.scale)
    engine = BossAccelerator(corpus.index, BossConfig(k=args.k))
    vocab = corpus.terms_by_df()

    mean_service = calibrate(engine, vocab, queries=args.queries,
                             unique=args.unique, k=args.k, seed=args.seed)
    capacity_qps = args.workers / mean_service
    print(f"calibrated: mean service {mean_service * 1e3:.3f} ms, "
          f"capacity ~ {capacity_qps:.0f} qps with {args.workers} workers")

    # Offered-load sweep: deadline at 20x mean service, admission
    # "reject" so below-knee points are untouched by shedding policy.
    deadline = 20.0 * mean_service
    sweep_config = ServingConfig(workers=args.workers,
                                 queue_capacity=args.queue,
                                 admission="reject",
                                 deadline_seconds=deadline, k=args.k)
    sweep = [
        run_point(engine, vocab, rate=fraction * capacity_qps,
                  queries=args.queries, unique=args.unique,
                  config=sweep_config, seed=args.seed,
                  label=f"load={fraction:g}x")
        for fraction in fractions
    ]
    knee = locate_knee(sweep)

    # Admission-policy comparison at a fixed overload.
    overload = 1.5 * capacity_qps
    policies = []
    for admission in ("reject", "shed-oldest", "deadline"):
        config = ServingConfig(workers=args.workers,
                               queue_capacity=args.queue,
                               admission=admission,
                               deadline_seconds=deadline, k=args.k)
        policies.append(run_point(
            engine, vocab, rate=overload, queries=args.queries,
            unique=args.unique, config=config, seed=args.seed,
            label=f"{admission}@1.5x",
        ))

    payload = {
        "benchmark": "bench_serving",
        "config": {
            "preset": args.preset,
            "scale": args.scale,
            "num_requests": args.queries,
            "unique_queries": args.unique,
            "k": args.k,
            "workers": args.workers,
            "queue_capacity": args.queue,
            "deadline_ms": round(deadline * 1e3, 4),
            "mean_service_ms": round(mean_service * 1e3, 4),
            "capacity_qps": round(capacity_qps, 2),
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "offered_load_sweep": sweep,
        "knee": knee,
        "admission_comparison": policies,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    _print_points("offered-load sweep (admission=reject)", sweep)
    if knee["knee_qps"] is not None:
        print(f"\nknee: {knee['knee_label']} "
              f"(~{knee['knee_qps']:.0f} qps offered)")
    else:
        print("\nknee: below the lightest sweep point")
    _print_points("admission policies at 1.5x capacity", policies)
    print(f"\nwrote {os.path.relpath(args.out, os.getcwd())}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
